//! Offline shim for the `rand` crate: the 0.9-era API subset this
//! workspace uses (`random`, `random_range`, `random_bool`, seeding).
//! See `shims/README.md` for scope and fidelity notes.

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 — the same
    /// construction upstream `rand` uses, so streams are stable.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele–Lea–Flood); weak seeds become distinct keys.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly from an RNG (`StandardUniform` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::random_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform draw in `[0, span)` (`span >= 1`, fits in u64 after widening).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!((1..=1 << 64).contains(&span));
    if span == 1 << 64 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Widening-multiply rejection sampling (Lemire); bias-free.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

/// The user-facing convenience trait, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}
