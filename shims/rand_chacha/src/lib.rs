//! Offline shim for `rand_chacha`: a genuine ChaCha8 (Bernstein 2008)
//! keystream generator behind the `rand` shim's traits. Deterministic
//! across runs and machines; not bit-identical to upstream `rand_chacha`
//! (see shims/README.md).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha8-based RNG: 256-bit key, 64-bit counter, stream 0.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the block is exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] = nonce = 0 (stream 0).
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(5u64..=5);
            assert_eq!(y, 5);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
