//! Offline shim for `proptest`: the API subset this workspace's property
//! tests use. Cases are generated deterministically from the test name and
//! case number (reproducible run-to-run and machine-to-machine); failures
//! report the case number but are **not shrunk**. See shims/README.md.

pub mod test_runner {
    /// Deterministic per-case RNG (SplitMix64 over a name+case seed).
    pub struct TestRng(u64);

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n >= 1`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n >= 1);
            // Widening-multiply rejection sampling (Lemire); bias-free.
            let zone = n.wrapping_neg() % n;
            loop {
                let m = (self.next_u64() as u128) * (n as u128);
                if (m as u64) >= zone {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform f64 in `[0, 1)` with 53 mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a test case failed. No rejection machinery: the shim never
    /// discards cases, so `fail` is the only constructor.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Case count after the `PROPTEST_CASES` env cap (lets CI shrink
        /// every suite at once without touching source).
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
            {
                Some(cap) => self.cases.min(cap),
                None => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`. Unlike real proptest
    /// there is no value tree / shrinking: `generate` returns the value
    /// directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick below total weight")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1).min(u64::MAX as u128);
                    lo + rng.below(span as u64) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform generator (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }
    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, a..b)`: a vector with length uniform in `[a, b)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range in collection::vec");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An index into a not-yet-known-length collection: call
    /// `index(len)` to resolve it against a concrete length.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniform choice of one element of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select on an empty collection");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

/// Defines property tests: each `#[test] fn name(args in strategies) body`
/// becomes a plain `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    // Attributes (including `#[test]` itself and doc comments) are matched
    // in one repetition and re-emitted verbatim on the generated fn.
    ( ($config:expr)
      $(#[$meta:meta])+
      fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.effective_cases();
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    ::core::panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name), case + 1, cases, err
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

/// `assert!` that returns a `TestCaseError` instead of panicking, so the
/// harness can report the failing case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Weighted (or unweighted) choice between strategies yielding one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
