//! Offline shim for `criterion`: the benchmark-definition API subset the
//! workspace uses, backed by a simple median-of-samples wall-clock runner.
//! `cargo bench` works end-to-end; statistical analysis, plots, and CLI
//! filtering are out of scope (see shims/README.md).

use std::time::Instant;

pub use std::hint::black_box;

/// Per-iteration timer handed to `bench_function` closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f` over `samples` batches and records the median ns/iter.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up, then calibrate a batch size targeting ~2ms per sample.
        black_box(f());
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed().as_nanos().max(1) as u64;
        let batch = (2_000_000 / one).clamp(1, 1_000_000);
        let samples = 12usize;
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            times.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        self.ns_per_iter = times[times.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    println!("{id:<50} {:>12}/iter", fmt_ns(b.ns_per_iter));
}

/// A named group of benchmarks (printed as a `group/name` prefix).
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn finish(self) {}
}

/// Top-level driver, one per `criterion_group!` function list.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }

    /// CLI flags are ignored by the shim; present for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes --bench; `cargo test` passes harness
            // flags. Only run benchmarks under `cargo bench`.
            let as_test = std::env::args().any(|a| a == "--test");
            if !as_test {
                $( $group(); )+
            }
        }
    };
}
