//! Bulk ingestion: the stream-to-static level builder.
//!
//! Insert-at-a-time pays for every document once in `C0` and again at
//! each logarithmic-method merge on its way down the level cascade. For
//! an initial load or a re-shard that is pure overhead: the paper's
//! static substructures can be SA-IS-built *directly* from the corpus in
//! linear time. [`LevelBuilder`] does exactly that — it chunks a
//! document stream into level-sized batches (the memory bound: at most
//! one chunk of raw documents is buffered at a time), builds each batch
//! into a [`DeletionOnlyIndex`] with the ordinary static-construction
//! machinery, and hands the finished level to the caller, who installs
//! it through the normal `Stamped`/epoch path
//! ([`Transform2Index::install_bulk_level`](crate::Transform2Index::install_bulk_level))
//! so snapshots, incremental deltas, and lock-free published views all
//! keep working unchanged.
//!
//! ```
//! use dyndex_core::bulk::LevelBuilder;
//! use dyndex_core::prelude::*;
//!
//! let mut index: Transform2Index<FmIndexCompressed> = Transform2Index::new(
//!     FmConfig { sample_rate: 8 },
//!     DynOptions::default(),
//!     RebuildMode::Inline,
//! );
//! let mut builder: LevelBuilder<FmIndexCompressed> = index.level_builder();
//! let docs = (0..100u64).map(|id| (id, format!("document number {id}").into_bytes()));
//! builder.build_stream(docs, |level| index.install_bulk_level(level));
//! assert_eq!(index.num_docs(), 100);
//! assert_eq!(index.count(b"number 42"), 1);
//! ```

use crate::deletion_only::DeletionOnlyIndex;
use crate::traits::StaticIndex;

/// Default chunk bound: documents are accumulated until their bytes
/// reach this, then one static level is built and the buffer is freed.
pub const DEFAULT_CHUNK_SYMBOLS: usize = 1 << 20;

/// Builds large static levels ([`DeletionOnlyIndex`]) directly from a
/// document stream, one bounded-size chunk at a time.
///
/// The builder holds no reference to the owning index — it is `Clone`
/// and `Send`, so a sharded store can hand one to each idle pool worker
/// and run SA-IS construction off-lock while queries keep answering from
/// published views; only the final install takes the shard lock.
pub struct LevelBuilder<I: StaticIndex> {
    config: I::Config,
    counting: bool,
    chunk_symbols: usize,
    batch: Vec<(u64, Vec<u8>)>,
    batch_symbols: usize,
}

// Manual impl: a derived `Clone` would demand `I: Clone`, but only the
// *config* is cloned — the index type itself never appears in a field.
impl<I: StaticIndex> Clone for LevelBuilder<I> {
    fn clone(&self) -> Self {
        LevelBuilder {
            config: self.config.clone(),
            counting: self.counting,
            chunk_symbols: self.chunk_symbols,
            batch: self.batch.clone(),
            batch_symbols: self.batch_symbols,
        }
    }
}

impl<I: StaticIndex> LevelBuilder<I> {
    /// A builder producing levels compatible with indexes configured by
    /// `config`/`counting` (use
    /// [`Transform2Index::level_builder`](crate::Transform2Index::level_builder)
    /// to copy them from a live index).
    pub fn new(config: I::Config, counting: bool) -> Self {
        LevelBuilder {
            config,
            counting,
            chunk_symbols: DEFAULT_CHUNK_SYMBOLS,
            batch: Vec::new(),
            batch_symbols: 0,
        }
    }

    /// Sets the chunk bound (bytes of buffered documents per built
    /// level). Values below 1 are clamped to 1.
    pub fn with_chunk_symbols(mut self, chunk_symbols: usize) -> Self {
        self.chunk_symbols = chunk_symbols.max(1);
        self
    }

    /// The current chunk bound in document bytes.
    pub fn chunk_symbols(&self) -> usize {
        self.chunk_symbols
    }

    /// Document bytes currently buffered (always `<` the bound plus one
    /// document — the bound is checked after each push).
    pub fn buffered_symbols(&self) -> usize {
        self.batch_symbols
    }

    /// Buffered documents waiting for the chunk to fill.
    pub fn buffered_docs(&self) -> usize {
        self.batch.len()
    }

    /// Adds one document to the pending chunk. When the chunk bound is
    /// reached, builds and returns the finished level (clearing the
    /// buffer); otherwise returns `None`.
    pub fn push(&mut self, doc_id: u64, bytes: Vec<u8>) -> Option<DeletionOnlyIndex<I>> {
        self.batch_symbols += bytes.len();
        self.batch.push((doc_id, bytes));
        if self.batch_symbols >= self.chunk_symbols {
            self.flush()
        } else {
            None
        }
    }

    /// Builds whatever is buffered into a level (or `None` when empty).
    pub fn flush(&mut self) -> Option<DeletionOnlyIndex<I>> {
        if self.batch.is_empty() {
            return None;
        }
        let batch = std::mem::take(&mut self.batch);
        self.batch_symbols = 0;
        Some(self.build_batch(&batch))
    }

    /// Builds one pre-chunked batch directly (no buffering). This is the
    /// off-lock entry point pool workers use: the batch was routed and
    /// cut elsewhere, the worker only pays the SA-IS construction.
    pub fn build_batch(&self, docs: &[(u64, Vec<u8>)]) -> DeletionOnlyIndex<I> {
        let refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
        DeletionOnlyIndex::build(&refs, &self.config, self.counting)
    }

    /// Drains a whole document stream: every full chunk (and the final
    /// partial one) is built and passed to `sink`. Memory stays bounded
    /// by one chunk of raw documents plus the level being built.
    pub fn build_stream<It, F>(&mut self, docs: It, mut sink: F)
    where
        It: IntoIterator<Item = (u64, Vec<u8>)>,
        F: FnMut(DeletionOnlyIndex<I>),
    {
        for (id, bytes) in docs {
            if let Some(level) = self.push(id, bytes) {
                sink(level);
            }
        }
        if let Some(level) = self.flush() {
            sink(level);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DynOptions;
    use crate::traits::FmConfig;
    use crate::transform2::{RebuildMode, Transform2Index};
    use dyndex_text::FmIndexCompressed;

    type Builder = LevelBuilder<FmIndexCompressed>;

    fn docs(n: u64) -> Vec<(u64, Vec<u8>)> {
        (0..n)
            .map(|id| (id, format!("bulk document {id} payload").into_bytes()))
            .collect()
    }

    #[test]
    fn chunking_respects_bound() {
        let mut b = Builder::new(FmConfig { sample_rate: 4 }, true).with_chunk_symbols(64);
        let mut levels = Vec::new();
        b.build_stream(docs(20), |l| levels.push(l));
        assert!(levels.len() > 1, "64-byte chunks must split 20 documents");
        let total_docs: usize = levels.iter().map(|l| l.num_docs()).sum();
        assert_eq!(total_docs, 20);
        // Every level except the last was cut at/over the bound.
        for l in &levels[..levels.len() - 1] {
            assert!(l.alive_symbols() >= 64);
        }
        // Buffer is empty after the stream drains.
        assert_eq!(b.buffered_docs(), 0);
        assert_eq!(b.buffered_symbols(), 0);
    }

    #[test]
    fn levels_answer_queries() {
        let mut b = Builder::new(FmConfig { sample_rate: 4 }, true).with_chunk_symbols(128);
        let mut found = 0usize;
        b.build_stream(docs(12), |l| {
            found += l.count(b"payload");
        });
        assert_eq!(found, 12);
    }

    #[test]
    fn empty_stream_builds_nothing() {
        let mut b = Builder::new(FmConfig { sample_rate: 4 }, false);
        let mut calls = 0;
        b.build_stream(Vec::new(), |_| calls += 1);
        assert_eq!(calls, 0);
        assert!(b.flush().is_none());
    }

    #[test]
    fn install_matches_insert_at_a_time() {
        let opts = DynOptions {
            min_capacity: 32,
            tau: 4,
            ..DynOptions::default()
        };
        let config = FmConfig { sample_rate: 4 };
        let mut bulk: Transform2Index<FmIndexCompressed> =
            Transform2Index::new(config, opts, RebuildMode::Inline);
        let mut serial: Transform2Index<FmIndexCompressed> =
            Transform2Index::new(config, opts, RebuildMode::Inline);
        for (id, bytes) in docs(30) {
            serial.insert(id, &bytes);
        }
        let mut b = bulk.level_builder().with_chunk_symbols(100);
        b.build_stream(docs(30), |l| bulk.install_bulk_level(l));
        bulk.check_invariants();
        for p in [b"payload".as_slice(), b"document 7", b"bulk", b"zzz"] {
            assert_eq!(bulk.count(p), serial.count(p));
            let mut a = bulk.find(p);
            let mut c = serial.find(p);
            a.sort();
            c.sort();
            assert_eq!(a, c);
        }
        // Deletes work on bulk-installed levels like any other structure.
        bulk.delete(3);
        serial.delete(3);
        assert_eq!(bulk.count(b"payload"), serial.count(b"payload"));
        bulk.check_invariants();
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_id_panics() {
        let mut index: Transform2Index<FmIndexCompressed> = Transform2Index::new(
            FmConfig { sample_rate: 4 },
            DynOptions::default(),
            RebuildMode::Inline,
        );
        index.insert(5, b"already here");
        let b = index.level_builder();
        let level = b.build_batch(&[(5, b"duplicate".to_vec())]);
        index.install_bulk_level(level);
    }
}
