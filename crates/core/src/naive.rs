//! A brute-force reference index: ground truth for every test in the
//! repository, and the "no index" baseline in benchmarks.

use dyndex_text::Occurrence;
use std::collections::BTreeMap;

/// Stores documents verbatim; answers queries by scanning.
#[derive(Clone, Debug, Default)]
pub struct NaiveIndex {
    docs: BTreeMap<u64, Vec<u8>>,
    symbols: usize,
}

impl NaiveIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a document. Panics if the id is taken.
    pub fn insert(&mut self, doc_id: u64, bytes: &[u8]) {
        let prev = self.docs.insert(doc_id, bytes.to_vec());
        assert!(prev.is_none(), "document {doc_id} already present");
        self.symbols += bytes.len();
    }

    /// Deletes a document, returning its bytes.
    pub fn delete(&mut self, doc_id: u64) -> Option<Vec<u8>> {
        let bytes = self.docs.remove(&doc_id)?;
        self.symbols -= bytes.len();
        Some(bytes)
    }

    /// Whether `doc_id` is present.
    pub fn contains(&self, doc_id: u64) -> bool {
        self.docs.contains_key(&doc_id)
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Total bytes.
    pub fn symbol_count(&self) -> usize {
        self.symbols
    }

    /// All occurrences of `pattern`, sorted.
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        let mut out = Vec::new();
        if pattern.is_empty() {
            return out;
        }
        for (&id, d) in &self.docs {
            if pattern.len() > d.len() {
                continue;
            }
            for off in 0..=(d.len() - pattern.len()) {
                if &d[off..off + pattern.len()] == pattern {
                    out.push(Occurrence {
                        doc: id,
                        offset: off,
                    });
                }
            }
        }
        out
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.find(pattern).len()
    }

    /// Bytes of a document.
    pub fn doc_bytes(&self, doc_id: u64) -> Option<&[u8]> {
        self.docs.get(&doc_id).map(|v| v.as_slice())
    }

    /// All `(id, bytes)` pairs, sorted by id.
    pub fn export_docs(&self) -> Vec<(u64, Vec<u8>)> {
        self.docs.iter().map(|(&id, d)| (id, d.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let mut n = NaiveIndex::new();
        n.insert(1, b"abab");
        n.insert(2, b"ba");
        assert_eq!(n.count(b"ab"), 2);
        assert_eq!(n.count(b"ba"), 2);
        assert_eq!(
            n.find(b"ab"),
            vec![
                Occurrence { doc: 1, offset: 0 },
                Occurrence { doc: 1, offset: 2 }
            ]
        );
        assert_eq!(n.delete(1).as_deref(), Some(b"abab".as_slice()));
        assert_eq!(n.count(b"ab"), 0);
        assert_eq!(n.symbol_count(), 2);
    }
}
