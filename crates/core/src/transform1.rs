//! **Transformation 1** (§2): static compressed index → fully-dynamic
//! index with amortized update cost.
//!
//! The collection is split into sub-collections `C0, C1, …, Cr` with
//! geometrically growing capacities (`max_i = 2(n/log²n)·log^{εi} n`).
//! `C0` is the uncompressed generalized suffix tree (Appendix A.2); every
//! `C_i, i ≥ 1` is a [`DeletionOnlyIndex`] over the plugged-in static
//! index. Insertions cascade: the smallest level that can absorb all
//! smaller levels plus the new document is rebuilt; a *global rebuild*
//! refreshes the schedule when `n` leaves `[nf/2, 2nf]`. Deletions are
//! lazy, with per-level purges at deleted fraction `1/τ`.
//!
//! With `Growth::Doubling` this same type implements **Transformation 3**
//! (Appendix A.4): `O(log log n)` levels, cheaper amortized insertion,
//! `× log log n` on range-finding.

use crate::config::{CapacitySchedule, DynOptions};
use crate::deletion_only::DeletionOnlyIndex;
use crate::stats::{LevelStats, UpdateWork};
use crate::traits::StaticIndex;
use dyndex_succinct::SpaceUsage;
use dyndex_text::{Occurrence, SuffixTree};
use std::collections::HashMap;

/// Where a document currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Location {
    C0,
    Level(usize),
}

/// A fully-dynamic document index with amortized updates (Transformation 1;
/// Transformation 3 with [`crate::config::Growth::Doubling`]).
#[derive(Debug)]
pub struct Transform1Index<I: StaticIndex> {
    /// The uncompressed fully-dynamic sub-collection `C0`.
    c0: SuffixTree,
    /// Levels `1..=r` (index 0 unused).
    levels: Vec<Option<DeletionOnlyIndex<I>>>,
    schedule: CapacitySchedule,
    config: I::Config,
    options: DynOptions,
    locations: HashMap<u64, Location>,
    /// Alive symbols (bytes) across all structures.
    n: usize,
    work: UpdateWork,
}

impl<I: StaticIndex> Transform1Index<I> {
    /// Creates an empty dynamic index.
    pub fn new(config: I::Config, options: DynOptions) -> Self {
        let schedule = CapacitySchedule::new(0, &options);
        let levels = (0..schedule.caps.len()).map(|_| None).collect();
        Transform1Index {
            c0: SuffixTree::new(),
            levels,
            schedule,
            config,
            options,
            locations: HashMap::new(),
            n: 0,
            work: UpdateWork::default(),
        }
    }

    /// Builds an index preloaded with `docs` (one global rebuild).
    pub fn with_docs(config: I::Config, options: DynOptions, docs: &[(u64, &[u8])]) -> Self {
        let mut idx = Self::new(config, options);
        for (id, bytes) in docs {
            idx.insert(*id, bytes);
        }
        idx
    }

    /// Number of alive documents.
    pub fn num_docs(&self) -> usize {
        self.locations.len()
    }

    /// Total alive bytes.
    pub fn symbol_count(&self) -> usize {
        self.n
    }

    /// Whether `doc_id` is present.
    pub fn contains(&self, doc_id: u64) -> bool {
        self.locations.contains_key(&doc_id)
    }

    /// Cumulative update-work statistics (for the figure harnesses).
    pub fn work(&self) -> &UpdateWork {
        &self.work
    }

    /// Alive symbols at level `i` (0 = C0).
    fn level_size(&self, i: usize) -> usize {
        if i == 0 {
            self.c0.symbol_count()
        } else {
            self.levels[i].as_ref().map_or(0, |l| l.alive_symbols())
        }
    }

    /// Inserts a document.
    ///
    /// Amortized `O(u(n) · log^ε n)` per symbol (Transformation 1) or
    /// `O(u(n) · log log n)` (Transformation 3).
    ///
    /// # Panics
    /// Panics if `doc_id` is already present.
    pub fn insert(&mut self, doc_id: u64, bytes: &[u8]) {
        assert!(
            !self.locations.contains_key(&doc_id),
            "document {doc_id} already present"
        );
        self.work.begin_op();
        self.n += bytes.len();
        // Global rebuild when n outgrows the schedule (paper: "when the
        // total number of elements is at least doubled").
        if self.n > 2 * self.schedule.nf.max(self.options.min_capacity) {
            self.global_rebuild(Some((doc_id, bytes)));
            return;
        }
        self.insert_into_c0_or_cascade(doc_id, bytes);
    }

    fn insert_into_c0_or_cascade(&mut self, doc_id: u64, bytes: &[u8]) {
        // Find the smallest j with  Σ_{i<=j} size(i) + |T| <= max_j.
        let mut prefix = 0usize;
        let mut target: Option<usize> = None;
        for j in 0..self.levels.len() {
            prefix += self.level_size(j);
            if prefix + bytes.len() <= self.schedule.cap(j) {
                target = Some(j);
                break;
            }
        }
        match target {
            Some(0) => {
                self.c0.insert(doc_id, bytes);
                self.locations.insert(doc_id, Location::C0);
                self.work.count_symbols(bytes.len());
            }
            Some(j) => self.rebuild_level_from_prefix(j, Some((doc_id, bytes))),
            None => {
                // Nothing fits: global rebuild absorbs everything.
                self.global_rebuild(Some((doc_id, bytes)));
            }
        }
    }

    /// Rebuilds level `j` from `C0 ∪ C1 ∪ … ∪ Cj (∪ new doc)`.
    fn rebuild_level_from_prefix(&mut self, j: usize, new_doc: Option<(u64, &[u8])>) {
        let mut docs: Vec<(u64, Vec<u8>)> = self.c0.export_docs();
        self.c0 = SuffixTree::new();
        for level in self.levels[1..=j].iter_mut() {
            if let Some(del) = level.take() {
                docs.extend(del.export_alive_docs());
            }
        }
        if let Some((id, bytes)) = new_doc {
            docs.push((id, bytes.to_vec()));
        }
        let total: usize = docs.iter().map(|(_, d)| d.len()).sum();
        debug_assert!(total <= self.schedule.cap(j), "level {j} overfull");
        for (id, _) in &docs {
            self.locations.insert(*id, Location::Level(j));
        }
        let doc_refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
        self.levels[j] = Some(DeletionOnlyIndex::build(
            &doc_refs,
            &self.config,
            self.options.counting,
        ));
        self.work.count_rebuild(total);
    }

    /// Moves everything into a fresh top level under a schedule computed
    /// from the current size (the paper's global rebuild).
    fn global_rebuild(&mut self, new_doc: Option<(u64, &[u8])>) {
        let mut docs: Vec<(u64, Vec<u8>)> = self.c0.export_docs();
        self.c0 = SuffixTree::new();
        for level in self.levels.iter_mut().skip(1) {
            if let Some(del) = level.take() {
                docs.extend(del.export_alive_docs());
            }
        }
        if let Some((id, bytes)) = new_doc {
            docs.push((id, bytes.to_vec()));
        }
        self.schedule = CapacitySchedule::new(self.n, &self.options);
        self.levels = (0..self.schedule.caps.len()).map(|_| None).collect();
        let r = self.levels.len() - 1;
        if !docs.is_empty() {
            for (id, _) in &docs {
                self.locations.insert(*id, Location::Level(r));
            }
            let doc_refs: Vec<(u64, &[u8])> =
                docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
            self.levels[r] = Some(DeletionOnlyIndex::build(
                &doc_refs,
                &self.config,
                self.options.counting,
            ));
        }
        let total: usize = docs.iter().map(|(_, d)| d.len()).sum();
        self.work.count_global_rebuild(total);
    }

    /// Deletes a document, returning its bytes.
    ///
    /// Amortized `O(u(n)·τ + tSA + …)` per symbol (§2).
    pub fn delete(&mut self, doc_id: u64) -> Option<Vec<u8>> {
        let loc = self.locations.remove(&doc_id)?;
        self.work.begin_op();
        let bytes = match loc {
            Location::C0 => self.c0.delete(doc_id).expect("location map out of sync"),
            Location::Level(i) => {
                let level = self.levels[i].as_mut().expect("location map out of sync");
                let bytes = level.delete(doc_id).expect("location map out of sync");
                if level.needs_purge(self.options.tau) {
                    self.purge_level(i);
                }
                bytes
            }
        };
        self.n -= bytes.len();
        // Keep nf = Θ(n): shrink-triggered global rebuild.
        if self.n * 2 < self.schedule.nf && self.schedule.nf > self.options.min_capacity {
            self.global_rebuild(None);
        }
        Some(bytes)
    }

    /// Rebuilds level `i` in place without its deleted documents (§2's
    /// purge of a semi-dynamic index).
    fn purge_level(&mut self, i: usize) {
        let Some(del) = self.levels[i].take() else {
            return;
        };
        let docs = del.export_alive_docs();
        if docs.is_empty() {
            self.work.count_purge(0);
            return;
        }
        let total: usize = docs.iter().map(|(_, d)| d.len()).sum();
        let doc_refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
        self.levels[i] = Some(DeletionOnlyIndex::build(
            &doc_refs,
            &self.config,
            self.options.counting,
        ));
        self.work.count_purge(total);
    }

    /// All occurrences of `pattern` across alive documents. Queries all
    /// `O(r)` sub-collections; costs the static index's range-finding plus
    /// `tlocate` per occurrence.
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        let mut out = self.c0.find(pattern);
        for level in self.levels.iter().flatten() {
            out.extend(level.find(pattern));
        }
        out
    }

    /// Counts occurrences of `pattern` (Theorem 1 when counting is enabled).
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.c0.count(pattern)
            + self
                .levels
                .iter()
                .flatten()
                .map(|l| l.count(pattern))
                .sum::<usize>()
    }

    /// Extracts up to `len` bytes of a document from `offset`.
    pub fn extract(&self, doc_id: u64, offset: usize, len: usize) -> Option<Vec<u8>> {
        match self.locations.get(&doc_id)? {
            Location::C0 => {
                let bytes = self.c0.doc_bytes(doc_id)?;
                let a = offset.min(bytes.len());
                let b = (offset + len).min(bytes.len());
                Some(bytes[a..b].to_vec())
            }
            Location::Level(i) => self.levels[*i].as_ref()?.extract(doc_id, offset, len),
        }
    }

    /// Per-level census (for the Figure 1 harness).
    pub fn level_stats(&self) -> Vec<LevelStats> {
        let mut out = vec![LevelStats {
            name: "C0".to_string(),
            capacity: self.schedule.cap(0),
            alive_symbols: self.c0.symbol_count(),
            dead_symbols: self.c0.retained_dead_symbols(),
            docs: self.c0.num_docs(),
        }];
        for (i, level) in self.levels.iter().enumerate().skip(1) {
            let (alive, dead, docs) = level.as_ref().map_or((0, 0, 0), |l| {
                (l.alive_symbols(), l.dead_symbols(), l.num_docs())
            });
            out.push(LevelStats {
                name: format!("C{i}"),
                capacity: self.schedule.cap(i),
                alive_symbols: alive,
                dead_symbols: dead,
                docs,
            });
        }
        out
    }

    /// Validates the §2 invariants (used by tests and figure harnesses).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        // Capacity bounds.
        assert!(
            self.c0.symbol_count() <= self.schedule.cap(0),
            "C0 over capacity"
        );
        for (i, level) in self.levels.iter().enumerate().skip(1) {
            if let Some(l) = level.as_ref() {
                assert!(
                    l.alive_symbols() <= self.schedule.cap(i),
                    "level {i} over capacity: {} > {}",
                    l.alive_symbols(),
                    self.schedule.cap(i)
                );
                // Deleted fraction bounded by 1/τ (checked post-purge).
                assert!(
                    !l.needs_purge(self.options.tau)
                        || l.dead_symbols() * self.options.tau
                            == (l.alive_symbols() + l.dead_symbols()),
                    "level {i} holds too much deleted data"
                );
            }
        }
        // Location map consistency.
        let mut total = 0usize;
        for (&id, &loc) in &self.locations {
            match loc {
                Location::C0 => assert!(self.c0.contains_doc(id), "{id} missing from C0"),
                Location::Level(i) => assert!(
                    self.levels[i].as_ref().is_some_and(|l| l.contains(id)),
                    "{id} missing from level {i}"
                ),
            }
        }
        total += self.c0.symbol_count();
        for level in self.levels.iter().flatten() {
            total += level.alive_symbols();
        }
        assert_eq!(total, self.n, "symbol accounting out of sync");
    }
}

impl<I: StaticIndex> SpaceUsage for Transform1Index<I> {
    fn heap_bytes(&self) -> usize {
        self.c0.heap_bytes()
            + self
                .levels
                .iter()
                .flatten()
                .map(|l| l.heap_bytes())
                .sum::<usize>()
            + self.locations.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIndex;
    use crate::traits::FmConfig;
    use dyndex_succinct::HuffmanWavelet;
    use dyndex_text::FmIndex;

    type DynFm = Transform1Index<FmIndex<HuffmanWavelet>>;

    fn opts() -> DynOptions {
        DynOptions {
            min_capacity: 32,
            ..DynOptions::default()
        }
    }

    fn assert_matches(idx: &DynFm, naive: &NaiveIndex, patterns: &[&[u8]]) {
        for &p in patterns {
            let mut got = idx.find(p);
            got.sort();
            let want = naive.find(p);
            assert_eq!(got, want, "pattern {:?}", String::from_utf8_lossy(p));
            assert_eq!(
                idx.count(p),
                want.len(),
                "count {:?}",
                String::from_utf8_lossy(p)
            );
        }
    }

    #[test]
    fn insert_query_small() {
        let mut idx = DynFm::new(FmConfig { sample_rate: 4 }, opts());
        let mut naive = NaiveIndex::new();
        for (id, d) in [
            (1u64, b"hello world".as_slice()),
            (2, b"world wide web"),
            (3, b"w"),
        ] {
            idx.insert(id, d);
            naive.insert(id, d);
        }
        idx.check_invariants();
        assert_matches(&idx, &naive, &[b"world", b"w", b"web", b"ld", b"zzz"]);
        assert_eq!(idx.num_docs(), 3);
    }

    #[test]
    fn cascade_to_static_levels() {
        let mut idx = DynFm::new(FmConfig { sample_rate: 4 }, opts());
        let mut naive = NaiveIndex::new();
        // Enough volume to overflow C0 (cap 32 at min schedule) repeatedly.
        for i in 0..60u64 {
            let doc = format!("document number {i} contains filler text {i}");
            idx.insert(i, doc.as_bytes());
            naive.insert(i, doc.as_bytes());
            idx.check_invariants();
        }
        assert_matches(
            &idx,
            &naive,
            &[b"document", b"number 3", b"filler", b"text 59"],
        );
        assert!(idx.work().rebuilds > 0, "cascades must have happened");
    }

    #[test]
    fn delete_everywhere() {
        let mut idx = DynFm::new(FmConfig { sample_rate: 4 }, opts());
        let mut naive = NaiveIndex::new();
        for i in 0..40u64 {
            let doc = format!("shared corpus entry {i} with overlap overlap");
            idx.insert(i, doc.as_bytes());
            naive.insert(i, doc.as_bytes());
        }
        // Delete every third document (hits C0 and static levels).
        for i in (0..40u64).step_by(3) {
            let want = naive.delete(i);
            assert_eq!(idx.delete(i), want, "delete {i}");
            idx.check_invariants();
        }
        assert_matches(
            &idx,
            &naive,
            &[b"overlap", b"entry 1", b"entry 3", b"corpus"],
        );
        assert_eq!(idx.delete(999), None);
    }

    #[test]
    fn churn_matches_naive() {
        let mut idx = DynFm::new(FmConfig { sample_rate: 4 }, opts());
        let mut naive = NaiveIndex::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut live: Vec<u64> = Vec::new();
        for step in 0..200u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            if !r.is_multiple_of(4) || live.is_empty() {
                let id = 1000 + step;
                let doc = format!("entry {step} {}", "abcab".repeat((r % 7) as usize));
                idx.insert(id, doc.as_bytes());
                naive.insert(id, doc.as_bytes());
                live.push(id);
            } else {
                let pick = (r as usize / 4) % live.len();
                let id = live.swap_remove(pick);
                assert_eq!(idx.delete(id), naive.delete(id), "step {step}");
            }
            if step % 29 == 0 {
                idx.check_invariants();
                assert_matches(&idx, &naive, &[b"abcab", b"entry 1", b"bc", b"cabab"]);
            }
        }
        idx.check_invariants();
        assert_matches(&idx, &naive, &[b"abcab", b"entry", b"bca"]);
    }

    #[test]
    fn huge_document_forces_global_rebuild() {
        let mut idx = DynFm::new(FmConfig { sample_rate: 8 }, opts());
        let mut naive = NaiveIndex::new();
        idx.insert(1, b"tiny");
        naive.insert(1, b"tiny");
        let big = "leviathan ".repeat(500);
        idx.insert(2, big.as_bytes());
        naive.insert(2, big.as_bytes());
        idx.check_invariants();
        assert_matches(&idx, &naive, &[b"leviathan", b"tiny", b"an le"]);
        assert!(idx.work().global_rebuilds >= 1);
    }

    #[test]
    fn extraction() {
        let mut idx = DynFm::new(FmConfig { sample_rate: 4 }, opts());
        idx.insert(5, b"extract me please");
        assert_eq!(idx.extract(5, 8, 2).as_deref(), Some(b"me".as_slice()));
        for i in 0..50u64 {
            idx.insert(100 + i, format!("padding text {i}").as_bytes());
        }
        // Doc 5 has moved to a static level by now.
        assert_eq!(idx.extract(5, 8, 2).as_deref(), Some(b"me".as_slice()));
        assert_eq!(
            idx.extract(5, 11, 100).as_deref(),
            Some(b"please".as_slice())
        );
        assert_eq!(idx.extract(12345, 0, 1), None);
    }
}
