//! The semi-dynamic, deletion-only index of §2 ("Supporting Document
//! Deletions").
//!
//! Wraps any [`StaticIndex`] with:
//! * the bit vector `B` over suffix-array rows (`B[j] = 0` iff row `j`
//!   belongs to a deleted document), held in the Lemma 3 structure `V`
//!   ([`OneBitReporter`]) so that a query range's *surviving* rows are
//!   reported in O(1) each;
//! * optionally (Theorem 1) a rank structure over `B` ([`FlipRank`]) so
//!   occurrences can be *counted* without locating;
//! * deleted-symbol accounting, so the owner can purge the index once a
//!   `1/τ` fraction is dead.

use crate::traits::StaticIndex;
use dyndex_succinct::{FlipRank, OneBitReporter, SpaceUsage};
use dyndex_text::Occurrence;
use std::collections::HashMap;
use std::sync::Arc;

/// A static index plus lazy deletions.
///
/// The wrapped static index is held behind an [`Arc`]: it is immutable
/// for the wrapper's whole lifetime (only the deletion bitmap mutates),
/// so clones share it. That makes [`Clone`] cheap enough for
/// copy-on-write level sharing in `Transform2Index` — a clone pays for
/// the bitmap structures and the slot map, never for the suffix-array /
/// wavelet payload.
#[derive(Debug)]
pub struct DeletionOnlyIndex<I: StaticIndex> {
    index: Arc<I>,
    /// The paper's `B`/`V`: alive suffix rows.
    alive: OneBitReporter,
    /// Theorem 1: rank over `B` for counting (present iff counting enabled).
    counts: Option<FlipRank>,
    /// doc id → concatenation slot (for deletions).
    slots: HashMap<u64, usize>,
    /// Bytes belonging to deleted documents still encoded in the index.
    dead_symbols: usize,
    /// Bytes belonging to alive documents.
    alive_symbols: usize,
}

/// Manual impl: sharing the `Arc` means `I` itself never needs `Clone`
/// (the derive would demand it), and the static payload is never copied.
impl<I: StaticIndex> Clone for DeletionOnlyIndex<I> {
    fn clone(&self) -> Self {
        DeletionOnlyIndex {
            index: Arc::clone(&self.index),
            alive: self.alive.clone(),
            counts: self.counts.clone(),
            slots: self.slots.clone(),
            dead_symbols: self.dead_symbols,
            alive_symbols: self.alive_symbols,
        }
    }
}

impl<I: StaticIndex> DeletionOnlyIndex<I> {
    /// Builds the wrapper around a fresh static index over `docs`.
    pub fn build(docs: &[(u64, &[u8])], config: &I::Config, counting: bool) -> Self {
        let index = I::build(docs, config);
        Self::from_static(index, counting)
    }

    /// Wraps an already-built static index (all documents alive).
    pub fn from_static(index: I, counting: bool) -> Self {
        let rows = index.text_len();
        let slots = index
            .doc_ids()
            .iter()
            .enumerate()
            .map(|(slot, &id)| (id, slot))
            .collect();
        let alive_symbols = index.symbol_count();
        DeletionOnlyIndex {
            index: Arc::new(index),
            alive: OneBitReporter::new_all_ones(rows),
            counts: counting.then(|| FlipRank::new(rows, true)),
            slots,
            dead_symbols: 0,
            alive_symbols,
        }
    }

    /// The wrapped static index.
    pub fn inner(&self) -> &I {
        &self.index
    }

    /// Whether counting (Theorem 1) is enabled.
    pub fn counting_enabled(&self) -> bool {
        self.counts.is_some()
    }

    /// Bytes of alive documents.
    pub fn alive_symbols(&self) -> usize {
        self.alive_symbols
    }

    /// Bytes of deleted documents still physically present.
    pub fn dead_symbols(&self) -> usize {
        self.dead_symbols
    }

    /// Number of alive documents.
    pub fn num_docs(&self) -> usize {
        self.slots.len()
    }

    /// Whether no documents remain alive.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `doc_id` is alive here.
    pub fn contains(&self, doc_id: u64) -> bool {
        self.slots.contains_key(&doc_id)
    }

    /// Alive doc ids (arbitrary order).
    pub fn doc_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.keys().copied()
    }

    /// Byte length of an alive document.
    pub fn doc_len(&self, doc_id: u64) -> Option<usize> {
        self.slots.get(&doc_id).map(|&s| self.index.doc_len(s))
    }

    /// Extracts bytes of an alive document.
    pub fn extract(&self, doc_id: u64, offset: usize, len: usize) -> Option<Vec<u8>> {
        self.slots
            .get(&doc_id)
            .map(|&s| self.index.extract(s, offset, len))
    }

    /// Lazily deletes a document: marks its suffix rows dead. Returns the
    /// document's bytes, or `None` if absent. Cost: `tSA` once plus O(1)
    /// amortized per symbol, plus `O(log n)` per symbol when counting is on.
    pub fn delete(&mut self, doc_id: u64) -> Option<Vec<u8>> {
        let slot = self.slots.remove(&doc_id)?;
        let bytes = self.index.extract(slot, 0, self.index.doc_len(slot));
        for row in self.index.doc_suffix_rows(slot) {
            self.alive.zero(row);
            if let Some(c) = self.counts.as_mut() {
                c.set(row, false);
            }
        }
        self.alive_symbols -= bytes.len();
        self.dead_symbols += bytes.len();
        Some(bytes)
    }

    /// All occurrences of `pattern` in *alive* documents.
    ///
    /// Range-finding once, then O(1) per surviving row (Lemma 3) plus the
    /// static index's `tlocate` per reported occurrence.
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        self.find_limit(pattern, usize::MAX)
    }

    /// Up to `limit` occurrences of `pattern` in alive documents.
    ///
    /// Early-terminating locate: range-finding runs once, but at most
    /// `limit` surviving rows are located — total `O(range-finding +
    /// limit · tlocate)`, independent of the full occurrence count.
    pub fn find_limit(&self, pattern: &[u8], limit: usize) -> Vec<Occurrence> {
        if limit == 0 {
            return Vec::new();
        }
        match self.index.find_range(pattern) {
            None => Vec::new(),
            Some((l, r)) => self
                .alive
                .report(l, r.saturating_sub(1))
                .take(limit)
                .map(|row| self.index.locate_row(row).1)
                .collect(),
        }
    }

    /// Counts occurrences of `pattern` in alive documents.
    ///
    /// O(range-finding + log n) when counting is enabled (Theorem 1);
    /// falls back to enumeration otherwise.
    pub fn count(&self, pattern: &[u8]) -> usize {
        match self.index.find_range(pattern) {
            None => 0,
            Some((l, r)) => match &self.counts {
                Some(c) => c.count_ones_range(l, r),
                None => self.alive.report(l, r.saturating_sub(1)).count(),
            },
        }
    }

    /// True iff at least `1/τ` of the stored symbols belong to deleted
    /// documents — the §2 purge trigger.
    pub fn needs_purge(&self, tau: usize) -> bool {
        self.dead_symbols * tau >= (self.alive_symbols + self.dead_symbols).max(1)
    }

    /// Copies the alive-suffix-row bits into a plain `BitVec`
    /// (persistence encode path; the reporter and the optional counting
    /// structure are both re-derived from it on load).
    #[doc(hidden)]
    pub fn persist_alive_bits(&self) -> dyndex_succinct::BitVec {
        self.alive.to_bitvec()
    }

    /// Reassembles from parts (persistence decode path): the wrapped
    /// static index, the alive-row bits, the counting flag, and the ids
    /// of alive documents. Symbol accounting, the slot map, the Lemma 3
    /// reporter, and the Theorem 1 rank structure are all re-derived.
    /// Returns `Err` (never panics) on structurally inconsistent input.
    #[doc(hidden)]
    pub fn from_persist_parts(
        index: I,
        alive_rows: &dyndex_succinct::BitVec,
        counting: bool,
        alive_ids: &[u64],
    ) -> Result<Self, String> {
        if alive_rows.len() != index.text_len() {
            return Err("alive bit vector length != suffix row count".into());
        }
        let all_slots: HashMap<u64, usize> = index
            .doc_ids()
            .iter()
            .enumerate()
            .map(|(slot, &id)| (id, slot))
            .collect();
        let mut slots = HashMap::with_capacity(alive_ids.len());
        let mut alive_symbols = 0usize;
        for &id in alive_ids {
            let Some(&slot) = all_slots.get(&id) else {
                return Err(format!("alive document {id} not stored in the index"));
            };
            if slots.insert(id, slot).is_some() {
                return Err(format!("alive document {id} listed twice"));
            }
            alive_symbols += index.doc_len(slot);
        }
        let total = index.symbol_count();
        if alive_symbols > total {
            return Err("alive symbols exceed stored symbols".into());
        }
        Ok(DeletionOnlyIndex {
            alive: OneBitReporter::from_bitvec(alive_rows),
            counts: counting.then(|| FlipRank::from_bitvec(alive_rows)),
            slots,
            dead_symbols: total - alive_symbols,
            alive_symbols,
            index: Arc::new(index),
        })
    }

    /// Extracts all *alive* documents (purge/merge input).
    pub fn export_alive_docs(&self) -> Vec<(u64, Vec<u8>)> {
        self.index
            .extract_all_docs()
            .into_iter()
            .filter(|(id, _)| self.slots.contains_key(id))
            .collect()
    }
}

impl<I: StaticIndex> SpaceUsage for DeletionOnlyIndex<I> {
    fn heap_bytes(&self) -> usize {
        self.index.heap_bytes()
            + self.alive.heap_bytes()
            + self.counts.heap_bytes()
            + self.slots.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FmConfig;
    use dyndex_succinct::HuffmanWavelet;
    use dyndex_text::FmIndex;

    type DelFm = DeletionOnlyIndex<FmIndex<HuffmanWavelet>>;

    const DOCS: &[(u64, &[u8])] = &[
        (1, b"abracadabra"),
        (2, b"bazaar bazaar"),
        (3, b"cadillac"),
        (4, b"abra"),
    ];

    fn naive(docs: &[(u64, &[u8])], alive: &[u64], pattern: &[u8]) -> Vec<Occurrence> {
        let mut out = Vec::new();
        for (id, d) in docs {
            if !alive.contains(id) || pattern.len() > d.len() || pattern.is_empty() {
                continue;
            }
            for off in 0..=(d.len() - pattern.len()) {
                if &d[off..off + pattern.len()] == pattern {
                    out.push(Occurrence {
                        doc: *id,
                        offset: off,
                    });
                }
            }
        }
        out.sort();
        out
    }

    fn check(del: &DelFm, alive: &[u64]) {
        for p in [b"abra".as_slice(), b"a", b"za", b"cad", b"ac", b"qqq"] {
            let want = naive(DOCS, alive, p);
            let mut got = del.find(p);
            got.sort();
            assert_eq!(got, want, "find {:?}", String::from_utf8_lossy(p));
            assert_eq!(
                del.count(p),
                want.len(),
                "count {:?}",
                String::from_utf8_lossy(p)
            );
        }
    }

    #[test]
    fn delete_hides_occurrences() {
        let mut del = DelFm::build(DOCS, &FmConfig { sample_rate: 4 }, true);
        check(&del, &[1, 2, 3, 4]);
        assert_eq!(del.delete(1).as_deref(), Some(b"abracadabra".as_slice()));
        check(&del, &[2, 3, 4]);
        assert_eq!(del.delete(4).as_deref(), Some(b"abra".as_slice()));
        check(&del, &[2, 3]);
        assert_eq!(del.delete(4), None);
        assert_eq!(del.dead_symbols(), 11 + 4);
        assert_eq!(del.alive_symbols(), 13 + 8);
    }

    #[test]
    fn counting_disabled_falls_back() {
        let mut del = DelFm::build(DOCS, &FmConfig { sample_rate: 4 }, false);
        assert!(!del.counting_enabled());
        del.delete(2);
        check(&del, &[1, 3, 4]);
    }

    #[test]
    fn purge_trigger() {
        let mut del = DelFm::build(DOCS, &FmConfig { sample_rate: 4 }, false);
        assert!(!del.needs_purge(4));
        del.delete(2); // 13 of 36 bytes dead
        assert!(del.needs_purge(3)); // 13*3 >= 36
        assert!(!del.needs_purge(2)); // 13*2 < 36
        let alive = del.export_alive_docs();
        let ids: Vec<u64> = alive.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn delete_everything() {
        let mut del = DelFm::build(DOCS, &FmConfig { sample_rate: 2 }, true);
        for (id, _) in DOCS {
            del.delete(*id);
        }
        assert!(del.is_empty());
        check(&del, &[]);
        assert!(del.export_alive_docs().is_empty());
    }
}
