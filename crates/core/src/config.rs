//! Shared configuration for the dynamizing transformations: the
//! geometric sub-collection capacity schedule of §2–§3 and Appendix A.4.

/// How sub-collection capacities grow with the level index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Growth {
    /// Transformation 1/2 schedule: `max_i = (2n/log²n) · log^{εi} n`,
    /// giving `r = O(1)` levels (for constant ε).
    PolyLog {
        /// The paper's ε (0 < ε ≤ 1).
        eps: f64,
    },
    /// Transformation 3 schedule (Appendix A.4): `max_i = (2n/log²n)·2^i`,
    /// giving `r = O(log log n)` levels and cheaper insertions at the cost
    /// of a `log log n` factor on range-finding.
    Doubling,
}

/// Tunables of a dynamized index.
#[derive(Clone, Copy, Debug)]
pub struct DynOptions {
    /// The paper's τ: a structure is purged once a `1/τ` fraction of its
    /// symbols belongs to deleted documents. Space overhead for deleted
    /// data is `O(n/τ)`.
    pub tau: usize,
    /// Enable Theorem 1 counting support (costs `O(log n)`-ish per deleted
    /// symbol on updates, buys `O(log n)` counting).
    pub counting: bool,
    /// Capacity growth schedule.
    pub growth: Growth,
    /// Floor for every capacity, so tiny collections behave (the paper's
    /// asymptotics assume n is large).
    pub min_capacity: usize,
}

impl Default for DynOptions {
    fn default() -> Self {
        DynOptions {
            tau: 8,
            counting: true,
            growth: Growth::PolyLog { eps: 0.5 },
            min_capacity: 64,
        }
    }
}

/// The capacity schedule derived from a reference size `nf` (the paper's
/// `nf = Θ(n)`, refreshed by global rebuilds).
#[derive(Clone, Debug)]
pub struct CapacitySchedule {
    /// `caps[i]` = maximum symbols of sub-collection `C_i` (`caps[0]` = C0).
    pub caps: Vec<usize>,
    /// The reference size the schedule was computed from.
    pub nf: usize,
}

impl CapacitySchedule {
    /// Computes the §2 schedule for reference size `nf`: levels grow until
    /// the top one covers `2·nf` (Transformation 1/3 — no top collections).
    pub fn new(nf: usize, options: &DynOptions) -> Self {
        let base = nf.max(options.min_capacity);
        Self::with_target(nf, options, 2 * base)
    }

    /// Computes the §3 schedule: levels stop at `2·nf/τ` — the paper picks
    /// `r` such that `max_r = nf/τ`, so the sub-collections `C_i` hold only
    /// an `O(1/τ)` fraction and the bulk lives in **top collections**
    /// (which is what bounds the space wasted by locked copies).
    pub fn new_truncated(nf: usize, options: &DynOptions) -> Self {
        let base = nf.max(options.min_capacity);
        Self::with_target(
            nf,
            options,
            (2 * base / options.tau.max(1)).max(options.min_capacity),
        )
    }

    fn with_target(nf: usize, options: &DynOptions, target: usize) -> Self {
        let base = nf.max(options.min_capacity) as f64;
        let lg = base.log2().max(2.0);
        let c0 = ((2.0 * base) / (lg * lg)).ceil() as usize;
        let c0 = c0.max(options.min_capacity);
        let mut caps = vec![c0];
        let mut i = 1usize;
        loop {
            let cap = match options.growth {
                Growth::PolyLog { eps } => (c0 as f64 * lg.powf(eps * i as f64)).ceil() as usize,
                Growth::Doubling => c0.saturating_mul(1usize << i.min(48)),
            };
            let cap = cap.max(options.min_capacity);
            caps.push(cap);
            if cap >= target || i > 64 {
                break;
            }
            i += 1;
        }
        CapacitySchedule { caps, nf }
    }

    /// Number of static levels (`r`): levels are `1..=r`, level 0 is `C0`.
    pub fn r(&self) -> usize {
        self.caps.len() - 1
    }

    /// Capacity of level `i`.
    pub fn cap(&self, i: usize) -> usize {
        self.caps[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polylog_schedule_is_geometric_and_covers() {
        let opts = DynOptions::default();
        for nf in [0usize, 100, 10_000, 1_000_000] {
            let s = CapacitySchedule::new(nf, &opts);
            assert!(s.caps.windows(2).all(|w| w[0] <= w[1]), "monotone {nf}");
            assert!(
                *s.caps.last().expect("non-empty") >= 2 * nf,
                "top covers 2n for nf={nf}"
            );
            // O(1) levels for constant eps
            assert!(s.r() <= 40, "r = {} too large", s.r());
        }
    }

    #[test]
    fn doubling_schedule_has_loglog_levels() {
        let opts = DynOptions {
            growth: Growth::Doubling,
            ..DynOptions::default()
        };
        let s = CapacitySchedule::new(1_000_000, &opts);
        // 2n / log²n doubling to 2n needs ~log(log² n) ≈ 9 levels.
        assert!(s.r() <= 12, "r = {}", s.r());
        assert!(*s.caps.last().expect("non-empty") >= 2_000_000);
    }

    #[test]
    fn c0_is_small_fraction() {
        let s = CapacitySchedule::new(1_000_000, &DynOptions::default());
        assert!(s.cap(0) < 1_000_000 / 100, "C0 cap {} too big", s.cap(0));
    }
}
