//! The static-index abstraction the transformations are generic over.
//!
//! The paper (§2) requires of `Is` only that it
//! 1. is `(u(n), w(n))`-constructible (here: [`StaticIndex::build`]),
//! 2. uses monotone space `|S|·φ(S)`,
//! 3. answers queries by the two-step *range-finding* / *locating* method,
//! 4. can compute the suffix-array rank of any suffix (`tSA`), and
//! 5. can report suffix rows per document (needed by lazy deletion).
//!
//! Any index satisfying this interface — every compressed-suffix-array /
//! BWT index, per the paper — can be plugged into Transformations 1–3.
//! We provide two: the FM-index (compressed regime, Tables 1–2) and the
//! classical suffix-array index (fast regime, Table 3).

use dyndex_succinct::{Sequence, SpaceUsage};
use dyndex_text::{FmIndex, Occurrence, SaIndex};

/// A static full-text index over a document collection.
///
/// `Sync` is a supertrait: static structures are immutable once built,
/// shared across query threads by the store layer, and `Arc`-shared
/// between a live index and its frozen snapshots by the persistence
/// layer.
pub trait StaticIndex: SpaceUsage + Send + Sync + Sized + 'static {
    /// Build-time configuration (e.g. the locate sample rate `s`).
    type Config: Clone + Send + Sync + 'static;

    /// Constructs the index over `(doc_id, bytes)` pairs — the paper's
    /// `O(n·u(n))`-time construction.
    fn build(docs: &[(u64, &[u8])], config: &Self::Config) -> Self;

    /// Range-finding: the suffix-array interval `[l, r)` of suffixes
    /// starting with `pattern`, or `None`.
    fn find_range(&self, pattern: &[u8]) -> Option<(usize, usize)>;

    /// Locating: resolve suffix-array row `row` to an occurrence.
    fn locate_row(&self, row: usize) -> (usize, Occurrence);

    /// Length of the encoded text (= number of suffix-array rows).
    fn text_len(&self) -> usize;

    /// Total document bytes stored.
    fn symbol_count(&self) -> usize;

    /// Caller-assigned document ids, in concatenation order.
    fn doc_ids(&self) -> &[u64];

    /// Byte length of the document in concatenation slot `slot`.
    fn doc_len(&self, slot: usize) -> usize;

    /// Extracts up to `len` bytes of document `slot` starting at `offset`.
    fn extract(&self, slot: usize, offset: usize, len: usize) -> Vec<u8>;

    /// Suffix-array rows of all suffixes starting inside document `slot`
    /// (the rows lazy deletion must mark dead). The paper's `tSA` budget.
    fn doc_suffix_rows(&self, slot: usize) -> Vec<usize>;

    /// Reconstructs every stored document.
    fn extract_all_docs(&self) -> Vec<(u64, Vec<u8>)>;
}

/// Configuration for FM-indexes: the paper's space/time parameter `s`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FmConfig {
    /// Locate sample rate (`tlocate = O(s)`, space `O(n log n / s)`).
    pub sample_rate: usize,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig { sample_rate: 8 }
    }
}

impl<S: Sequence + Send + Sync + 'static> StaticIndex for FmIndex<S> {
    type Config = FmConfig;

    fn build(docs: &[(u64, &[u8])], config: &FmConfig) -> Self {
        FmIndex::build(docs, config.sample_rate)
    }
    fn find_range(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        FmIndex::find_range(self, pattern)
    }
    fn locate_row(&self, row: usize) -> (usize, Occurrence) {
        self.resolve(FmIndex::locate_row(self, row))
    }
    fn text_len(&self) -> usize {
        FmIndex::text_len(self)
    }
    fn symbol_count(&self) -> usize {
        FmIndex::symbol_count(self)
    }
    fn doc_ids(&self) -> &[u64] {
        FmIndex::doc_ids(self)
    }
    fn doc_len(&self, slot: usize) -> usize {
        FmIndex::doc_len(self, slot)
    }
    fn extract(&self, slot: usize, offset: usize, len: usize) -> Vec<u8> {
        FmIndex::extract(self, slot, offset, len)
    }
    fn doc_suffix_rows(&self, slot: usize) -> Vec<usize> {
        FmIndex::doc_suffix_rows(self, slot)
    }
    fn extract_all_docs(&self) -> Vec<(u64, Vec<u8>)> {
        FmIndex::extract_all_docs(self)
    }
}

impl StaticIndex for SaIndex {
    type Config = ();

    fn build(docs: &[(u64, &[u8])], _config: &()) -> Self {
        SaIndex::build(docs)
    }
    fn find_range(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        SaIndex::find_range(self, pattern)
    }
    fn locate_row(&self, row: usize) -> (usize, Occurrence) {
        self.resolve(SaIndex::locate_row(self, row))
    }
    fn text_len(&self) -> usize {
        SaIndex::text_len(self)
    }
    fn symbol_count(&self) -> usize {
        SaIndex::symbol_count(self)
    }
    fn doc_ids(&self) -> &[u64] {
        SaIndex::doc_ids(self)
    }
    fn doc_len(&self, slot: usize) -> usize {
        SaIndex::doc_len(self, slot)
    }
    fn extract(&self, slot: usize, offset: usize, len: usize) -> Vec<u8> {
        SaIndex::extract(self, slot, offset, len)
    }
    fn doc_suffix_rows(&self, slot: usize) -> Vec<usize> {
        SaIndex::doc_suffix_rows(self, slot)
    }
    fn extract_all_docs(&self) -> Vec<(u64, Vec<u8>)> {
        SaIndex::extract_all_docs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndex_succinct::HuffmanWavelet;

    fn exercise<I: StaticIndex>(config: &I::Config) {
        let docs: &[(u64, &[u8])] = &[(1, b"abcabc"), (2, b"bca")];
        let idx = I::build(docs, config);
        assert_eq!(idx.doc_ids(), &[1, 2]);
        assert_eq!(idx.symbol_count(), 9);
        let (l, r) = idx.find_range(b"bc").expect("present");
        assert_eq!(r - l, 3);
        let mut occs: Vec<Occurrence> = (l..r).map(|row| idx.locate_row(row).1).collect();
        occs.sort();
        assert_eq!(
            occs,
            vec![
                Occurrence { doc: 1, offset: 1 },
                Occurrence { doc: 1, offset: 4 },
                Occurrence { doc: 2, offset: 0 }
            ]
        );
        assert_eq!(idx.extract(0, 3, 3), b"abc");
    }

    #[test]
    fn fm_and_sa_satisfy_contract() {
        exercise::<FmIndex<HuffmanWavelet>>(&FmConfig { sample_rate: 4 });
        exercise::<SaIndex>(&());
    }
}
