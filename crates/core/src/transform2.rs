//! **Transformation 2** (§3): static compressed index → fully-dynamic
//! index with **worst-case** update cost, via background rebuilding.
//!
//! Layout (paper Fig. 2): sub-collections `C0..Cr` as in Transformation 1,
//! plus, per level, a **locked** copy `L_j` (an old `C_j` whose replacement
//! `N_{j+1}` is being built in the background), a one-document **Temp**
//! index holding the insertion that triggered the rebuild, **top
//! collections** `T_1..T_g` holding the bulk of the data (each
//! `Θ(nf/τ)` symbols, or a single huge document), and `L'_r` (an old `C_r`
//! awaiting top-collection maintenance).
//!
//! Rebuild lifecycle (paper Fig. 3): when `C_{j+1}` must absorb `C_j` and a
//! new document `T`, `C_j` is renamed `L_j`, `T` gets a temporary index
//! `Temp_{j+1}`, and a background job starts building
//! `N_{j+1} = L_j ∪ C_{j+1} ∪ T`. Queries keep hitting `L_j`, the old
//! `C_{j+1}`, and `Temp_{j+1}`; when the job finishes, `N_{j+1}` replaces
//! them atomically.
//!
//! Top collections are kept ≤ `O(1/τ)` deleted via the Lemma 1
//! (Dietz–Sleator) schedule: after every `nf/(2τ log τ)` deleted symbols,
//! the top with the most deletions is rebuilt (merging `L'_r` when
//! present) — one top job at a time.
//!
//! Background execution uses real threads ([`RebuildMode::Background`]),
//! matching the paper's "the cost of creating `N_{j+1}` is distributed
//! among the next `max_j` updates": foreground operations never pay for a
//! rebuild. [`RebuildMode::Inline`] computes each job synchronously at
//! spawn (deterministic; used by tests) while still exercising the same
//! lock/install state machine.

use crate::config::{CapacitySchedule, DynOptions};
use crate::deletion_only::DeletionOnlyIndex;
use crate::metrics::CoreMetrics;
use crate::stats::{LevelStats, UpdateWork};
use crate::traits::StaticIndex;
use dyndex_obs::{Span, SpanKind};
use dyndex_succinct::SpaceUsage;
use dyndex_text::{Occurrence, SuffixTree};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Shard-hint sentinel for an index not owned by a store shard: spans it
/// emits carry no shard label.
pub const NO_SHARD_HINT: usize = usize::MAX;

fn shard_hint(shard: usize) -> Option<usize> {
    (shard != NO_SHARD_HINT).then_some(shard)
}

/// Flight-recorder stripe for a shard hint (unowned indexes share lane 0).
fn shard_stripe(shard: usize) -> usize {
    if shard == NO_SHARD_HINT {
        0
    } else {
        shard
    }
}

/// How background rebuild jobs execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildMode {
    /// Jobs run on a spawned thread; the foreground never blocks unless a
    /// scheduling conflict forces a join (counted in
    /// [`UpdateWork::forced_waits`]).
    Background,
    /// Jobs are computed synchronously at spawn but installed at the next
    /// operation — deterministic, same state machine.
    Inline,
}

/// Where a document currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    C0,
    Cur(usize),
    Locked(usize),
    /// Temp index at level `i` (holds one document).
    Temp(usize),
    TempTop,
    Top(usize),
    LrPrime,
}

/// A background (or inline-deferred) index build.
struct Job<I: StaticIndex> {
    handle: Option<JoinHandle<DeletionOnlyIndex<I>>>,
    ready: Option<DeletionOnlyIndex<I>>,
    /// Deletions requested while the job ran; applied on install.
    pending_deletes: Vec<u64>,
    symbols: usize,
}

impl<I: StaticIndex> Job<I> {
    fn spawn(
        docs: Vec<(u64, Vec<u8>)>,
        config: &I::Config,
        counting: bool,
        mode: RebuildMode,
        metrics: Option<Arc<CoreMetrics>>,
        shard: usize,
    ) -> Self {
        let symbols: usize = docs.iter().map(|(_, d)| d.len()).sum();
        // Build duration is recorded where the build runs: on the spawned
        // thread for background jobs, inline otherwise. A detached index
        // (metrics == None) never reads the clock.
        let build = move |docs: &[(u64, Vec<u8>)], config: &I::Config| {
            let refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
            match &metrics {
                Some(m) => {
                    let flight_start = m.flight.as_ref().map(|f| f.now_nanos());
                    let start = Instant::now();
                    let index = DeletionOnlyIndex::build(&refs, config, counting);
                    let nanos = start.elapsed().as_nanos() as u64;
                    m.rebuild_duration.record(nanos);
                    if let (Some(f), Some(start_nanos)) = (&m.flight, flight_start) {
                        f.record_at(
                            shard_stripe(shard),
                            Span {
                                shard: shard_hint(shard),
                                start_nanos,
                                duration_nanos: nanos,
                                detail: symbols as u64,
                                ..Span::child(0, SpanKind::Rebuild)
                            },
                        );
                    }
                    index
                }
                None => DeletionOnlyIndex::build(&refs, config, counting),
            }
        };
        match mode {
            RebuildMode::Inline => Job {
                handle: None,
                ready: Some(build(&docs, config)),
                pending_deletes: Vec::new(),
                symbols,
            },
            RebuildMode::Background => {
                let config = config.clone();
                let handle = std::thread::spawn(move || build(&docs, &config));
                Job {
                    handle: Some(handle),
                    ready: None,
                    pending_deletes: Vec::new(),
                    symbols,
                }
            }
        }
    }

    fn is_finished(&self) -> bool {
        match &self.handle {
            Some(h) => h.is_finished(),
            None => true,
        }
    }

    /// Takes the result, blocking if necessary.
    fn join(mut self) -> (DeletionOnlyIndex<I>, Vec<u64>) {
        let mut index = match self.handle.take() {
            Some(h) => h.join().expect("rebuild thread panicked"),
            None => self.ready.take().expect("inline job must hold a result"),
        };
        for id in &self.pending_deletes {
            index.delete(*id);
        }
        (index, self.pending_deletes)
    }
}

impl<I: StaticIndex> std::fmt::Debug for Job<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("symbols", &self.symbols)
            .field("finished", &self.is_finished())
            .field("pending_deletes", &self.pending_deletes.len())
            .finish()
    }
}

/// What a finished top-maintenance job installs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TopJobKind {
    /// Replace top `t` (purge of its deleted symbols).
    Replace(usize),
    /// New top built from `L'_r` alone.
    FromLrPrime,
    /// `L'_r` merged with top `t` (single result ≤ 2nf/τ).
    MergeLrPrime(usize),
    /// Two smallest tops `a < b` merged (keeps `g = O(τ)`).
    MergeTops(usize, usize),
}

/// An installed static structure stamped with the **level epoch** it was
/// installed (or last mutated) under.
///
/// The structure itself lives behind an [`Arc`] so a frozen snapshot can
/// share it with the live index at zero copy cost: freezing clones the
/// `Arc`, and any later delete-bitmap mutation goes through
/// [`Arc::make_mut`] — copy-on-write, paying only for the bitmap
/// structures (the static payload inside [`DeletionOnlyIndex`] is itself
/// `Arc`-shared) and only while a snapshot actually holds the old
/// version.
///
/// Epochs are monotone per index: every install, merge, and
/// delete-bitmap mutation stamps a fresh value, so two structures with
/// the same epoch are byte-identical — the property incremental
/// snapshots use to skip re-serializing unchanged levels.
#[derive(Debug)]
struct Stamped<I: StaticIndex> {
    index: Arc<DeletionOnlyIndex<I>>,
    epoch: u64,
}

impl<I: StaticIndex> Stamped<I> {
    fn new(index: DeletionOnlyIndex<I>, epoch: u64) -> Self {
        Stamped {
            index: Arc::new(index),
            epoch,
        }
    }

    /// Deletes `doc_id` (copy-on-write if a snapshot shares the
    /// structure) and, on success, re-stamps with `new_epoch`.
    fn delete(&mut self, doc_id: u64, new_epoch: u64) -> Option<Vec<u8>> {
        let bytes = Arc::make_mut(&mut self.index).delete(doc_id)?;
        self.epoch = new_epoch;
        Some(bytes)
    }
}

impl<I: StaticIndex> std::ops::Deref for Stamped<I> {
    type Target = DeletionOnlyIndex<I>;

    fn deref(&self) -> &DeletionOnlyIndex<I> {
        &self.index
    }
}

/// One static level: current, locked, and temp structures.
#[derive(Debug)]
struct Level<I: StaticIndex> {
    cur: Option<Stamped<I>>,
    locked: Option<Stamped<I>>,
    /// One-document index for the insertion that triggered the level's
    /// in-flight rebuild (the paper's `Temp_i`).
    temp: Option<Stamped<I>>,
}

impl<I: StaticIndex> Default for Level<I> {
    fn default() -> Self {
        Level {
            cur: None,
            locked: None,
            temp: None,
        }
    }
}

/// Which slot a frozen structure occupies in the Transformation-2
/// layout. Positions are preserved exactly so a thawed index reproduces
/// the original query-traversal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FrozenSlot {
    /// Static level `C_i` (1-based; level 0 holds no `C_i`).
    Level(usize),
    /// Top collection slot `t` (0-based into the top-slot table).
    Top(usize),
    /// `L'_r`, the old `C_r` awaiting top maintenance.
    LrPrime,
}

/// One frozen static structure: its slot, its level epoch, and a shared
/// handle to the structure itself.
pub struct FrozenLevel<I: StaticIndex> {
    /// Where the structure sits in the layout.
    pub slot: FrozenSlot,
    /// The epoch it was stamped with (identical epoch ⇒ identical bytes).
    pub epoch: u64,
    /// The structure, shared with the live index (copy-on-write there).
    pub index: Arc<DeletionOnlyIndex<I>>,
}

/// Owned decomposition of a fully-quiesced [`Transform2Index`] — no jobs
/// in flight, no locked/temp structures. Freezing costs O(levels)
/// `Arc` clones, so the producing shard's lock is needed only for the
/// clone instant, never across serialization; the live index keeps
/// mutating behind copy-on-write while a snapshot serializes this.
///
/// Also the persistence decode path's assembly type: `thaw` consumes one.
pub struct FrozenSnapshot<I: StaticIndex> {
    /// `C0` documents in insertion-age order (see
    /// `SuffixTree::export_docs_by_age`).
    pub c0_docs: Vec<(u64, Vec<u8>)>,
    /// Total level count (`schedule.caps.len()`), for validation.
    pub num_levels: usize,
    /// Total top-slot count, including empty slots.
    pub num_top_slots: usize,
    /// Every populated static structure with its slot and epoch.
    pub levels: Vec<FrozenLevel<I>>,
    /// The capacity schedule's reference size.
    pub nf: usize,
    /// Total alive bytes.
    pub n: usize,
    /// Lemma 1 pacing accumulator.
    pub deleted_since_maintenance: usize,
    /// The epoch counter's value at freeze time; a thawed index resumes
    /// stamping strictly above it (and above every entry's epoch), so
    /// restored stores keep reusing unchanged level files.
    pub epoch_counter: u64,
}

/// A fully-dynamic document index with worst-case update cost
/// (Transformation 2).
#[derive(Debug)]
pub struct Transform2Index<I: StaticIndex> {
    c0: SuffixTree,
    /// Levels `1..=r` (index 0 unused).
    levels: Vec<Level<I>>,
    /// `jobs[j]` builds `N_{j+1}` from `L_j ∪ C_{j+1} ∪ Temp_{j+1}`
    /// (for `j == r`: a new top from `L_r ∪ Temp_top`).
    jobs: Vec<Option<Job<I>>>,
    /// Top collections `T_1..T_g` (None = discarded slot).
    tops: Vec<Option<Stamped<I>>>,
    /// Temp index for a top-bound insertion.
    temp_top: Option<Stamped<I>>,
    /// `L'_r`: an old `C_r` awaiting top maintenance.
    lr_prime: Option<Stamped<I>>,
    /// The single in-flight top-maintenance job.
    top_job: Option<(TopJobKind, Job<I>)>,
    schedule: CapacitySchedule,
    config: I::Config,
    options: DynOptions,
    mode: RebuildMode,
    locations: HashMap<u64, Loc>,
    n: usize,
    /// Deleted symbols since the last top-maintenance step (Lemma 1 pacing).
    deleted_since_maintenance: usize,
    /// Monotone level-epoch counter: bumped on every install, merge, and
    /// delete-bitmap mutation (see [`Stamped`]); snapshots use it to
    /// detect unchanged structures.
    level_epoch: u64,
    /// Bumped on every `C0` mutation so [`Transform2Index::snapshot_view`]
    /// can reuse the previously-frozen `C0` overlay when nothing changed.
    c0_version: u64,
    /// Cache for the frozen `C0` overlay: `(c0_version it captures, copy)`.
    c0_frozen: Option<(u64, Arc<SuffixTree>)>,
    /// Monotone publication counter handed to each [`ShardView`].
    view_seq: u64,
    work: UpdateWork,
    /// Optional telemetry sink shared across shards; `None` = record
    /// nothing (no clock reads, no atomics).
    metrics: Option<Arc<CoreMetrics>>,
    /// Which store shard this index is, for span attribution
    /// ([`NO_SHARD_HINT`] when standalone).
    metrics_shard: usize,
}

impl<I: StaticIndex> Transform2Index<I> {
    /// Creates an empty index.
    pub fn new(config: I::Config, options: DynOptions, mode: RebuildMode) -> Self {
        let schedule = CapacitySchedule::new_truncated(0, &options);
        let levels = (0..schedule.caps.len()).map(|_| Level::default()).collect();
        let jobs = (0..schedule.caps.len()).map(|_| None).collect();
        Transform2Index {
            c0: SuffixTree::new(),
            levels,
            jobs,
            tops: Vec::new(),
            temp_top: None,
            lr_prime: None,
            top_job: None,
            schedule,
            config,
            options,
            mode,
            locations: HashMap::new(),
            n: 0,
            deleted_since_maintenance: 0,
            level_epoch: 0,
            c0_version: 0,
            c0_frozen: None,
            view_seq: 0,
            work: UpdateWork::default(),
            metrics: None,
            metrics_shard: NO_SHARD_HINT,
        }
    }

    /// Attaches (or detaches, with `None`) a shared telemetry sink. Rebuild
    /// durations, install counts, and `C0` freeze behavior are recorded
    /// into it from then on.
    pub fn set_metrics(&mut self, metrics: Option<Arc<CoreMetrics>>) {
        self.metrics = metrics;
    }

    /// Tells the telemetry sink which store shard this index is, so spans
    /// it emits (rebuilds, installs) carry the shard and land on its
    /// flight-recorder stripe.
    pub fn set_metrics_shard(&mut self, shard: usize) {
        self.metrics_shard = shard;
    }

    /// The attached flight recorder, when `set_metrics` gave us one.
    fn flight(&self) -> Option<Arc<dyndex_obs::FlightRecorder>> {
        self.metrics.as_ref().and_then(|m| m.flight.clone())
    }

    /// Number of alive documents.
    pub fn num_docs(&self) -> usize {
        self.locations.len()
    }

    /// Total alive bytes.
    pub fn symbol_count(&self) -> usize {
        self.n
    }

    /// Whether `doc_id` is present.
    pub fn contains(&self, doc_id: u64) -> bool {
        self.locations.contains_key(&doc_id)
    }

    /// Cumulative update-work statistics.
    pub fn work(&self) -> &UpdateWork {
        &self.work
    }

    /// The `r` of the current schedule.
    fn r(&self) -> usize {
        self.levels.len() - 1
    }

    fn cur_size(&self, i: usize) -> usize {
        self.levels[i].cur.as_ref().map_or(0, |c| c.alive_symbols())
    }

    /// The paper's top-size unit `nf/τ`.
    fn top_unit(&self) -> usize {
        (self.schedule.nf / self.options.tau).max(self.options.min_capacity)
    }

    /// Hands out the next level epoch (see [`Stamped`]).
    fn bump_epoch(&mut self) -> u64 {
        self.level_epoch += 1;
        self.level_epoch
    }

    // ------------------------------------------------------------------
    // Job lifecycle
    // ------------------------------------------------------------------

    /// Installs every finished job. Called at the start of each operation.
    fn poll_jobs(&mut self) {
        for j in 0..self.jobs.len() {
            if self.jobs[j].as_ref().is_some_and(|job| job.is_finished()) {
                self.install_level_job(j, false);
            }
        }
        if self
            .top_job
            .as_ref()
            .is_some_and(|(_, job)| job.is_finished())
        {
            self.install_top_job();
        }
    }

    /// Blocks until the job at `j` (if any) finishes, then installs it.
    fn force_level_job(&mut self, j: usize) {
        if self.jobs[j].is_some() {
            self.install_level_job(j, true);
        }
    }

    fn install_level_job(&mut self, j: usize, forced: bool) {
        let Some(job) = self.jobs[j].take() else {
            return;
        };
        if forced && !job.is_finished() {
            self.work.forced_waits += 1;
        }
        let flight = self.flight();
        let span_start = flight.as_ref().map(|f| (f.now_nanos(), Instant::now()));
        let symbols = job.symbols;
        let (index, _) = job.join();
        self.work.jobs_completed += 1;
        if let Some(m) = &self.metrics {
            m.level_installs.inc();
        }
        let target = j + 1;
        let epoch = self.bump_epoch();
        if target <= self.r() {
            // N_{j+1} replaces C_{j+1}; L_j and Temp_{j+1} retire.
            for id in index.doc_ids() {
                self.locations.insert(id, Loc::Cur(target));
            }
            self.levels[target].cur = Some(Stamped::new(index, epoch));
            self.levels[j].locked = None;
            self.levels[target].temp = None;
        } else {
            // N_{r+1} becomes a fresh top collection.
            let slot = self.alloc_top_slot();
            for id in index.doc_ids() {
                self.locations.insert(id, Loc::Top(slot));
            }
            self.tops[slot] = Some(Stamped::new(index, epoch));
            self.levels[j].locked = None;
            self.temp_top = None;
        }
        if let (Some(f), Some((start_nanos, t0))) = (&flight, span_start) {
            f.record_at(
                shard_stripe(self.metrics_shard),
                Span {
                    shard: shard_hint(self.metrics_shard),
                    start_nanos,
                    duration_nanos: t0.elapsed().as_nanos() as u64,
                    epoch_lo: epoch,
                    epoch_hi: epoch,
                    detail: symbols as u64,
                    ..Span::child(0, SpanKind::LevelInstall)
                },
            );
        }
    }

    fn alloc_top_slot(&mut self) -> usize {
        // Slots referenced by the in-flight top job are reserved even when
        // currently empty (a concurrent deletion may have discarded the
        // structure): the job's install writes Replace/Merge targets and
        // clears MergeTops sources, obliterating anything placed there.
        let (res_a, res_b) = match self.top_job.as_ref().map(|(kind, _)| *kind) {
            Some(TopJobKind::Replace(t)) | Some(TopJobKind::MergeLrPrime(t)) => (Some(t), None),
            Some(TopJobKind::MergeTops(a, b)) => (Some(a), Some(b)),
            Some(TopJobKind::FromLrPrime) | None => (None, None),
        };
        let free = (0..self.tops.len())
            .find(|&i| self.tops[i].is_none() && Some(i) != res_a && Some(i) != res_b);
        if let Some(i) = free {
            i
        } else {
            self.tops.push(None);
            self.tops.len() - 1
        }
    }

    fn install_top_job(&mut self) {
        let Some((kind, job)) = self.top_job.take() else {
            return;
        };
        let flight = self.flight();
        let span_start = flight.as_ref().map(|f| (f.now_nanos(), Instant::now()));
        let symbols = job.symbols;
        let (index, _) = job.join();
        self.work.jobs_completed += 1;
        if let Some(m) = &self.metrics {
            m.top_installs.inc();
        }
        let epoch = self.bump_epoch();
        let stamped = |index: DeletionOnlyIndex<I>| {
            if index.is_empty() {
                None
            } else {
                Some(Stamped::new(index, epoch))
            }
        };
        match kind {
            TopJobKind::Replace(t) => {
                for id in index.doc_ids() {
                    self.locations.insert(id, Loc::Top(t));
                }
                self.tops[t] = stamped(index);
            }
            TopJobKind::FromLrPrime => {
                let slot = self.alloc_top_slot();
                for id in index.doc_ids() {
                    self.locations.insert(id, Loc::Top(slot));
                }
                self.tops[slot] = stamped(index);
                self.lr_prime = None;
            }
            TopJobKind::MergeLrPrime(t) => {
                for id in index.doc_ids() {
                    self.locations.insert(id, Loc::Top(t));
                }
                self.tops[t] = stamped(index);
                self.lr_prime = None;
            }
            TopJobKind::MergeTops(a, b) => {
                for id in index.doc_ids() {
                    self.locations.insert(id, Loc::Top(a));
                }
                self.tops[a] = stamped(index);
                self.tops[b] = None;
            }
        }
        if let (Some(f), Some((start_nanos, t0))) = (&flight, span_start) {
            f.record_at(
                shard_stripe(self.metrics_shard),
                Span {
                    shard: shard_hint(self.metrics_shard),
                    start_nanos,
                    duration_nanos: t0.elapsed().as_nanos() as u64,
                    epoch_lo: epoch,
                    epoch_hi: epoch,
                    detail: symbols as u64,
                    ..Span::child(0, SpanKind::TopInstall)
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts a document. Worst-case `O(|T| · u(n) · log^ε n)`-class
    /// foreground work; rebuilds run in the background.
    ///
    /// # Panics
    /// Panics if `doc_id` is already present.
    pub fn insert(&mut self, doc_id: u64, bytes: &[u8]) {
        assert!(
            !self.locations.contains_key(&doc_id),
            "document {doc_id} already present"
        );
        self.poll_jobs();
        self.work.begin_op();
        self.n += bytes.len();
        self.maybe_refresh_schedule();

        // Huge documents get their own top collection immediately (§3).
        if bytes.len() >= self.top_unit() {
            let index =
                DeletionOnlyIndex::build(&[(doc_id, bytes)], &self.config, self.options.counting);
            let slot = self.alloc_top_slot();
            let epoch = self.bump_epoch();
            self.tops[slot] = Some(Stamped::new(index, epoch));
            self.locations.insert(doc_id, Loc::Top(slot));
            self.work.count_rebuild(bytes.len());
            return;
        }
        // C0 when it fits.
        if self.c0.symbol_count() + bytes.len() <= self.schedule.cap(0) {
            self.c0.insert(doc_id, bytes);
            self.c0_version += 1;
            self.locations.insert(doc_id, Loc::C0);
            self.work.count_symbols(bytes.len());
            return;
        }
        // Find the smallest j with |C_{j+1}| + |C_j| + |T| ≤ max_{j+1},
        // preferring levels not frozen by an in-flight job.
        let r = self.r();
        let mut chosen: Option<usize> = None;
        for j in 0..r {
            let fits =
                self.cur_size(j + 1) + self.cur_size(j) + bytes.len() <= self.schedule.cap(j + 1);
            if fits {
                // Slot j is busy if a job already consumes C_j / will
                // replace C_{j+1} (jobs[j]), or an in-flight job is about
                // to overwrite C_j itself (jobs[j-1] installs into C_j).
                let busy = self.jobs[j].is_some() || (j >= 1 && self.jobs[j - 1].is_some());
                if !busy {
                    chosen = Some(j);
                    break;
                }
                if chosen.is_none() {
                    chosen = Some(j); // fallback: forced wait on conflict
                }
            }
        }
        match chosen {
            Some(j) => {
                if j >= 1 {
                    self.force_level_job(j - 1);
                }
                self.force_level_job(j);
                self.start_level_merge(j, Some((doc_id, bytes)));
            }
            None => {
                // No level can absorb it: C_r moves toward the tops.
                if r >= 1 {
                    self.force_level_job(r - 1);
                }
                self.force_level_job(r);
                self.lock_level_into_top(Some((doc_id, bytes)));
            }
        }
    }

    /// A [`LevelBuilder`](crate::bulk::LevelBuilder) producing levels
    /// compatible with this index (same static-index config, same
    /// counting mode) — the handle bulk loaders build chunks with
    /// off-lock before handing them to [`Self::install_bulk_level`].
    pub fn level_builder(&self) -> crate::bulk::LevelBuilder<I> {
        crate::bulk::LevelBuilder::new(self.config.clone(), self.options.counting)
    }

    /// Installs a bulk-built static level (the stream-to-static fast
    /// path). The level becomes a top collection stamped through the
    /// normal epoch path, so snapshots, incremental deltas, and
    /// published views treat it exactly like any other structure; it is
    /// immediately queryable and deletable, and top maintenance purges
    /// it on the ordinary Lemma 1 schedule as deletions accumulate.
    ///
    /// Foreground cost is O(docs in the level) bookkeeping — the SA-IS
    /// construction already happened in the
    /// [`LevelBuilder`](crate::bulk::LevelBuilder), typically off-lock
    /// on a pool worker.
    ///
    /// # Panics
    /// Panics if any document in the level is already present (same
    /// contract as [`Self::insert`]).
    pub fn install_bulk_level(&mut self, index: DeletionOnlyIndex<I>) {
        if index.is_empty() {
            return;
        }
        for id in index.doc_ids() {
            assert!(
                !self.locations.contains_key(&id),
                "document {id} already present"
            );
        }
        self.poll_jobs();
        self.work.begin_op();
        let symbols = index.alive_symbols();
        self.n += symbols;
        self.maybe_refresh_schedule();
        let flight = self.flight();
        let span_start = flight.as_ref().map(|f| (f.now_nanos(), Instant::now()));
        let slot = self.alloc_top_slot();
        let epoch = self.bump_epoch();
        for id in index.doc_ids() {
            self.locations.insert(id, Loc::Top(slot));
        }
        self.tops[slot] = Some(Stamped::new(index, epoch));
        self.work.count_rebuild(symbols);
        if let Some(m) = &self.metrics {
            m.top_installs.inc();
        }
        if let (Some(f), Some((start_nanos, t0))) = (&flight, span_start) {
            f.record_at(
                shard_stripe(self.metrics_shard),
                Span {
                    shard: shard_hint(self.metrics_shard),
                    start_nanos,
                    duration_nanos: t0.elapsed().as_nanos() as u64,
                    epoch_lo: epoch,
                    epoch_hi: epoch,
                    detail: symbols as u64,
                    ..Span::child(0, SpanKind::BulkBuild)
                },
            );
        }
    }

    /// Locks `C_j` and starts the `N_{j+1}` job (optionally carrying a new
    /// document, which also gets a queryable Temp index).
    fn start_level_merge(&mut self, j: usize, new_doc: Option<(u64, &[u8])>) {
        debug_assert!(self.jobs[j].is_none());
        let target = j + 1;
        // If the new document is at least half the source level, the paper
        // rebuilds synchronously (the cost is charged to the document).
        let inline_threshold = self.schedule.cap(j) / 2;
        let mut docs: Vec<(u64, Vec<u8>)> = Vec::new();
        if j == 0 {
            docs.extend(self.c0.export_docs());
            self.c0 = SuffixTree::new();
            self.c0_version += 1;
        } else if let Some(cur) = self.levels[j].cur.take() {
            docs.extend(cur.export_alive_docs());
            // C_j is locked: queries keep using it as L_j.
            self.levels[j].locked = Some(cur);
        }
        for (id, _) in &docs {
            if j > 0 {
                self.locations.insert(*id, Loc::Locked(j));
            }
        }
        if let Some(cur) = self.levels[target].cur.as_ref() {
            docs.extend(cur.export_alive_docs());
        }
        let synchronous = match new_doc {
            Some((_, bytes)) => bytes.len() >= inline_threshold,
            None => false,
        };
        if j == 0 && !synchronous {
            // C0's content has no static index to serve as L_0; rebuild the
            // tiny prefix synchronously (its size is O(n/log² n)).
            let mut all = docs;
            if let Some((id, bytes)) = new_doc {
                all.push((id, bytes.to_vec()));
            }
            let total: usize = all.iter().map(|(_, d)| d.len()).sum();
            for (id, _) in &all {
                self.locations.insert(*id, Loc::Cur(target));
            }
            let refs: Vec<(u64, &[u8])> = all.iter().map(|(id, d)| (*id, d.as_slice())).collect();
            let built = DeletionOnlyIndex::build(&refs, &self.config, self.options.counting);
            let epoch = self.bump_epoch();
            self.levels[target].cur = Some(Stamped::new(built, epoch));
            self.work.count_rebuild(total);
            return;
        }
        if synchronous {
            let (id, bytes) = new_doc.expect("synchronous implies a new document");
            docs.push((id, bytes.to_vec()));
            let total: usize = docs.iter().map(|(_, d)| d.len()).sum();
            for (did, _) in &docs {
                self.locations.insert(*did, Loc::Cur(target));
            }
            let refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
            let built = DeletionOnlyIndex::build(&refs, &self.config, self.options.counting);
            let epoch = self.bump_epoch();
            self.levels[target].cur = Some(Stamped::new(built, epoch));
            self.levels[j].locked = None;
            self.work.count_rebuild(total);
            return;
        }
        if let Some((id, bytes)) = new_doc {
            // Temp_{j+1}: the new document must be queryable immediately.
            let temp =
                DeletionOnlyIndex::build(&[(id, bytes)], &self.config, self.options.counting);
            let epoch = self.bump_epoch();
            self.levels[target].temp = Some(Stamped::new(temp, epoch));
            self.locations.insert(id, Loc::Temp(target));
            docs.push((id, bytes.to_vec()));
            self.work.count_symbols(bytes.len());
        }
        self.jobs[j] = Some(Job::spawn(
            docs,
            &self.config,
            self.options.counting,
            self.mode,
            self.metrics.clone(),
            self.metrics_shard,
        ));
        self.work.jobs_started += 1;
    }

    /// Locks `C_r` and starts the job that turns it into a new top
    /// collection (`N_{r+1}`).
    fn lock_level_into_top(&mut self, new_doc: Option<(u64, &[u8])>) {
        let r = self.r();
        debug_assert!(self.jobs[r].is_none());
        let mut docs: Vec<(u64, Vec<u8>)> = Vec::new();
        if let Some(cur) = self.levels[r].cur.take() {
            docs.extend(cur.export_alive_docs());
            self.levels[r].locked = Some(cur);
            for (id, _) in &docs {
                self.locations.insert(*id, Loc::Locked(r));
            }
        }
        if let Some((id, bytes)) = new_doc {
            let temp =
                DeletionOnlyIndex::build(&[(id, bytes)], &self.config, self.options.counting);
            let epoch = self.bump_epoch();
            self.temp_top = Some(Stamped::new(temp, epoch));
            self.locations.insert(id, Loc::TempTop);
            docs.push((id, bytes.to_vec()));
            self.work.count_symbols(bytes.len());
        }
        if docs.is_empty() {
            self.levels[r].locked = None;
            return;
        }
        self.jobs[r] = Some(Job::spawn(
            docs,
            &self.config,
            self.options.counting,
            self.mode,
            self.metrics.clone(),
            self.metrics_shard,
        ));
        self.work.jobs_started += 1;
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Deletes a document, returning its bytes. Worst-case foreground cost
    /// `O(|T| · (tSA-ish))`; purges run in the background.
    pub fn delete(&mut self, doc_id: u64) -> Option<Vec<u8>> {
        self.poll_jobs();
        let loc = *self.locations.get(&doc_id)?;
        self.work.begin_op();
        self.locations.remove(&doc_id);
        let bytes = match loc {
            Loc::C0 => {
                self.c0_version += 1;
                self.c0.delete(doc_id).expect("location map out of sync")
            }
            Loc::Cur(i) => {
                let epoch = self.bump_epoch();
                let bytes = self.levels[i]
                    .cur
                    .as_mut()
                    .expect("location map out of sync")
                    .delete(doc_id, epoch)
                    .expect("location map out of sync");
                // If a job is about to replace C_i (jobs[i-1] targets i) or
                // reads it (jobs[i] extracted it at spawn)… extraction
                // snapshots mean the rebuilt index still contains the doc:
                // forward the deletion.
                if i >= 1 {
                    if let Some(job) = self.jobs[i - 1].as_mut() {
                        job.pending_deletes.push(doc_id);
                    }
                }
                if let Some(job) = self.jobs[i].as_mut() {
                    job.pending_deletes.push(doc_id);
                }
                self.after_cur_deletion(i);
                bytes
            }
            Loc::Locked(j) => {
                let epoch = self.bump_epoch();
                let bytes = self.levels[j]
                    .locked
                    .as_mut()
                    .expect("location map out of sync")
                    .delete(doc_id, epoch)
                    .expect("location map out of sync");
                if let Some(job) = self.jobs[j].as_mut() {
                    job.pending_deletes.push(doc_id);
                }
                bytes
            }
            Loc::Temp(t) => {
                let epoch = self.bump_epoch();
                let bytes = self.levels[t]
                    .temp
                    .as_mut()
                    .expect("location map out of sync")
                    .delete(doc_id, epoch)
                    .expect("location map out of sync");
                if t >= 1 {
                    if let Some(job) = self.jobs[t - 1].as_mut() {
                        job.pending_deletes.push(doc_id);
                    }
                }
                bytes
            }
            Loc::TempTop => {
                let epoch = self.bump_epoch();
                let bytes = self
                    .temp_top
                    .as_mut()
                    .expect("location map out of sync")
                    .delete(doc_id, epoch)
                    .expect("location map out of sync");
                let r = self.r();
                if let Some(job) = self.jobs[r].as_mut() {
                    job.pending_deletes.push(doc_id);
                }
                bytes
            }
            Loc::Top(t) => {
                let epoch = self.bump_epoch();
                let top = self.tops[t].as_mut().expect("location map out of sync");
                let bytes = top.delete(doc_id, epoch).expect("location map out of sync");
                let emptied = top.is_empty();
                // Forward to an in-flight job that snapshotted this top
                // *before* discarding an emptied structure — skipping the
                // forward would resurrect the document at install time.
                if let Some((kind, job)) = self.top_job.as_mut() {
                    if matches!(kind,
                        TopJobKind::Replace(x) | TopJobKind::MergeLrPrime(x) if *x == t)
                        || matches!(kind, TopJobKind::MergeTops(a, b) if *a == t || *b == t)
                    {
                        job.pending_deletes.push(doc_id);
                    }
                }
                if emptied {
                    // A single-document (or fully-emptied) top is discarded.
                    self.tops[t] = None;
                }
                bytes
            }
            Loc::LrPrime => {
                let epoch = self.bump_epoch();
                let bytes = self
                    .lr_prime
                    .as_mut()
                    .expect("location map out of sync")
                    .delete(doc_id, epoch)
                    .expect("location map out of sync");
                // A top job may have snapshotted L'_r; forward the delete.
                if let Some((kind, job)) = self.top_job.as_mut() {
                    if matches!(kind, TopJobKind::FromLrPrime | TopJobKind::MergeLrPrime(_)) {
                        job.pending_deletes.push(doc_id);
                    }
                }
                bytes
            }
        };
        self.n -= bytes.len();
        self.deleted_since_maintenance += bytes.len();
        self.maybe_refresh_schedule();
        self.maybe_run_top_maintenance();
        Some(bytes)
    }

    /// §3 deletion triggers: `C_j` with `max_j/2` dead symbols is locked
    /// and merged upward; `C_r` moves to `L'_r`.
    fn after_cur_deletion(&mut self, i: usize) {
        let Some(cur) = self.levels[i].cur.as_ref() else {
            return;
        };
        if cur.dead_symbols() * 2 < self.schedule.cap(i) {
            return;
        }
        let r = self.r();
        if i < r {
            if self.jobs[i].is_none() && (i == 0 || self.jobs[i - 1].is_none()) {
                self.start_level_merge(i, None);
            }
            // Busy: defer; the running job's install will purge next round.
        } else if self.lr_prime.is_none() && self.jobs[r - 1].is_none() {
            // jobs[r-1] must not be in flight: it snapshotted C_r at spawn
            // and will reinstall those documents into C_r — moving C_r to
            // L'_r underneath it would duplicate them.
            let cur = self.levels[r].cur.take().expect("checked above");
            for id in cur.doc_ids() {
                self.locations.insert(id, Loc::LrPrime);
            }
            self.lr_prime = Some(cur);
        }
    }

    /// Lemma 1 pacing: after every `nf/(2τ log τ)` deleted symbols, run one
    /// top-maintenance step (rebuild the dirtiest top / drain `L'_r`).
    fn maybe_run_top_maintenance(&mut self) {
        let tau = self.options.tau.max(2);
        let log_tau = (tau as f64).log2().max(1.0);
        let delta = ((self.schedule.nf as f64) / (2.0 * tau as f64 * log_tau))
            .ceil()
            .max(self.options.min_capacity as f64) as usize;
        if self.deleted_since_maintenance < delta || self.top_job.is_some() {
            return;
        }
        self.deleted_since_maintenance = 0;
        self.start_top_maintenance();
    }

    fn start_top_maintenance(&mut self) {
        debug_assert!(self.top_job.is_none());
        let unit = self.top_unit();
        // Priority 1: drain L'_r.
        if let Some(lr) = self.lr_prime.as_ref() {
            if lr.alive_symbols() >= unit / 2 {
                // Large enough to stand alone as a new top.
                let docs = lr.export_alive_docs();
                let job = Job::spawn(
                    docs,
                    &self.config,
                    self.options.counting,
                    self.mode,
                    self.metrics.clone(),
                    self.metrics_shard,
                );
                self.top_job = Some((TopJobKind::FromLrPrime, job));
                self.work.jobs_started += 1;
                return;
            }
            // Merge with the largest multi-document top.
            let target = self
                .tops
                .iter()
                .enumerate()
                .filter(|(_, t)| t.as_ref().is_some_and(|t| t.num_docs() > 1))
                .max_by_key(|(_, t)| t.as_ref().map_or(0, |t| t.alive_symbols()))
                .map(|(i, _)| i);
            if let Some(t) = target {
                let mut docs = lr.export_alive_docs();
                docs.extend(
                    self.tops[t]
                        .as_ref()
                        .expect("selected above")
                        .export_alive_docs(),
                );
                let job = Job::spawn(
                    docs,
                    &self.config,
                    self.options.counting,
                    self.mode,
                    self.metrics.clone(),
                    self.metrics_shard,
                );
                self.top_job = Some((TopJobKind::MergeLrPrime(t), job));
                self.work.jobs_started += 1;
                return;
            }
            // No top to merge with: stand alone regardless of size.
            let docs = lr.export_alive_docs();
            if !docs.is_empty() {
                let job = Job::spawn(
                    docs,
                    &self.config,
                    self.options.counting,
                    self.mode,
                    self.metrics.clone(),
                    self.metrics_shard,
                );
                self.top_job = Some((TopJobKind::FromLrPrime, job));
                self.work.jobs_started += 1;
            } else {
                self.lr_prime = None;
            }
            return;
        }
        // Priority 2: keep g = O(τ) by merging the two smallest tops.
        let live_tops: Vec<usize> = self
            .tops
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some())
            .map(|(i, _)| i)
            .collect();
        if live_tops.len() > 2 * self.options.tau {
            let mut by_size: Vec<usize> = live_tops.clone();
            by_size.sort_by_key(|&i| self.tops[i].as_ref().map_or(0, |t| t.alive_symbols()));
            let (a, b) = (by_size[0], by_size[1]);
            let mut docs = self.tops[a].as_ref().expect("live top").export_alive_docs();
            docs.extend(self.tops[b].as_ref().expect("live top").export_alive_docs());
            let job = Job::spawn(
                docs,
                &self.config,
                self.options.counting,
                self.mode,
                self.metrics.clone(),
                self.metrics_shard,
            );
            self.top_job = Some((TopJobKind::MergeTops(a.min(b), a.max(b)), job));
            self.work.jobs_started += 1;
            return;
        }
        // Priority 3: rebuild the top with the most deleted symbols.
        let dirtiest = live_tops
            .into_iter()
            .max_by_key(|&i| self.tops[i].as_ref().map_or(0, |t| t.dead_symbols()));
        if let Some(t) = dirtiest {
            let top = self.tops[t].as_ref().expect("live top");
            if top.dead_symbols() == 0 {
                return;
            }
            let docs = top.export_alive_docs();
            let job = Job::spawn(
                docs,
                &self.config,
                self.options.counting,
                self.mode,
                self.metrics.clone(),
                self.metrics_shard,
            );
            self.top_job = Some((TopJobKind::Replace(t), job));
            self.work.jobs_started += 1;
            self.work.purges += 1;
        }
    }

    /// A.3: keep `nf = Θ(n)` by refreshing the capacity schedule when `n`
    /// leaves `[nf/2, 2nf]`. (Top re-binning is handled lazily by the
    /// maintenance schedule rather than eagerly — see DESIGN.md.)
    fn maybe_refresh_schedule(&mut self) {
        let nf = self.schedule.nf.max(self.options.min_capacity);
        if self.n > 2 * nf
            || (self.n * 2 < self.schedule.nf && self.schedule.nf > self.options.min_capacity)
        {
            // A resize changes which (level, target) pairs exist; jobs
            // spawned under the old schedule would install into the wrong
            // place. Refreshes are O(log n)-rare, so synchronously finish
            // all in-flight work first.
            self.finish_background_work();
            self.schedule = CapacitySchedule::new_truncated(self.n, &self.options);
            let want = self.schedule.caps.len();
            while self.levels.len() > want {
                // Structures at vanishing levels migrate to the tops.
                let lvl = self.levels.pop().expect("len checked");
                self.jobs.pop();
                for del in [lvl.cur, lvl.locked, lvl.temp].into_iter().flatten() {
                    if del.is_empty() {
                        continue;
                    }
                    let slot = self.alloc_top_slot();
                    for id in del.doc_ids() {
                        self.locations.insert(id, Loc::Top(slot));
                    }
                    self.tops[slot] = Some(del);
                }
            }
            while self.levels.len() < want {
                self.levels.push(Level::default());
                self.jobs.push(None);
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// All occurrences of `pattern` across alive documents.
    ///
    /// Queries `C0`, every `C_i`, `L_i`, `Temp_i`, every top `T_i`, and
    /// `L'_r` — the paper's `O(τ)` extra range-find cost.
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        self.find_limit(pattern, usize::MAX)
    }

    /// Up to `limit` occurrences of `pattern` — early-terminating locate.
    ///
    /// Structures are visited in a fixed order (`C0`, levels bottom-up,
    /// tops, `TempTop`, `L'_r`) and the scan stops as soon as `limit`
    /// occurrences are in hand, so per-query work is bounded by
    /// `O(τ · range-finding + limit · tlocate)` regardless of how many
    /// occurrences exist. Which occurrences are returned depends on the
    /// internal layout at query time — deterministic under
    /// [`RebuildMode::Inline`], but in `Background` mode it varies with
    /// rebuild-install timing (the *set queried over* is always exact;
    /// only the truncation choice shifts). Sharded callers
    /// (`dyndex-store`) use this to cap per-shard fan-out work.
    pub fn find_limit(&self, pattern: &[u8], limit: usize) -> Vec<Occurrence> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        out.extend(self.c0.find(pattern));
        out.truncate(limit);
        if out.len() == limit {
            return out;
        }
        for level in &self.levels {
            for del in [&level.cur, &level.locked, &level.temp]
                .into_iter()
                .flatten()
            {
                out.extend(del.find_limit(pattern, limit - out.len()));
                if out.len() == limit {
                    return out;
                }
            }
        }
        for top in self.tops.iter().flatten() {
            out.extend(top.find_limit(pattern, limit - out.len()));
            if out.len() == limit {
                return out;
            }
        }
        for del in [&self.temp_top, &self.lr_prime].into_iter().flatten() {
            out.extend(del.find_limit(pattern, limit - out.len()));
            if out.len() == limit {
                return out;
            }
        }
        out
    }

    /// Counts occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        let mut total = self.c0.count(pattern);
        for level in &self.levels {
            for del in [&level.cur, &level.locked, &level.temp]
                .into_iter()
                .flatten()
            {
                total += del.count(pattern);
            }
        }
        for top in self.tops.iter().flatten() {
            total += top.count(pattern);
        }
        for del in [&self.temp_top, &self.lr_prime].into_iter().flatten() {
            total += del.count(pattern);
        }
        total
    }

    /// Extracts up to `len` bytes of a document from `offset`.
    pub fn extract(&self, doc_id: u64, offset: usize, len: usize) -> Option<Vec<u8>> {
        match *self.locations.get(&doc_id)? {
            Loc::C0 => {
                let bytes = self.c0.doc_bytes(doc_id)?;
                let a = offset.min(bytes.len());
                let b = (offset + len).min(bytes.len());
                Some(bytes[a..b].to_vec())
            }
            Loc::Cur(i) => self.levels[i].cur.as_ref()?.extract(doc_id, offset, len),
            Loc::Locked(i) => self.levels[i].locked.as_ref()?.extract(doc_id, offset, len),
            Loc::Temp(i) => self.levels[i].temp.as_ref()?.extract(doc_id, offset, len),
            Loc::TempTop => self.temp_top.as_ref()?.extract(doc_id, offset, len),
            Loc::Top(t) => self.tops[t].as_ref()?.extract(doc_id, offset, len),
            Loc::LrPrime => self.lr_prime.as_ref()?.extract(doc_id, offset, len),
        }
    }

    /// Blocks until every background job has been installed (tests and
    /// shutdown paths).
    pub fn finish_background_work(&mut self) {
        for j in 0..self.jobs.len() {
            self.force_level_job(j);
        }
        if self.top_job.is_some() {
            self.install_top_job();
        }
    }

    /// Installs every *finished* background job without blocking on
    /// unfinished ones, then returns the number still in flight.
    ///
    /// Foreground operations already do this at their start; a dedicated
    /// maintenance thread (see `dyndex-store`) calls it to keep installs
    /// off the query path entirely.
    pub fn poll_background_work(&mut self) -> usize {
        self.poll_jobs();
        self.pending_jobs()
    }

    /// Number of background jobs currently in flight (level rebuilds plus
    /// the top-maintenance job).
    pub fn pending_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.is_some()).count() + usize::from(self.top_job.is_some())
    }

    /// Census of every live structure (the Figure 2 harness).
    pub fn structure_stats(&self) -> Vec<LevelStats> {
        let mut out = vec![LevelStats {
            name: "C0".into(),
            capacity: self.schedule.cap(0),
            alive_symbols: self.c0.symbol_count(),
            dead_symbols: self.c0.retained_dead_symbols(),
            docs: self.c0.num_docs(),
        }];
        let push =
            |out: &mut Vec<LevelStats>, name: String, cap: usize, del: &DeletionOnlyIndex<I>| {
                out.push(LevelStats {
                    name,
                    capacity: cap,
                    alive_symbols: del.alive_symbols(),
                    dead_symbols: del.dead_symbols(),
                    docs: del.num_docs(),
                });
            };
        for (i, level) in self.levels.iter().enumerate().skip(1) {
            if let Some(c) = &level.cur {
                push(&mut out, format!("C{i}"), self.schedule.cap(i), c);
            }
            if let Some(l) = &level.locked {
                push(&mut out, format!("L{i}"), self.schedule.cap(i), l);
            }
            if let Some(t) = &level.temp {
                push(&mut out, format!("Temp{i}"), 0, t);
            }
        }
        for (t, top) in self.tops.iter().enumerate() {
            if let Some(tt) = top {
                push(&mut out, format!("T{}", t + 1), 4 * self.top_unit(), tt);
            }
        }
        if let Some(lr) = &self.lr_prime {
            push(&mut out, "L'r".into(), self.schedule.cap(self.r()), lr);
        }
        if let Some(tt) = &self.temp_top {
            push(&mut out, "TempTop".into(), 0, tt);
        }
        out
    }

    /// Captures an immutable, shareable [`ShardView`] of the current
    /// queryable state.
    ///
    /// Cost is O(levels) `Arc` clones plus — only when `C0` changed since
    /// the previous call — one `C0` copy (`C0` is the one genuinely
    /// mutable structure, and it is capacity-bounded, so the copy is
    /// small). Everything else is already an [`Arc`]'d epoch-stamped
    /// structure: later delete-bitmap mutations on the live index go
    /// through [`Arc::make_mut`], so the view keeps the pre-mutation
    /// version at copy-on-write cost.
    ///
    /// Each call stamps a strictly increasing [`ShardView::epoch`].
    ///
    /// ```
    /// use dyndex_core::{DynOptions, FmConfig, RebuildMode, Transform2Index};
    /// use dyndex_text::FmIndexPlain;
    ///
    /// let mut index: Transform2Index<FmIndexPlain> = Transform2Index::new(
    ///     FmConfig { sample_rate: 4 },
    ///     DynOptions::default(),
    ///     RebuildMode::Inline,
    /// );
    /// index.insert(1, b"immutable views");
    /// let view = index.snapshot_view();
    /// index.insert(2, b"later writes are invisible to the view");
    /// assert_eq!(view.count(b"view"), 1);
    /// assert_eq!(index.count(b"view"), 2);
    /// assert!(index.snapshot_view().epoch() > view.epoch());
    /// ```
    pub fn snapshot_view(&mut self) -> ShardView<I> {
        self.view_seq += 1;
        let c0 = match &self.c0_frozen {
            Some((version, frozen)) if *version == self.c0_version => {
                if let Some(m) = &self.metrics {
                    m.c0_freeze_reused.inc();
                }
                Arc::clone(frozen)
            }
            _ => {
                if let Some(m) = &self.metrics {
                    m.c0_freeze_copies.inc();
                }
                let frozen = Arc::new(self.c0.clone());
                self.c0_frozen = Some((self.c0_version, Arc::clone(&frozen)));
                frozen
            }
        };
        let mut structures = Vec::new();
        for (i, level) in self.levels.iter().enumerate() {
            for (slot, stamped) in [
                (ViewSlot::Cur(i), &level.cur),
                (ViewSlot::Locked(i), &level.locked),
                (ViewSlot::Temp(i), &level.temp),
            ] {
                if let Some(s) = stamped {
                    let capacity = match slot {
                        ViewSlot::Temp(_) => 0,
                        _ => self.schedule.cap(i),
                    };
                    structures.push(ViewStructure {
                        slot,
                        capacity,
                        index: Arc::clone(&s.index),
                    });
                }
            }
        }
        for (t, top) in self.tops.iter().enumerate() {
            if let Some(tt) = top {
                structures.push(ViewStructure {
                    slot: ViewSlot::Top(t),
                    capacity: 4 * self.top_unit(),
                    index: Arc::clone(&tt.index),
                });
            }
        }
        if let Some(tt) = &self.temp_top {
            structures.push(ViewStructure {
                slot: ViewSlot::TempTop,
                capacity: 0,
                index: Arc::clone(&tt.index),
            });
        }
        if let Some(lr) = &self.lr_prime {
            structures.push(ViewStructure {
                slot: ViewSlot::LrPrime,
                capacity: self.schedule.cap(self.r()),
                index: Arc::clone(&lr.index),
            });
        }
        ShardView {
            c0,
            structures,
            c0_capacity: self.schedule.cap(0),
            num_docs: self.locations.len(),
            symbols: self.n,
            pending_jobs: self.pending_jobs(),
            heap_bytes: self.heap_bytes(),
            epoch: self.view_seq,
        }
    }

    // ------------------------------------------------------------------
    // Persistence (freeze / thaw)
    // ------------------------------------------------------------------

    /// The build configuration (persistence manifest).
    #[doc(hidden)]
    pub fn persist_config(&self) -> &I::Config {
        &self.config
    }

    /// The dynamization options (persistence manifest).
    #[doc(hidden)]
    pub fn persist_options(&self) -> &DynOptions {
        &self.options
    }

    /// Owned decomposition for snapshotting — O(levels) `Arc` clones and
    /// a `C0` export, so the caller's lock on this index is needed only
    /// for the duration of this call, never across serialization.
    /// Returns `None` unless the index is fully quiesced (run
    /// [`Transform2Index::finish_background_work`] first): any in-flight
    /// job, locked copy, or temp index means the state is mid-rebuild
    /// and not snapshotable.
    #[doc(hidden)]
    pub fn freeze(&self) -> Option<FrozenSnapshot<I>> {
        let quiesced = self.jobs.iter().all(|j| j.is_none())
            && self.top_job.is_none()
            && self.temp_top.is_none()
            && self
                .levels
                .iter()
                .all(|l| l.locked.is_none() && l.temp.is_none());
        if !quiesced {
            return None;
        }
        debug_assert!(self.levels[0].cur.is_none(), "level 0 holds no C_i");
        let mut levels = Vec::new();
        for (i, l) in self.levels.iter().enumerate().skip(1) {
            if let Some(c) = &l.cur {
                levels.push(FrozenLevel {
                    slot: FrozenSlot::Level(i),
                    epoch: c.epoch,
                    index: Arc::clone(&c.index),
                });
            }
        }
        for (t, top) in self.tops.iter().enumerate() {
            if let Some(tt) = top {
                levels.push(FrozenLevel {
                    slot: FrozenSlot::Top(t),
                    epoch: tt.epoch,
                    index: Arc::clone(&tt.index),
                });
            }
        }
        if let Some(lr) = &self.lr_prime {
            levels.push(FrozenLevel {
                slot: FrozenSlot::LrPrime,
                epoch: lr.epoch,
                index: Arc::clone(&lr.index),
            });
        }
        Some(FrozenSnapshot {
            c0_docs: self.c0.export_docs_by_age(),
            num_levels: self.levels.len(),
            num_top_slots: self.tops.len(),
            levels,
            nf: self.schedule.nf,
            n: self.n,
            deleted_since_maintenance: self.deleted_since_maintenance,
            epoch_counter: self.level_epoch,
        })
    }

    /// Rebuilds an index from a frozen snapshot (persistence decode
    /// path). The capacity schedule, location map, and `C0` suffix tree
    /// are all re-derived; `options` must match the ones the snapshot
    /// was taken under (the persistence manifest records them). The
    /// epoch counter resumes strictly above every frozen epoch, so a
    /// restored index keeps producing reusable delta snapshots. Returns
    /// `Err` (never panics) on structurally inconsistent input.
    #[doc(hidden)]
    pub fn thaw(
        config: I::Config,
        options: DynOptions,
        mode: RebuildMode,
        parts: FrozenSnapshot<I>,
    ) -> Result<Self, String> {
        let schedule = CapacitySchedule::new_truncated(parts.nf, &options);
        if schedule.caps.len() != parts.num_levels {
            return Err(format!(
                "schedule mismatch: snapshot has {} levels, options derive {}",
                parts.num_levels,
                schedule.caps.len()
            ));
        }
        let mut locations: HashMap<u64, Loc> = HashMap::new();
        let mut track = |id: u64, loc: Loc| -> Result<(), String> {
            match locations.insert(id, loc) {
                None => Ok(()),
                Some(_) => Err(format!("document {id} appears in two structures")),
            }
        };
        for (id, _) in &parts.c0_docs {
            track(*id, Loc::C0)?;
        }
        let mut levels: Vec<Level<I>> = (0..parts.num_levels).map(|_| Level::default()).collect();
        let mut tops: Vec<Option<Stamped<I>>> = (0..parts.num_top_slots).map(|_| None).collect();
        let mut lr_prime: Option<Stamped<I>> = None;
        let mut level_epoch = parts.epoch_counter;
        for entry in parts.levels {
            level_epoch = level_epoch.max(entry.epoch);
            let stamped = Stamped {
                index: entry.index,
                epoch: entry.epoch,
            };
            match entry.slot {
                FrozenSlot::Level(i) => {
                    if i == 0 || i >= parts.num_levels {
                        return Err(format!("level index {i} out of range"));
                    }
                    for id in stamped.doc_ids() {
                        track(id, Loc::Cur(i))?;
                    }
                    if levels[i].cur.replace(stamped).is_some() {
                        return Err(format!("level {i} appears twice"));
                    }
                }
                FrozenSlot::Top(t) => {
                    if t >= parts.num_top_slots {
                        return Err(format!("top slot {t} out of range"));
                    }
                    for id in stamped.doc_ids() {
                        track(id, Loc::Top(t))?;
                    }
                    if tops[t].replace(stamped).is_some() {
                        return Err(format!("top slot {t} appears twice"));
                    }
                }
                FrozenSlot::LrPrime => {
                    for id in stamped.doc_ids() {
                        track(id, Loc::LrPrime)?;
                    }
                    if lr_prime.replace(stamped).is_some() {
                        return Err("L'_r appears twice".into());
                    }
                }
            }
        }
        let mut c0 = SuffixTree::new();
        for (id, bytes) in &parts.c0_docs {
            c0.insert(*id, bytes);
        }
        let mut total = c0.symbol_count();
        for level in &levels {
            total += level.cur.as_ref().map_or(0, |c| c.alive_symbols());
        }
        for top in tops.iter().flatten() {
            total += top.alive_symbols();
        }
        total += lr_prime.as_ref().map_or(0, |l| l.alive_symbols());
        if total != parts.n {
            return Err(format!(
                "symbol accounting mismatch: structures hold {total}, snapshot says {}",
                parts.n
            ));
        }
        let jobs = (0..parts.num_levels).map(|_| None).collect();
        Ok(Transform2Index {
            c0,
            levels,
            jobs,
            tops,
            temp_top: None,
            lr_prime,
            top_job: None,
            schedule,
            config,
            options,
            mode,
            locations,
            n: parts.n,
            deleted_since_maintenance: parts.deleted_since_maintenance,
            level_epoch,
            c0_version: 0,
            c0_frozen: None,
            view_seq: 0,
            work: UpdateWork::default(),
            metrics: None,
            metrics_shard: NO_SHARD_HINT,
        })
    }

    /// Validates the §3 invariants.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert!(
            self.c0.symbol_count() <= self.schedule.cap(0),
            "C0 over capacity"
        );
        let mut total = self.c0.symbol_count();
        for level in &self.levels {
            for del in [&level.cur, &level.locked, &level.temp]
                .into_iter()
                .flatten()
            {
                total += del.alive_symbols();
            }
        }
        for top in self.tops.iter().flatten() {
            total += top.alive_symbols();
        }
        for del in [&self.temp_top, &self.lr_prime].into_iter().flatten() {
            total += del.alive_symbols();
        }
        assert_eq!(total, self.n, "symbol accounting out of sync");
        for (&id, &loc) in &self.locations {
            let present = match loc {
                Loc::C0 => self.c0.contains_doc(id),
                Loc::Cur(i) => self.levels[i].cur.as_ref().is_some_and(|d| d.contains(id)),
                Loc::Locked(i) => self.levels[i]
                    .locked
                    .as_ref()
                    .is_some_and(|d| d.contains(id)),
                Loc::Temp(i) => self.levels[i].temp.as_ref().is_some_and(|d| d.contains(id)),
                Loc::TempTop => self.temp_top.as_ref().is_some_and(|d| d.contains(id)),
                Loc::Top(t) => self.tops[t].as_ref().is_some_and(|d| d.contains(id)),
                Loc::LrPrime => self.lr_prime.as_ref().is_some_and(|d| d.contains(id)),
            };
            assert!(present, "{id} missing from {loc:?}");
        }
    }
}

impl<I: StaticIndex> SpaceUsage for Transform2Index<I> {
    fn heap_bytes(&self) -> usize {
        let mut sum = self.c0.heap_bytes();
        for level in &self.levels {
            for del in [&level.cur, &level.locked, &level.temp]
                .into_iter()
                .flatten()
            {
                sum += del.heap_bytes();
            }
        }
        for top in self.tops.iter().flatten() {
            sum += top.heap_bytes();
        }
        for del in [&self.temp_top, &self.lr_prime].into_iter().flatten() {
            sum += del.heap_bytes();
        }
        sum + self.locations.len() * 24
    }
}

/// Which Transformation-2 slot a [`ShardView`] structure was captured
/// from (drives the census names and ordering).
#[derive(Clone, Copy, Debug)]
enum ViewSlot {
    Cur(usize),
    Locked(usize),
    Temp(usize),
    Top(usize),
    TempTop,
    LrPrime,
}

/// One captured static structure inside a [`ShardView`].
struct ViewStructure<I: StaticIndex> {
    slot: ViewSlot,
    capacity: usize,
    index: Arc<DeletionOnlyIndex<I>>,
}

impl<I: StaticIndex> ViewStructure<I> {
    fn name(&self) -> String {
        match self.slot {
            ViewSlot::Cur(i) => format!("C{i}"),
            ViewSlot::Locked(i) => format!("L{i}"),
            ViewSlot::Temp(i) => format!("Temp{i}"),
            ViewSlot::Top(t) => format!("T{}", t + 1),
            ViewSlot::TempTop => "TempTop".into(),
            ViewSlot::LrPrime => "L'r".into(),
        }
    }
}

/// An immutable, shareable snapshot of one [`Transform2Index`]'s
/// queryable state — the unit the sharded store (`dyndex-store`)
/// publishes through an atomically-swapped pointer so readers never take
/// the shard lock.
///
/// A view holds `Arc` handles to every static structure (levels `C_i`,
/// locked copies `L_i`, temp indexes, tops `T_1..T_g`, `L'_r`) plus a
/// frozen copy of the small mutable `C0` buffer, in the exact
/// query-traversal order of [`Transform2Index::find_limit`]. Queries
/// against the view therefore answer **byte-identically** to the index
/// at the instant [`Transform2Index::snapshot_view`] was called, and
/// stay valid — and internally consistent — no matter what the live
/// index does afterwards (deletes copy-on-write via [`Arc::make_mut`],
/// installs swap whole `Arc`s).
///
/// Views are cheap to capture (see [`Transform2Index::snapshot_view`])
/// and carry a strictly increasing [`ShardView::epoch`], which readers
/// use to assert publication monotonicity.
pub struct ShardView<I: StaticIndex> {
    c0: Arc<SuffixTree>,
    /// All captured structures in query-traversal order.
    structures: Vec<ViewStructure<I>>,
    c0_capacity: usize,
    num_docs: usize,
    symbols: usize,
    pending_jobs: usize,
    heap_bytes: usize,
    epoch: u64,
}

impl<I: StaticIndex> ShardView<I> {
    /// All occurrences of `pattern` — same traversal as
    /// [`Transform2Index::find`].
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        self.find_limit(pattern, usize::MAX)
    }

    /// Up to `limit` occurrences — same early-terminating traversal as
    /// [`Transform2Index::find_limit`].
    pub fn find_limit(&self, pattern: &[u8], limit: usize) -> Vec<Occurrence> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        out.extend(self.c0.find(pattern));
        out.truncate(limit);
        if out.len() == limit {
            return out;
        }
        for s in &self.structures {
            out.extend(s.index.find_limit(pattern, limit - out.len()));
            if out.len() == limit {
                return out;
            }
        }
        out
    }

    /// Counts occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        let mut total = self.c0.count(pattern);
        for s in &self.structures {
            total += s.index.count(pattern);
        }
        total
    }

    /// Whether `doc_id` was alive when the view was captured.
    pub fn contains(&self, doc_id: u64) -> bool {
        self.c0.contains_doc(doc_id) || self.structures.iter().any(|s| s.index.contains(doc_id))
    }

    /// Extracts up to `len` bytes of a document from `offset`, as of the
    /// capture instant.
    pub fn extract(&self, doc_id: u64, offset: usize, len: usize) -> Option<Vec<u8>> {
        if let Some(bytes) = self.c0.doc_bytes(doc_id) {
            let a = offset.min(bytes.len());
            let b = (offset + len).min(bytes.len());
            return Some(bytes[a..b].to_vec());
        }
        self.structures
            .iter()
            .find_map(|s| s.index.extract(doc_id, offset, len))
    }

    /// Number of alive documents at capture.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Total alive bytes at capture.
    pub fn symbol_count(&self) -> usize {
        self.symbols
    }

    /// Background jobs in flight at capture.
    pub fn pending_jobs(&self) -> usize {
        self.pending_jobs
    }

    /// The strictly increasing publication counter this view was stamped
    /// with (monotone per index — readers use it to assert they never
    /// observe an older view after a newer one).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Census of every captured structure — same rows and order as
    /// [`Transform2Index::structure_stats`] at the capture instant.
    pub fn structure_stats(&self) -> Vec<LevelStats> {
        let mut out = vec![LevelStats {
            name: "C0".into(),
            capacity: self.c0_capacity,
            alive_symbols: self.c0.symbol_count(),
            dead_symbols: self.c0.retained_dead_symbols(),
            docs: self.c0.num_docs(),
        }];
        let row = |s: &ViewStructure<I>| LevelStats {
            name: s.name(),
            capacity: s.capacity,
            alive_symbols: s.index.alive_symbols(),
            dead_symbols: s.index.dead_symbols(),
            docs: s.index.num_docs(),
        };
        // The live census lists L'_r before TempTop (the reverse of query
        // order); reproduce that exactly.
        for s in &self.structures {
            if !matches!(s.slot, ViewSlot::TempTop | ViewSlot::LrPrime) {
                out.push(row(s));
            }
        }
        for s in &self.structures {
            if matches!(s.slot, ViewSlot::LrPrime) {
                out.push(row(s));
            }
        }
        for s in &self.structures {
            if matches!(s.slot, ViewSlot::TempTop) {
                out.push(row(s));
            }
        }
        out
    }
}

impl<I: StaticIndex> SpaceUsage for ShardView<I> {
    /// Heap bytes of the captured state (recorded at capture; the view
    /// shares, not duplicates, the live structures).
    fn heap_bytes(&self) -> usize {
        self.heap_bytes
    }
}

impl<I: StaticIndex> std::fmt::Debug for ShardView<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardView")
            .field("epoch", &self.epoch)
            .field("num_docs", &self.num_docs)
            .field("symbols", &self.symbols)
            .field("structures", &self.structures.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIndex;
    use crate::traits::FmConfig;
    use dyndex_succinct::HuffmanWavelet;
    use dyndex_text::FmIndex;

    type Dyn2 = Transform2Index<FmIndex<HuffmanWavelet>>;

    fn opts() -> DynOptions {
        DynOptions {
            min_capacity: 32,
            tau: 4,
            ..DynOptions::default()
        }
    }

    fn assert_matches(idx: &Dyn2, naive: &NaiveIndex, patterns: &[&[u8]]) {
        for &p in patterns {
            let mut got = idx.find(p);
            got.sort();
            let want = naive.find(p);
            assert_eq!(got, want, "pattern {:?}", String::from_utf8_lossy(p));
            assert_eq!(
                idx.count(p),
                want.len(),
                "count {:?}",
                String::from_utf8_lossy(p)
            );
        }
    }

    fn churn(mode: RebuildMode, steps: u64, check_every: u64) {
        let mut idx = Dyn2::new(FmConfig { sample_rate: 4 }, opts(), mode);
        let mut naive = NaiveIndex::new();
        let mut state = 0xABCDEF0123456789u64;
        let mut live: Vec<u64> = Vec::new();
        for step in 0..steps {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            if !r.is_multiple_of(3) || live.is_empty() {
                let id = 10_000 + step;
                let doc = format!(
                    "record {step} payload {} tail",
                    "xyzxy".repeat((r % 9) as usize)
                );
                idx.insert(id, doc.as_bytes());
                naive.insert(id, doc.as_bytes());
                live.push(id);
            } else {
                let pick = (r as usize / 3) % live.len();
                let id = live.swap_remove(pick);
                assert_eq!(idx.delete(id), naive.delete(id), "step {step}");
            }
            if step % check_every == 0 {
                if mode == RebuildMode::Inline {
                    idx.check_invariants();
                }
                assert_matches(&idx, &naive, &[b"xyzxy", b"record 1", b"payload", b"zx"]);
            }
        }
        idx.finish_background_work();
        idx.check_invariants();
        assert_matches(&idx, &naive, &[b"xyzxy", b"record", b"tail"]);
        assert!(idx.work().jobs_started >= 1, "background jobs must run");
        assert_eq!(idx.work().jobs_started, idx.work().jobs_completed);
    }

    #[test]
    fn inline_churn_matches_naive() {
        churn(RebuildMode::Inline, 250, 23);
    }

    #[test]
    fn background_churn_matches_naive() {
        churn(RebuildMode::Background, 150, 29);
    }

    #[test]
    fn huge_doc_becomes_top() {
        let mut idx = Dyn2::new(FmConfig { sample_rate: 8 }, opts(), RebuildMode::Inline);
        let big = "mammoth ".repeat(100);
        idx.insert(1, big.as_bytes());
        idx.check_invariants();
        assert_eq!(idx.count(b"mammoth"), 100);
        let stats = idx.structure_stats();
        assert!(
            stats
                .iter()
                .any(|s| s.name.starts_with('T') && s.alive_symbols > 0),
            "huge doc must land in a top collection: {stats:?}"
        );
        assert_eq!(idx.delete(1).map(|b| b.len()), Some(big.len()));
        assert_eq!(idx.count(b"mammoth"), 0);
        idx.check_invariants();
    }

    #[test]
    fn queries_during_background_job() {
        let mut idx = Dyn2::new(FmConfig { sample_rate: 4 }, opts(), RebuildMode::Background);
        let mut naive = NaiveIndex::new();
        for i in 0..50u64 {
            let doc = format!("steady stream of words number {i}");
            idx.insert(i, doc.as_bytes());
            naive.insert(i, doc.as_bytes());
            // Query immediately — jobs may be mid-flight.
            assert_eq!(idx.count(b"stream"), naive.count(b"stream"), "at {i}");
        }
        idx.finish_background_work();
        idx.check_invariants();
        assert_matches(&idx, &naive, &[b"stream", b"number 4", b"words"]);
    }

    #[test]
    fn deletion_heavy_workload_purges_tops() {
        let mut idx = Dyn2::new(FmConfig { sample_rate: 4 }, opts(), RebuildMode::Inline);
        let mut naive = NaiveIndex::new();
        for i in 0..120u64 {
            let doc = format!("bulk item {i} {}", "fill".repeat(4));
            idx.insert(i, doc.as_bytes());
            naive.insert(i, doc.as_bytes());
        }
        for i in 0..100u64 {
            assert_eq!(idx.delete(i), naive.delete(i), "delete {i}");
        }
        idx.finish_background_work();
        idx.check_invariants();
        assert_matches(&idx, &naive, &[b"bulk", b"item 10", b"fill"]);
        // Deletion-heavy workloads must trigger background maintenance.
        assert!(idx.work().jobs_started > 0 || idx.work().purges > 0);
    }

    /// Options for the in-flight-job regression tests: `min_capacity`
    /// large enough that deleting everything never triggers a schedule
    /// refresh (whose `finish_background_work` would join — and deadlock
    /// on — the deliberately-blocked job).
    fn inflight_opts() -> DynOptions {
        DynOptions {
            min_capacity: 4096,
            tau: 4,
            ..DynOptions::default()
        }
    }

    /// Builds a genuinely in-flight purge job for top `t`: the build
    /// thread blocks until the returned sender fires, so the job stays
    /// unfinished (and uninstallable by `poll_jobs`) for as long as the
    /// test needs — deterministic, no timing dependence.
    fn blocked_inflight_replace(
        idx: &Dyn2,
        t: usize,
    ) -> (
        (TopJobKind, Job<FmIndex<HuffmanWavelet>>),
        std::sync::mpsc::Sender<()>,
    ) {
        let docs = idx.tops[t].as_ref().expect("live top").export_alive_docs();
        let symbols = docs.iter().map(|(_, d)| d.len()).sum();
        let config = idx.config;
        let counting = idx.options.counting;
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            rx.recv().expect("test unblocks the job");
            let refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
            DeletionOnlyIndex::build(&refs, &config, counting)
        });
        (
            (
                TopJobKind::Replace(t),
                Job {
                    handle: Some(handle),
                    ready: None,
                    pending_deletes: Vec::new(),
                    symbols,
                },
            ),
            tx,
        )
    }

    /// Regression: deleting the last document of a top while a purge job
    /// for that top is in flight must forward the deletion to the job —
    /// the empty-top discard path used to skip it, so the install
    /// resurrected the document (seen as phantom `find` hits in the
    /// Background soak test).
    #[test]
    fn delete_emptying_top_mid_job_does_not_resurrect() {
        let mut idx = Dyn2::new(
            FmConfig { sample_rate: 4 },
            inflight_opts(),
            RebuildMode::Background,
        );
        let big = "solo mammoth document ".repeat(200);
        idx.insert(1, big.as_bytes());
        let t = idx
            .tops
            .iter()
            .position(|t| t.is_some())
            .expect("huge doc lands in a top");
        let (job, unblock) = blocked_inflight_replace(&idx, t);
        idx.top_job = Some(job);
        assert_eq!(idx.delete(1).map(|b| b.len()), Some(big.len()));
        unblock.send(()).expect("job thread alive");
        idx.finish_background_work();
        assert_eq!(idx.count(b"mammoth"), 0, "install must not resurrect doc 1");
        assert!(idx.find(b"mammoth").is_empty());
        assert!(!idx.contains(1));
        idx.check_invariants();
    }

    /// Regression: a top slot emptied mid-job stays reserved until the
    /// job installs — handing it to a new top would let the install
    /// overwrite (Replace/Merge target) or clear (MergeTops source) the
    /// newcomer, silently dropping its documents.
    #[test]
    fn top_slot_reserved_while_job_in_flight() {
        let mut idx = Dyn2::new(
            FmConfig { sample_rate: 4 },
            inflight_opts(),
            RebuildMode::Background,
        );
        let big = "solo mammoth document ".repeat(200);
        idx.insert(1, big.as_bytes());
        let t = idx
            .tops
            .iter()
            .position(|t| t.is_some())
            .expect("huge doc lands in a top");
        let (job, unblock) = blocked_inflight_replace(&idx, t);
        idx.top_job = Some(job);
        // Empties (and discards) top `t` while the job is in flight.
        idx.delete(1);
        assert!(idx.tops[t].is_none(), "emptied top must be discarded");
        // A new huge document must not be placed in the reserved slot.
        let other = "fresh walrus corpus ".repeat(250);
        idx.insert(2, other.as_bytes());
        assert_eq!(idx.count(b"walrus"), 250);
        unblock.send(()).expect("job thread alive");
        idx.finish_background_work();
        assert_eq!(
            idx.count(b"walrus"),
            250,
            "install must not clobber the new top"
        );
        assert_eq!(idx.count(b"mammoth"), 0);
        idx.check_invariants();
    }

    #[test]
    fn find_limit_truncates_and_agrees_with_find() {
        let mut idx = Dyn2::new(FmConfig { sample_rate: 4 }, opts(), RebuildMode::Inline);
        for i in 0..60u64 {
            let doc = format!("alpha beta gamma {i} alpha");
            idx.insert(i, doc.as_bytes());
        }
        idx.finish_background_work();
        let all = idx.find(b"alpha");
        assert_eq!(all.len(), 120);
        // No limit: identical to find (find delegates to find_limit).
        assert_eq!(idx.find_limit(b"alpha", usize::MAX), all);
        assert!(idx.find_limit(b"alpha", 0).is_empty());
        for k in [1usize, 7, 119, 120, 500] {
            let capped = idx.find_limit(b"alpha", k);
            assert_eq!(capped.len(), k.min(all.len()), "limit {k}");
            // Every reported occurrence is a real one.
            for occ in &capped {
                assert!(all.contains(occ), "phantom occurrence {occ:?}");
            }
        }
        assert!(idx.find_limit(b"absent", 10).is_empty());
    }

    #[test]
    fn poll_background_work_installs_finished_jobs() {
        let mut idx = Dyn2::new(FmConfig { sample_rate: 4 }, opts(), RebuildMode::Inline);
        for i in 0..80u64 {
            idx.insert(i, format!("steady polling workload {i}").as_bytes());
        }
        // Inline jobs are ready at spawn: one poll installs everything.
        assert_eq!(idx.poll_background_work(), 0);
        assert_eq!(idx.pending_jobs(), 0);
        assert_eq!(idx.work().jobs_started, idx.work().jobs_completed);
        idx.check_invariants();
    }

    #[test]
    fn empty_index_queries() {
        let idx = Dyn2::new(FmConfig { sample_rate: 4 }, opts(), RebuildMode::Inline);
        assert_eq!(idx.count(b"anything"), 0);
        assert!(idx.find(b"anything").is_empty());
        assert_eq!(idx.num_docs(), 0);
    }
}
