//! Telemetry handles for the core rebuild machinery.
//!
//! [`CoreMetrics`] bundles the counters/histograms a [`Transform2Index`]
//! records into when one is attached via
//! [`Transform2Index::set_metrics`]. The handles are shared `Arc`s from a
//! [`MetricsRegistry`], so every shard of a store records into the same
//! series, and a detached index (`metrics == None`) pays nothing — not
//! even a clock read.
//!
//! [`Transform2Index`]: crate::transform2::Transform2Index
//! [`Transform2Index::set_metrics`]: crate::transform2::Transform2Index::set_metrics

use std::sync::Arc;

use dyndex_obs::{Counter, FlightRecorder, Histogram, MetricsRegistry, Unit};

/// Shared handles for core-layer instrumentation: rebuild/merge job
/// durations, level/top installs, and `C0` freeze behavior.
#[derive(Debug)]
pub struct CoreMetrics {
    /// Optional flight recorder: when present, rebuild jobs and
    /// level/top installs are recorded as causal spans (shard-striped)
    /// in addition to the histogram/counter series below.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Wall-clock duration of each static rebuild/merge job, in nanos
    /// (recorded on the build thread for background jobs).
    pub rebuild_duration: Arc<Histogram>,
    /// Finished level jobs installed (`N_{j+1}` replacing `C_{j+1}` or
    /// becoming a fresh top).
    pub level_installs: Arc<Counter>,
    /// Finished top-maintenance jobs installed (purges and merges).
    pub top_installs: Arc<Counter>,
    /// `snapshot_view` calls that had to deep-copy `C0` (it changed since
    /// the last published view).
    pub c0_freeze_copies: Arc<Counter>,
    /// `snapshot_view` calls that reused the cached frozen `C0` `Arc`.
    pub c0_freeze_reused: Arc<Counter>,
}

impl CoreMetrics {
    /// Registers (or re-binds to) the core metric series in `registry`.
    /// `stripes` sizes the rebuild-duration histogram's recording lanes —
    /// pass the shard count so concurrent background builds don't contend.
    pub fn register(registry: &MetricsRegistry, stripes: usize) -> Arc<Self> {
        Self::register_with_flight(registry, stripes, None)
    }

    /// Like [`CoreMetrics::register`], additionally attaching a flight
    /// recorder so rebuilds and installs emit spans.
    pub fn register_with_flight(
        registry: &MetricsRegistry,
        stripes: usize,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Arc<Self> {
        Arc::new(CoreMetrics {
            flight,
            rebuild_duration: registry.histogram(
                "dyndex_core_rebuild_duration",
                "wall-clock duration of static rebuild/merge jobs",
                Unit::Nanos,
                stripes,
            ),
            level_installs: registry.counter(
                "dyndex_core_level_installs",
                "finished level rebuild jobs installed",
                Unit::Count,
            ),
            top_installs: registry.counter(
                "dyndex_core_top_installs",
                "finished top-maintenance jobs installed",
                Unit::Count,
            ),
            c0_freeze_copies: registry.counter(
                "dyndex_core_c0_freeze_copies",
                "view publications that deep-copied C0",
                Unit::Count,
            ),
            c0_freeze_reused: registry.counter(
                "dyndex_core_c0_freeze_reused",
                "view publications that reused the cached frozen C0",
                Unit::Count,
            ),
        })
    }
}
