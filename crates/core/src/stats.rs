//! Instrumentation: per-level census and update-work accounting.
//!
//! These feed the Figure 1–3 harnesses: the paper's figures depict the
//! sub-collection layout (Fig. 1–2) and the background-rebuild lifecycle
//! (Fig. 3); our harnesses print the measured equivalents.

/// Census of one sub-collection at a point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelStats {
    /// Display name (`C0`, `C3`, `L2`, `T1`, `Temp2`, …).
    pub name: String,
    /// Capacity bound (0 = unbounded, e.g. one-document tops).
    pub capacity: usize,
    /// Alive bytes.
    pub alive_symbols: usize,
    /// Deleted-but-retained bytes.
    pub dead_symbols: usize,
    /// Alive documents.
    pub docs: usize,
}

/// Cumulative and per-operation update-work counters.
///
/// "Work" is measured in *symbols (re)built into static indexes* — the
/// unit the paper's `O(|Tu| · u(n) · …)` bounds are stated in.
#[derive(Clone, Debug, Default)]
pub struct UpdateWork {
    /// Symbols built during the most recent update operation.
    pub last_op_symbols: usize,
    /// Largest single-operation build.
    pub max_op_symbols: usize,
    /// Total symbols built into static indexes over all time.
    pub total_symbols: usize,
    /// Level-rebuild events (insert cascades).
    pub rebuilds: u64,
    /// Purge events (deletion-triggered in-place rebuilds).
    pub purges: u64,
    /// Global rebuild events.
    pub global_rebuilds: u64,
    /// Background jobs started (Transformation 2 only).
    pub jobs_started: u64,
    /// Background jobs completed (Transformation 2 only).
    pub jobs_completed: u64,
    /// Times the foreground had to wait for a background job
    /// (Transformation 2 only; the paper schedules these to zero).
    pub forced_waits: u64,
}

impl UpdateWork {
    /// Marks the start of an update operation.
    pub fn begin_op(&mut self) {
        self.last_op_symbols = 0;
    }

    /// Records `symbols` of foreground work in the current operation.
    pub fn count_symbols(&mut self, symbols: usize) {
        self.last_op_symbols += symbols;
        self.max_op_symbols = self.max_op_symbols.max(self.last_op_symbols);
        self.total_symbols += symbols;
    }

    /// Records a level rebuild of `symbols`.
    pub fn count_rebuild(&mut self, symbols: usize) {
        self.rebuilds += 1;
        self.count_symbols(symbols);
    }

    /// Records a purge of `symbols`.
    pub fn count_purge(&mut self, symbols: usize) {
        self.purges += 1;
        self.count_symbols(symbols);
    }

    /// Records a global rebuild of `symbols`.
    pub fn count_global_rebuild(&mut self, symbols: usize) {
        self.global_rebuilds += 1;
        self.count_symbols(symbols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_accounting() {
        let mut w = UpdateWork::default();
        w.begin_op();
        w.count_rebuild(100);
        assert_eq!(w.last_op_symbols, 100);
        w.begin_op();
        w.count_symbols(5);
        w.count_purge(50);
        assert_eq!(w.last_op_symbols, 55);
        assert_eq!(w.max_op_symbols, 100);
        assert_eq!(w.total_symbols, 155);
        assert_eq!(w.rebuilds, 1);
        assert_eq!(w.purges, 1);
    }
}
