//! **Transformation 3** (Appendix A.4): the lower-update-cost variant.
//!
//! Identical machinery to Transformation 1, but the capacity schedule uses
//! `max_i = 2(n/log²n)·2^i`, so there are `O(log log n)` sub-collections.
//! Each rebuild of `C_i` inserts `Ω(|C_i|)` new symbols (capacities
//! double), which drops the amortized insertion cost from
//! `O(u(n)·log^ε n)` to `O(u(n)·log log n)` per symbol; range-finding pays
//! a `log log n` factor because every level is queried.

use crate::config::{DynOptions, Growth};
use crate::traits::StaticIndex;
use crate::transform1::Transform1Index;

/// A dynamic index with `O(log log n)` levels (Transformation 3).
pub type Transform3Index<I> = Transform1Index<I>;

/// Options preset for Transformation 3 (doubling capacity schedule).
pub fn transform3_options(base: DynOptions) -> DynOptions {
    DynOptions {
        growth: Growth::Doubling,
        ..base
    }
}

/// Builds an empty Transformation 3 index.
pub fn new_transform3<I: StaticIndex>(
    config: I::Config,
    options: DynOptions,
) -> Transform3Index<I> {
    Transform1Index::new(config, transform3_options(options))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIndex;
    use crate::traits::FmConfig;
    use dyndex_succinct::HuffmanWavelet;
    use dyndex_text::FmIndex;

    #[test]
    fn transform3_churn_matches_naive() {
        let mut idx = new_transform3::<FmIndex<HuffmanWavelet>>(
            FmConfig { sample_rate: 4 },
            DynOptions {
                min_capacity: 32,
                ..DynOptions::default()
            },
        );
        let mut naive = NaiveIndex::new();
        let mut state = 0x0123456789ABCDEFu64;
        let mut live: Vec<u64> = Vec::new();
        for step in 0..150u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            if !r.is_multiple_of(3) || live.is_empty() {
                let id = step;
                let doc = format!("triad {step} {}", "lmnop".repeat((r % 6) as usize));
                idx.insert(id, doc.as_bytes());
                naive.insert(id, doc.as_bytes());
                live.push(id);
            } else {
                let pick = (r as usize / 3) % live.len();
                let id = live.swap_remove(pick);
                assert_eq!(idx.delete(id), naive.delete(id), "step {step}");
            }
            if step % 31 == 0 {
                idx.check_invariants();
                for p in [b"lmnop".as_slice(), b"triad 1", b"no"] {
                    let mut got = idx.find(p);
                    got.sort();
                    assert_eq!(got, naive.find(p), "step {step}");
                }
            }
        }
        idx.check_invariants();
    }
}
