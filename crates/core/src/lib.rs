//! # dyndex-core
//!
//! The primary contribution of *Munro, Nekrich, Vitter: Dynamic Data
//! Structures for Document Collections and Graphs* (PODS 2015): a general
//! framework that turns **static** compressed full-text indexes into
//! **dynamic** ones without paying the Fredman–Saks dynamic-rank lower
//! bound on queries.
//!
//! * [`traits::StaticIndex`] — the interface any pluggable static index
//!   satisfies (FM-index and classical suffix-array index provided).
//! * [`deletion_only::DeletionOnlyIndex`] — §2's semi-dynamic wrapper:
//!   lazy deletions via the Lemma 3 one-bit reporter, Theorem 1 counting.
//! * [`transform1::Transform1Index`] — §2's fully-dynamic index with
//!   amortized updates (geometric sub-collections + global rebuilds).
//! * [`transform2::Transform2Index`] — §3's worst-case variant: locked
//!   sub-collections, background rebuild jobs, temp indexes, top
//!   collections with the Dietz–Sleator purge schedule.
//! * [`transform3`] — Appendix A.4's `O(log log n)`-level schedule.
//! * [`naive::NaiveIndex`] — brute-force ground truth.
//!
//! ```
//! use dyndex_core::prelude::*;
//!
//! let mut index: Transform1Index<FmIndexCompressed> =
//!     Transform1Index::new(FmConfig { sample_rate: 8 }, DynOptions::default());
//! index.insert(1, b"the quick brown fox");
//! index.insert(2, b"jumped over the lazy dog");
//! assert_eq!(index.count(b"the"), 2);
//! index.delete(1);
//! assert_eq!(index.count(b"the"), 1);
//! ```

pub mod bulk;
pub mod config;
pub mod deletion_only;
pub mod metrics;
pub mod naive;
pub mod stats;
pub mod traits;
pub mod transform1;
pub mod transform2;
pub mod transform3;

pub use bulk::LevelBuilder;
pub use config::{CapacitySchedule, DynOptions, Growth};
pub use deletion_only::DeletionOnlyIndex;
pub use metrics::CoreMetrics;
pub use naive::NaiveIndex;
pub use stats::{LevelStats, UpdateWork};
pub use traits::{FmConfig, StaticIndex};
pub use transform1::Transform1Index;
pub use transform2::{RebuildMode, ShardView, Transform2Index};
pub use transform3::{new_transform3, transform3_options, Transform3Index};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bulk::LevelBuilder;
    pub use crate::config::{DynOptions, Growth};
    pub use crate::deletion_only::DeletionOnlyIndex;
    pub use crate::naive::NaiveIndex;
    pub use crate::traits::{FmConfig, StaticIndex};
    pub use crate::transform1::Transform1Index;
    pub use crate::transform2::{RebuildMode, ShardView, Transform2Index};
    pub use crate::transform3::{new_transform3, Transform3Index};
    pub use dyndex_text::{FmIndexCompressed, FmIndexPlain, Occurrence, SaIndex};
}
