//! Property-based tests: the transformations against the brute-force
//! reference under arbitrary operation interleavings.

use dyndex_core::prelude::*;
use dyndex_core::transform3::transform3_options;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>),
    Delete(proptest::sample::Index),
    Query(Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => proptest::collection::vec(proptest::sample::select(b"abcd".to_vec()), 0..40)
            .prop_map(Op::Insert),
        1 => any::<proptest::sample::Index>().prop_map(Op::Delete),
        2 => proptest::collection::vec(proptest::sample::select(b"abcd".to_vec()), 1..6)
            .prop_map(Op::Query),
    ]
}

fn opts() -> DynOptions {
    DynOptions {
        min_capacity: 32,
        tau: 4,
        ..DynOptions::default()
    }
}

fn run_script<T>(
    idx: &mut T,
    ops: &[Op],
    ins: fn(&mut T, u64, &[u8]),
    del: fn(&mut T, u64) -> Option<Vec<u8>>,
    find: fn(&T, &[u8]) -> Vec<Occurrence>,
    count: fn(&T, &[u8]) -> usize,
) -> Result<(), TestCaseError> {
    let mut naive = NaiveIndex::new();
    let mut live: Vec<u64> = Vec::new();
    let mut next = 0u64;
    for op in ops {
        match op {
            Op::Insert(doc) => {
                next += 1;
                ins(idx, next, doc);
                naive.insert(next, doc);
                live.push(next);
            }
            Op::Delete(ix) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(ix.index(live.len()));
                prop_assert_eq!(del(idx, id), naive.delete(id));
            }
            Op::Query(p) => {
                let mut got = find(idx, p);
                got.sort();
                prop_assert_eq!(got, naive.find(p));
                prop_assert_eq!(count(idx, p), naive.count(p));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn transform1_matches_reference(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let mut idx: Transform1Index<FmIndexCompressed> =
            Transform1Index::new(FmConfig { sample_rate: 4 }, opts());
        run_script(
            &mut idx,
            &ops,
            |i, id, d| i.insert(id, d),
            |i, id| i.delete(id),
            |i, p| i.find(p),
            |i, p| i.count(p),
        )?;
        idx.check_invariants();
    }

    #[test]
    fn transform2_inline_matches_reference(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let mut idx: Transform2Index<FmIndexCompressed> =
            Transform2Index::new(FmConfig { sample_rate: 4 }, opts(), RebuildMode::Inline);
        run_script(
            &mut idx,
            &ops,
            |i, id, d| i.insert(id, d),
            |i, id| i.delete(id),
            |i, p| i.find(p),
            |i, p| i.count(p),
        )?;
        idx.finish_background_work();
        idx.check_invariants();
    }

    #[test]
    fn transform3_matches_reference(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let mut idx: Transform3Index<FmIndexCompressed> =
            new_transform3(FmConfig { sample_rate: 4 }, transform3_options(opts()));
        run_script(
            &mut idx,
            &ops,
            |i, id, d| i.insert(id, d),
            |i, id| i.delete(id),
            |i, p| i.find(p),
            |i, p| i.count(p),
        )?;
        idx.check_invariants();
    }

    #[test]
    fn deletion_only_wrapper_matches_reference(
        docs_raw in proptest::collection::vec(
            proptest::collection::vec(proptest::sample::select(b"ab".to_vec()), 0..30), 1..10),
        deletions in proptest::collection::vec(any::<proptest::sample::Index>(), 0..8),
        pattern in proptest::collection::vec(proptest::sample::select(b"ab".to_vec()), 1..5),
    ) {
        let mut docs: Vec<(u64, Vec<u8>)> = docs_raw.into_iter().enumerate()
            .map(|(i, d)| (i as u64, d)).collect();
        let refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
        let mut del = DeletionOnlyIndex::<FmIndexCompressed>::build(
            &refs, &FmConfig { sample_rate: 4 }, true);
        let mut naive = NaiveIndex::new();
        for (id, d) in &docs {
            naive.insert(*id, d);
        }
        for dix in &deletions {
            if docs.is_empty() { break; }
            let i = dix.index(docs.len());
            let (id, _) = docs.remove(i);
            prop_assert_eq!(del.delete(id), naive.delete(id));
        }
        let mut got = del.find(&pattern);
        got.sort();
        prop_assert_eq!(got, naive.find(&pattern));
        prop_assert_eq!(del.count(&pattern), naive.count(&pattern));
    }
}
