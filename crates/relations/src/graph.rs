//! Dynamic directed graph (§5, Theorem 3).
//!
//! A directed graph is the binary relation "u → v": node `u` (as object)
//! is related to node `v` (as label). Out-neighbors are an object's
//! labels, in-neighbors ("reverse neighbors") a label's objects, adjacency
//! an existential query — all inherited from [`DynamicRelation`] with the
//! same bounds: O(log log σl · log log n)-class reporting per datum,
//! O(log n) counting, O(log^ε n) updates.

use crate::dynamic_rel::DynamicRelation;
use dyndex_core::config::DynOptions;
use dyndex_succinct::SpaceUsage;

/// A dynamic directed graph over `u64` node ids.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    rel: DynamicRelation,
}

impl DynamicGraph {
    /// Creates an empty graph.
    pub fn new(options: DynOptions) -> Self {
        DynamicGraph {
            rel: DynamicRelation::new(options),
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.rel.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Adds edge `u → v`; returns false if already present.
    pub fn add_edge(&mut self, u: u64, v: u64) -> bool {
        self.rel.insert(u, v)
    }

    /// Removes edge `u → v`; returns false if absent.
    pub fn remove_edge(&mut self, u: u64, v: u64) -> bool {
        self.rel.delete(u, v)
    }

    /// Whether edge `u → v` exists.
    pub fn has_edge(&self, u: u64, v: u64) -> bool {
        self.rel.related(u, v)
    }

    /// Out-neighbors of `u` (ascending).
    pub fn out_neighbors(&self, u: u64) -> Vec<u64> {
        self.rel.labels_of(u)
    }

    /// In-neighbors of `v` (ascending) — the paper's reverse neighbors.
    pub fn in_neighbors(&self, v: u64) -> Vec<u64> {
        self.rel.objects_of(v)
    }

    /// Out-degree of `u` — O(log n).
    pub fn out_degree(&self, u: u64) -> usize {
        self.rel.count_labels(u)
    }

    /// In-degree of `v` — O(log n).
    pub fn in_degree(&self, v: u64) -> usize {
        self.rel.count_objects(v)
    }

    /// Removes every edge incident to `node` (both directions); returns
    /// how many edges were removed. A self-loop `node → node` appears in
    /// both neighbor lists but is a single edge, so it counts once.
    pub fn remove_node(&mut self, node: u64) -> usize {
        let out = self.out_neighbors(node);
        let inn = self.in_neighbors(node);
        let mut removed = 0;
        for v in out {
            if self.rel.delete(node, v) {
                removed += 1;
            }
        }
        // The self-loop was already removed (and counted) by the
        // out-neighbor pass; don't attempt its in-edge twin.
        for u in inn.into_iter().filter(|&u| u != node) {
            if self.rel.delete(u, node) {
                removed += 1;
            }
        }
        removed
    }

    /// Underlying relation (diagnostics).
    pub fn relation(&self) -> &DynamicRelation {
        &self.rel
    }

    /// Validates invariants.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.rel.check_invariants();
    }
}

impl SpaceUsage for DynamicGraph {
    fn heap_bytes(&self) -> usize {
        self.rel.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn opts() -> DynOptions {
        DynOptions {
            min_capacity: 16,
            tau: 4,
            ..DynOptions::default()
        }
    }

    #[test]
    fn edges_and_neighbors() {
        let mut g = DynamicGraph::new(opts());
        assert!(g.add_edge(1, 2));
        assert!(g.add_edge(1, 3));
        assert!(g.add_edge(2, 3));
        assert!(g.add_edge(3, 1));
        assert!(!g.add_edge(1, 2));
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(1), vec![2, 3]);
        assert_eq!(g.in_neighbors(3), vec![1, 2]);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.in_degree(1), 1);
        assert!(g.has_edge(3, 1));
        assert!(!g.has_edge(1, 1));
        assert!(g.remove_edge(1, 3));
        assert_eq!(g.out_neighbors(1), vec![2]);
        assert_eq!(g.in_neighbors(3), vec![2]);
    }

    #[test]
    fn self_loops_and_node_removal() {
        let mut g = DynamicGraph::new(opts());
        g.add_edge(7, 7);
        g.add_edge(7, 8);
        g.add_edge(9, 7);
        assert!(g.has_edge(7, 7));
        assert_eq!(g.remove_node(7), 3);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.has_edge(9, 7));
        g.check_invariants();
    }

    /// Regression: a self-loop is one edge — `remove_node` must count it
    /// exactly once, not once per direction, and the count must always
    /// equal the drop in `num_edges`.
    #[test]
    fn self_loop_counted_once_by_remove_node() {
        let mut g = DynamicGraph::new(opts());
        g.add_edge(5, 5);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.remove_node(5), 1);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.remove_node(5), 0, "repeat removal removes nothing");
        g.check_invariants();

        // Mixed incidence: self-loop + out-edge + in-edge = 3 edges.
        g.add_edge(1, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 1);
        g.add_edge(2, 3); // not incident to 1; must survive
        let before = g.num_edges();
        let removed = g.remove_node(1);
        assert_eq!(removed, 3);
        assert_eq!(g.num_edges(), before - removed);
        assert!(g.has_edge(2, 3));
        g.check_invariants();
    }

    #[test]
    fn random_graph_matches_model() {
        let mut g = DynamicGraph::new(opts());
        let mut model: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut state = 0xC0FFEEu64;
        for step in 0..800 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = state >> 33;
            let u = x % 25;
            let v = (x / 32) % 25;
            if !x.is_multiple_of(3) {
                assert_eq!(g.add_edge(u, v), model.insert((u, v)), "step {step}");
            } else {
                assert_eq!(g.remove_edge(u, v), model.remove(&(u, v)), "step {step}");
            }
            if step % 97 == 0 {
                g.check_invariants();
                for node in 0..25u64 {
                    let out: Vec<u64> = model
                        .iter()
                        .filter(|&&(a, _)| a == node)
                        .map(|&(_, b)| b)
                        .collect();
                    assert_eq!(g.out_neighbors(node), out, "out({node}) step {step}");
                    let inn: Vec<u64> = model
                        .iter()
                        .filter(|&&(_, b)| b == node)
                        .map(|&(a, _)| a)
                        .collect();
                    assert_eq!(g.in_neighbors(node), inn, "in({node}) step {step}");
                    assert_eq!(g.out_degree(node), out.len());
                    assert_eq!(g.in_degree(node), inn.len());
                }
            }
        }
        g.check_invariants();
    }
}
