//! Brute-force reference relation for tests and benchmarks.

use std::collections::{BTreeMap, BTreeSet};

/// A hash/tree-set model of a binary relation over external ids.
#[derive(Clone, Debug, Default)]
pub struct NaiveRelation {
    by_obj: BTreeMap<u64, BTreeSet<u64>>,
    by_lab: BTreeMap<u64, BTreeSet<u64>>,
    pairs: usize,
}

impl NaiveRelation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.pairs == 0
    }

    /// Inserts a pair; returns false if already present.
    pub fn insert(&mut self, object: u64, label: u64) -> bool {
        if !self.by_obj.entry(object).or_default().insert(label) {
            return false;
        }
        self.by_lab.entry(label).or_default().insert(object);
        self.pairs += 1;
        true
    }

    /// Deletes a pair; returns false if absent.
    pub fn delete(&mut self, object: u64, label: u64) -> bool {
        let Some(set) = self.by_obj.get_mut(&object) else {
            return false;
        };
        if !set.remove(&label) {
            return false;
        }
        if set.is_empty() {
            self.by_obj.remove(&object);
        }
        let back = self.by_lab.get_mut(&label).expect("mirror map");
        back.remove(&object);
        if back.is_empty() {
            self.by_lab.remove(&label);
        }
        self.pairs -= 1;
        true
    }

    /// Whether the pair exists.
    pub fn related(&self, object: u64, label: u64) -> bool {
        self.by_obj.get(&object).is_some_and(|s| s.contains(&label))
    }

    /// Labels of an object (ascending).
    pub fn labels_of(&self, object: u64) -> Vec<u64> {
        self.by_obj
            .get(&object)
            .map_or(Vec::new(), |s| s.iter().copied().collect())
    }

    /// Objects of a label (ascending).
    pub fn objects_of(&self, label: u64) -> Vec<u64> {
        self.by_lab
            .get(&label)
            .map_or(Vec::new(), |s| s.iter().copied().collect())
    }

    /// Degree of an object.
    pub fn count_labels(&self, object: u64) -> usize {
        self.by_obj.get(&object).map_or(0, |s| s.len())
    }

    /// Degree of a label.
    pub fn count_objects(&self, label: u64) -> usize {
        self.by_lab.get(&label).map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut r = NaiveRelation::new();
        assert!(r.insert(1, 10));
        assert!(!r.insert(1, 10));
        assert!(r.insert(1, 11));
        assert!(r.insert(2, 10));
        assert_eq!(r.len(), 3);
        assert_eq!(r.labels_of(1), vec![10, 11]);
        assert_eq!(r.objects_of(10), vec![1, 2]);
        assert!(r.delete(1, 10));
        assert!(!r.delete(1, 10));
        assert_eq!(r.count_objects(10), 1);
        assert_eq!(r.len(), 2);
    }
}
