//! Static compact binary relation (§5, after Barbay et al. \[4, 5\]).
//!
//! A relation `R ⊆ [0,t) × [0,σl)` between `t` objects and `σl` labels is
//! encoded as:
//! * `S` — the labels related to object 0, then object 1, … (the paper's
//!   column-wise matrix traversal), stored in a Huffman-shaped wavelet
//!   tree: `nH0(S) + o(·)` bits — the `nH` term of Theorem 2;
//! * `N = 1^{n_0} 0 1^{n_1} 0 …` — per-object degree sequence, unary.
//!
//! All queries reduce to rank/select/access on `S` and `N`.

use dyndex_succinct::{BitVec, HuffmanWavelet, RankSelect, SpaceUsage, WaveletMatrix};

/// An object–label pair.
pub type Pair = (u32, u32);

/// Alphabets up to this size use the Huffman-shaped wavelet tree
/// (`nH0 + n` bits); larger ones use the wavelet matrix (`n⌈log σ⌉` bits)
/// whose per-level overhead is independent of σ. This mirrors the paper's
/// reliance on alphabet partitioning \[3\] for large label sets: entropy
/// coding only pays off once per-symbol savings beat per-node overheads.
const HUFFMAN_SIGMA_LIMIT: u32 = 512;

/// The label sequence `S`, represented adaptively by alphabet size.
#[derive(Clone, Debug)]
enum LabelSeq {
    Huff(HuffmanWavelet),
    Matrix(WaveletMatrix),
}

impl LabelSeq {
    fn new(seq: &[u32], sigma: u32) -> Self {
        if sigma <= HUFFMAN_SIGMA_LIMIT {
            LabelSeq::Huff(HuffmanWavelet::new(seq, sigma))
        } else {
            LabelSeq::Matrix(WaveletMatrix::new(seq, sigma))
        }
    }
    fn access(&self, i: usize) -> u32 {
        match self {
            LabelSeq::Huff(h) => h.access(i),
            LabelSeq::Matrix(m) => m.access(i),
        }
    }
    fn rank(&self, sym: u32, i: usize) -> usize {
        match self {
            LabelSeq::Huff(h) => h.rank(sym, i),
            LabelSeq::Matrix(m) => m.rank(sym, i),
        }
    }
    fn select(&self, sym: u32, k: usize) -> Option<usize> {
        match self {
            LabelSeq::Huff(h) => h.select(sym, k),
            LabelSeq::Matrix(m) => m.select(sym, k),
        }
    }
}

impl SpaceUsage for LabelSeq {
    fn heap_bytes(&self) -> usize {
        match self {
            LabelSeq::Huff(h) => h.heap_bytes(),
            LabelSeq::Matrix(m) => m.heap_bytes(),
        }
    }
}

/// A static compact binary relation.
#[derive(Clone, Debug)]
pub struct StaticRelation {
    /// Labels ordered by object.
    s: LabelSeq,
    /// Unary degree bitmap: `1^{deg(0)} 0 1^{deg(1)} 0 …`.
    n: RankSelect,
    num_objects: u32,
    num_labels: u32,
    pairs: usize,
}

impl StaticRelation {
    /// Builds from pairs (duplicates are deduplicated; order arbitrary).
    pub fn new(pairs: &[Pair], num_objects: u32, num_labels: u32) -> Self {
        let mut sorted: Vec<Pair> = pairs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        debug_assert!(sorted
            .iter()
            .all(|&(o, l)| o < num_objects && l < num_labels));
        let mut s_syms: Vec<u32> = Vec::with_capacity(sorted.len());
        let mut n_bits = BitVec::with_capacity(sorted.len() + num_objects as usize);
        let mut cur_obj = 0u32;
        for &(o, l) in &sorted {
            while cur_obj < o {
                n_bits.push(false);
                cur_obj += 1;
            }
            s_syms.push(l);
            n_bits.push(true);
        }
        while cur_obj < num_objects {
            n_bits.push(false);
            cur_obj += 1;
        }
        StaticRelation {
            s: LabelSeq::new(&s_syms, num_labels.max(1)),
            n: RankSelect::new(n_bits),
            num_objects,
            num_labels,
            pairs: sorted.len(),
        }
    }

    /// Number of pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs == 0
    }

    /// Number of objects in the universe.
    #[inline]
    pub fn num_objects(&self) -> u32 {
        self.num_objects
    }

    /// Number of labels in the universe.
    #[inline]
    pub fn num_labels(&self) -> u32 {
        self.num_labels
    }

    /// The `[l, r)` interval of `S` holding object `obj`'s labels.
    #[inline]
    pub fn object_range(&self, obj: u32) -> (usize, usize) {
        assert!(obj < self.num_objects, "object {obj} out of range");
        let l = if obj == 0 {
            0
        } else {
            self.n
                .select0(obj as usize - 1)
                .map_or(0, |p| self.n.rank1(p))
        };
        let r = match self.n.select0(obj as usize) {
            Some(p) => self.n.rank1(p),
            None => self.pairs,
        };
        (l, r)
    }

    /// The object owning position `pos` of `S`.
    #[inline]
    pub fn object_of_pos(&self, pos: usize) -> u32 {
        let p = self.n.select1(pos).expect("pos within S");
        self.n.rank0(p) as u32
    }

    /// Label stored at position `pos` of `S`.
    #[inline]
    pub fn label_at(&self, pos: usize) -> u32 {
        self.s.access(pos)
    }

    /// Labels related to `obj` (ascending).
    pub fn labels_of(&self, obj: u32) -> Vec<u32> {
        let (l, r) = self.object_range(obj);
        (l..r).map(|i| self.s.access(i)).collect()
    }

    /// Objects related to `label` (ascending).
    pub fn objects_of(&self, label: u32) -> Vec<u32> {
        let k = self.count_objects(label);
        (0..k)
            .map(|i| {
                let pos = self.s.select(label, i).expect("rank bound");
                self.object_of_pos(pos)
            })
            .collect()
    }

    /// Degree of an object.
    pub fn count_labels(&self, obj: u32) -> usize {
        let (l, r) = self.object_range(obj);
        r - l
    }

    /// Degree of a label.
    pub fn count_objects(&self, label: u32) -> usize {
        if label >= self.num_labels {
            return 0;
        }
        self.s.rank(label, self.pairs)
    }

    /// Whether `(obj, label)` is in the relation; if so, also returns the
    /// position of the pair in `S` (used by the deletion-only layer).
    pub fn find_pair(&self, obj: u32, label: u32) -> Option<usize> {
        if obj >= self.num_objects || label >= self.num_labels {
            return None;
        }
        let (l, r) = self.object_range(obj);
        let before = self.s.rank(label, l);
        let within = self.s.rank(label, r) - before;
        if within == 0 {
            None
        } else {
            debug_assert_eq!(within, 1, "pairs are unique");
            self.s.select(label, before)
        }
    }

    /// The rank of `(obj, label)` among `label`'s occurrences in `S`
    /// (the index into the paper's `D_a`), if related.
    pub fn label_occurrence_rank(&self, obj: u32, label: u32) -> Option<usize> {
        let pos = self.find_pair(obj, label)?;
        Some(self.s.rank(label, pos))
    }

    /// Position in `S` of the `occ`-th (0-based) occurrence of `label`.
    pub fn select_label(&self, label: u32, occ: usize) -> Option<usize> {
        self.s.select(label, occ)
    }
}

impl SpaceUsage for StaticRelation {
    fn heap_bytes(&self) -> usize {
        self.s.heap_bytes() + self.n.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StaticRelation {
        // objects 0..4, labels 0..3
        let pairs = [(0, 1), (0, 2), (1, 0), (3, 1), (3, 0), (3, 2), (0, 1)];
        StaticRelation::new(&pairs, 4, 3)
    }

    #[test]
    fn ranges_and_degrees() {
        let r = sample();
        assert_eq!(r.len(), 6); // dedup of (0,1)
        assert_eq!(r.count_labels(0), 2);
        assert_eq!(r.count_labels(1), 1);
        assert_eq!(r.count_labels(2), 0);
        assert_eq!(r.count_labels(3), 3);
        assert_eq!(r.count_objects(0), 2);
        assert_eq!(r.count_objects(1), 2);
        assert_eq!(r.count_objects(2), 2);
    }

    #[test]
    fn labels_and_objects() {
        let r = sample();
        assert_eq!(r.labels_of(0), vec![1, 2]);
        assert_eq!(r.labels_of(1), vec![0]);
        assert_eq!(r.labels_of(2), Vec::<u32>::new());
        assert_eq!(r.labels_of(3), vec![0, 1, 2]);
        assert_eq!(r.objects_of(0), vec![1, 3]);
        assert_eq!(r.objects_of(1), vec![0, 3]);
        assert_eq!(r.objects_of(2), vec![0, 3]);
    }

    #[test]
    fn membership() {
        let r = sample();
        assert!(r.find_pair(0, 1).is_some());
        assert!(r.find_pair(0, 0).is_none());
        assert!(r.find_pair(2, 0).is_none());
        assert!(r.find_pair(99, 0).is_none());
        // occurrence ranks within a label column
        assert_eq!(r.label_occurrence_rank(1, 0), Some(0));
        assert_eq!(r.label_occurrence_rank(3, 0), Some(1));
    }

    #[test]
    fn empty_relation() {
        let r = StaticRelation::new(&[], 3, 3);
        assert!(r.is_empty());
        assert_eq!(r.labels_of(2), Vec::<u32>::new());
        assert_eq!(r.count_objects(0), 0);
    }

    #[test]
    fn single_object_many_labels() {
        let pairs: Vec<Pair> = (0..50).map(|l| (0, l)).collect();
        let r = StaticRelation::new(&pairs, 1, 50);
        assert_eq!(r.count_labels(0), 50);
        assert_eq!(r.labels_of(0), (0..50).collect::<Vec<u32>>());
        for l in 0..50 {
            assert_eq!(r.objects_of(l), vec![0]);
        }
    }
}
