//! # dyndex-relations
//!
//! Compressed dynamic binary relations and directed graphs — §5 of
//! *Munro, Nekrich, Vitter: Dynamic Data Structures for Document
//! Collections and Graphs* (PODS 2015).
//!
//! * [`static_rel::StaticRelation`] — the Barbay-et-al. `S`+`N` encoding:
//!   `nH0(S)` bits, all queries via rank/select.
//! * [`deletion_only::DeletionOnlyRelation`] — lazy pair deletion via the
//!   Lemma 3 reporter `D` and per-label bitmaps `D_a`.
//! * [`dynamic_rel::DynamicRelation`] — Theorem 2: fully dynamic pairs,
//!   objects, and labels, with the global `SN`/`NS` slot tables.
//! * [`graph::DynamicGraph`] — Theorem 3: a directed graph as a relation
//!   between nodes (adjacency / neighbors / reverse neighbors / counts).
//! * [`naive::NaiveRelation`] — ground truth for tests.

pub mod deletion_only;
pub mod dynamic_rel;
pub mod graph;
pub mod naive;
pub mod static_rel;

pub use deletion_only::DeletionOnlyRelation;
pub use dynamic_rel::DynamicRelation;
pub use graph::DynamicGraph;
pub use naive::NaiveRelation;
pub use static_rel::{Pair, StaticRelation};
