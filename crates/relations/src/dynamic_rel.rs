//! Fully-dynamic compressed binary relation (§5, Theorem 2).
//!
//! Pairs are split across an uncompressed `C0` (adjacency lists, O(log n)
//! bits/pair — affordable because `C0` holds ≤ 2n/log²n pairs) and
//! deletion-only static subsets `C1..Cr` with geometrically growing
//! capacities, exactly as the document transformations do. Because objects
//! and labels come and go, *global tables* `SN`/`NS` map external ids to
//! reusable internal slots; a slot freed and reassigned can still appear in
//! an old static subset, but only with pairs already marked deleted, so
//! stale queries correctly report nothing (the paper's argument verbatim).
//!
//! Updates are O(log^ε n)-class: an insertion touches `C0` and
//! occasionally cascades into a rebuild, deletions are lazy with `1/τ`
//! purges. Reporting costs O(small) per datum; counting O(log n) per
//! subset (Theorem 1 machinery inside [`DeletionOnlyRelation`]).

use crate::deletion_only::DeletionOnlyRelation;
use crate::static_rel::Pair;
use dyndex_core::config::{CapacitySchedule, DynOptions};
use dyndex_succinct::SpaceUsage;
use std::collections::{BTreeSet, HashMap};

/// Bidirectional external-id ↔ internal-slot table (the paper's `SN`/`NS`).
#[derive(Clone, Debug, Default)]
struct SlotTable {
    sn: HashMap<u64, u32>,
    ns: Vec<Option<u64>>,
    free: Vec<u32>,
    /// Alive pair count per slot; a slot is freed when it reaches zero.
    degree: Vec<usize>,
}

impl SlotTable {
    fn get(&self, ext: u64) -> Option<u32> {
        self.sn.get(&ext).copied()
    }

    fn get_or_alloc(&mut self, ext: u64) -> u32 {
        if let Some(&s) = self.sn.get(&ext) {
            return s;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.ns[s as usize] = Some(ext);
                self.degree[s as usize] = 0;
                s
            }
            None => {
                self.ns.push(Some(ext));
                self.degree.push(0);
                (self.ns.len() - 1) as u32
            }
        };
        self.sn.insert(ext, slot);
        slot
    }

    fn external(&self, slot: u32) -> u64 {
        self.ns[slot as usize].expect("live slot")
    }

    fn add_degree(&mut self, slot: u32, delta: isize) {
        let d = &mut self.degree[slot as usize];
        *d = d.checked_add_signed(delta).expect("degree underflow");
        if *d == 0 {
            // Empty object/label: release the slot (paper's free-slot list).
            let ext = self.ns[slot as usize].take().expect("live slot");
            self.sn.remove(&ext);
            self.free.push(slot);
        }
    }

    fn capacity(&self) -> u32 {
        self.ns.len() as u32
    }

    fn live(&self) -> usize {
        self.sn.len()
    }
}

/// A dynamic binary relation over external `u64` object/label ids.
#[derive(Clone, Debug)]
pub struct DynamicRelation {
    objects: SlotTable,
    labels: SlotTable,
    /// `C0`: uncompressed pairs, both directions.
    c0_by_obj: HashMap<u32, BTreeSet<u32>>,
    c0_by_lab: HashMap<u32, BTreeSet<u32>>,
    c0_pairs: usize,
    /// Static subsets `C1..Cr` (index 0 unused).
    subs: Vec<Option<DeletionOnlyRelation>>,
    schedule: CapacitySchedule,
    options: DynOptions,
    /// Alive pairs.
    n: usize,
    rebuilds: u64,
    global_rebuilds: u64,
}

impl DynamicRelation {
    /// Creates an empty relation.
    pub fn new(options: DynOptions) -> Self {
        let schedule = CapacitySchedule::new(0, &options);
        let subs = (0..schedule.caps.len()).map(|_| None).collect();
        DynamicRelation {
            objects: SlotTable::default(),
            labels: SlotTable::default(),
            c0_by_obj: HashMap::new(),
            c0_by_lab: HashMap::new(),
            c0_pairs: 0,
            subs,
            schedule,
            options,
            n: 0,
            rebuilds: 0,
            global_rebuilds: 0,
        }
    }

    /// Alive pairs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Live (non-empty) objects.
    pub fn num_objects(&self) -> usize {
        self.objects.live()
    }

    /// Live (non-empty) labels.
    pub fn num_labels(&self) -> usize {
        self.labels.live()
    }

    /// Level rebuild count (instrumentation).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Global rebuild count (instrumentation).
    pub fn global_rebuilds(&self) -> u64 {
        self.global_rebuilds
    }

    fn sub_size(&self, i: usize) -> usize {
        if i == 0 {
            self.c0_pairs
        } else {
            self.subs[i].as_ref().map_or(0, |s| s.len())
        }
    }

    /// Whether `(obj, label)` (internal slots) is alive anywhere.
    fn related_slots(&self, o: u32, l: u32) -> bool {
        if self.c0_by_obj.get(&o).is_some_and(|s| s.contains(&l)) {
            return true;
        }
        self.subs.iter().flatten().any(|sub| sub.related(o, l))
    }

    /// Inserts `(object, label)`. Returns false if already related.
    pub fn insert(&mut self, object: u64, label: u64) -> bool {
        if self.related(object, label) {
            return false;
        }
        let o = self.objects.get_or_alloc(object);
        let l = self.labels.get_or_alloc(label);
        self.c0_by_obj.entry(o).or_default().insert(l);
        self.c0_by_lab.entry(l).or_default().insert(o);
        self.c0_pairs += 1;
        self.objects.add_degree(o, 1);
        self.labels.add_degree(l, 1);
        self.n += 1;
        if self.n > 2 * self.schedule.nf.max(self.options.min_capacity) {
            self.global_rebuild();
        } else if self.c0_pairs > self.schedule.cap(0) {
            self.cascade();
        }
        true
    }

    /// Finds the smallest level that absorbs `C0..Cj` and rebuilds it.
    fn cascade(&mut self) {
        let mut prefix = 0usize;
        let mut target: Option<usize> = None;
        for j in 0..self.subs.len() {
            prefix += self.sub_size(j);
            if prefix <= self.schedule.cap(j) && j > 0 {
                target = Some(j);
                break;
            }
        }
        match target {
            Some(j) => {
                let mut pairs = self.drain_c0();
                for sub in self.subs[1..=j].iter_mut() {
                    if let Some(s) = sub.take() {
                        pairs.extend(s.export_alive_pairs());
                    }
                }
                self.subs[j] = Some(DeletionOnlyRelation::new(
                    &pairs,
                    self.objects.capacity(),
                    self.labels.capacity(),
                ));
                self.rebuilds += 1;
            }
            None => self.global_rebuild(),
        }
    }

    fn drain_c0(&mut self) -> Vec<Pair> {
        let mut pairs = Vec::with_capacity(self.c0_pairs);
        for (&o, labels) in &self.c0_by_obj {
            for &l in labels {
                pairs.push((o, l));
            }
        }
        self.c0_by_obj.clear();
        self.c0_by_lab.clear();
        self.c0_pairs = 0;
        pairs
    }

    fn global_rebuild(&mut self) {
        let mut pairs = self.drain_c0();
        for sub in self.subs.iter_mut().skip(1) {
            if let Some(s) = sub.take() {
                pairs.extend(s.export_alive_pairs());
            }
        }
        self.schedule = CapacitySchedule::new(self.n, &self.options);
        self.subs = (0..self.schedule.caps.len()).map(|_| None).collect();
        let r = self.subs.len() - 1;
        if !pairs.is_empty() {
            self.subs[r] = Some(DeletionOnlyRelation::new(
                &pairs,
                self.objects.capacity(),
                self.labels.capacity(),
            ));
        }
        self.global_rebuilds += 1;
    }

    /// Deletes `(object, label)`. Returns false if not related.
    pub fn delete(&mut self, object: u64, label: u64) -> bool {
        let (Some(o), Some(l)) = (self.objects.get(object), self.labels.get(label)) else {
            return false;
        };
        let mut deleted = false;
        if let Some(set) = self.c0_by_obj.get_mut(&o) {
            if set.remove(&l) {
                if set.is_empty() {
                    self.c0_by_obj.remove(&o);
                }
                let back = self.c0_by_lab.get_mut(&l).expect("mirror map");
                back.remove(&o);
                if back.is_empty() {
                    self.c0_by_lab.remove(&l);
                }
                self.c0_pairs -= 1;
                deleted = true;
            }
        }
        if !deleted {
            for i in 1..self.subs.len() {
                let Some(sub) = self.subs[i].as_mut() else {
                    continue;
                };
                if !sub.delete(o, l) {
                    continue;
                }
                deleted = true;
                if sub.needs_purge(self.options.tau) {
                    self.purge_sub(i);
                }
                break;
            }
        }
        if !deleted {
            return false;
        }
        self.objects.add_degree(o, -1);
        self.labels.add_degree(l, -1);
        self.n -= 1;
        if self.n * 2 < self.schedule.nf && self.schedule.nf > self.options.min_capacity {
            self.global_rebuild();
        }
        true
    }

    fn purge_sub(&mut self, i: usize) {
        let Some(sub) = self.subs[i].take() else {
            return;
        };
        let pairs = sub.export_alive_pairs();
        if pairs.is_empty() {
            return;
        }
        self.subs[i] = Some(DeletionOnlyRelation::new(
            &pairs,
            self.objects.capacity(),
            self.labels.capacity(),
        ));
        self.rebuilds += 1;
    }

    /// Whether `object` and `label` are related. O(log log σl)-class per
    /// subset (Theorem 2's existential query).
    pub fn related(&self, object: u64, label: u64) -> bool {
        match (self.objects.get(object), self.labels.get(label)) {
            (Some(o), Some(l)) => self.related_slots(o, l),
            _ => false,
        }
    }

    /// All labels related to `object`.
    pub fn labels_of(&self, object: u64) -> Vec<u64> {
        let Some(o) = self.objects.get(object) else {
            return Vec::new();
        };
        let mut out: Vec<u64> = Vec::new();
        if let Some(set) = self.c0_by_obj.get(&o) {
            out.extend(set.iter().map(|&l| self.labels.external(l)));
        }
        for sub in self.subs.iter().flatten() {
            out.extend(
                sub.labels_of(o)
                    .into_iter()
                    .map(|l| self.labels.external(l)),
            );
        }
        out.sort_unstable();
        out
    }

    /// All objects related to `label`.
    pub fn objects_of(&self, label: u64) -> Vec<u64> {
        let Some(l) = self.labels.get(label) else {
            return Vec::new();
        };
        let mut out: Vec<u64> = Vec::new();
        if let Some(set) = self.c0_by_lab.get(&l) {
            out.extend(set.iter().map(|&o| self.objects.external(o)));
        }
        for sub in self.subs.iter().flatten() {
            out.extend(
                sub.objects_of(l)
                    .into_iter()
                    .map(|o| self.objects.external(o)),
            );
        }
        out.sort_unstable();
        out
    }

    /// Counts labels related to `object` — O(log n) per subset (Theorem 2).
    pub fn count_labels(&self, object: u64) -> usize {
        let Some(o) = self.objects.get(object) else {
            return 0;
        };
        let c0 = self.c0_by_obj.get(&o).map_or(0, |s| s.len());
        c0 + self
            .subs
            .iter()
            .flatten()
            .map(|sub| sub.count_labels(o))
            .sum::<usize>()
    }

    /// Counts objects related to `label`.
    pub fn count_objects(&self, label: u64) -> usize {
        let Some(l) = self.labels.get(label) else {
            return 0;
        };
        let c0 = self.c0_by_lab.get(&l).map_or(0, |s| s.len());
        c0 + self
            .subs
            .iter()
            .flatten()
            .map(|sub| sub.count_objects(l))
            .sum::<usize>()
    }

    /// Validates internal invariants (tests / harnesses).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert!(self.c0_pairs <= self.schedule.cap(0).max(1), "C0 overfull");
        let mut total = self.c0_pairs;
        for (i, sub) in self.subs.iter().enumerate().skip(1) {
            if let Some(s) = sub {
                assert!(
                    s.len() <= self.schedule.cap(i),
                    "subset {i} over capacity: {} > {}",
                    s.len(),
                    self.schedule.cap(i)
                );
                total += s.len();
            }
        }
        assert_eq!(total, self.n, "pair accounting out of sync");
        // degrees must sum to n on both sides
        let od: usize = self.objects.degree.iter().sum();
        let ld: usize = self.labels.degree.iter().sum();
        assert_eq!(od, self.n, "object degrees out of sync");
        assert_eq!(ld, self.n, "label degrees out of sync");
    }
}

impl SpaceUsage for DynamicRelation {
    fn heap_bytes(&self) -> usize {
        let c0 = (self.c0_by_obj.len() + self.c0_by_lab.len()) * 48 + self.c0_pairs * 2 * 8;
        let subs: usize = self.subs.iter().flatten().map(|s| s.heap_bytes()).sum();
        let tables = (self.objects.ns.len() + self.labels.ns.len()) * 24
            + (self.objects.sn.len() + self.labels.sn.len()) * 24;
        c0 + subs + tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveRelation;

    fn opts() -> DynOptions {
        DynOptions {
            min_capacity: 16,
            tau: 4,
            ..DynOptions::default()
        }
    }

    fn assert_matches(dynr: &DynamicRelation, naive: &NaiveRelation, probe: &[u64]) {
        for &x in probe {
            assert_eq!(dynr.labels_of(x), naive.labels_of(x), "labels_of({x})");
            assert_eq!(dynr.objects_of(x), naive.objects_of(x), "objects_of({x})");
            assert_eq!(
                dynr.count_labels(x),
                naive.count_labels(x),
                "count_labels({x})"
            );
            assert_eq!(
                dynr.count_objects(x),
                naive.count_objects(x),
                "count_objects({x})"
            );
            for &y in probe {
                assert_eq!(dynr.related(x, y), naive.related(x, y), "related({x},{y})");
            }
        }
    }

    #[test]
    fn small_insert_delete() {
        let mut r = DynamicRelation::new(opts());
        let mut naive = NaiveRelation::new();
        assert!(r.insert(10, 100));
        naive.insert(10, 100);
        assert!(!r.insert(10, 100), "duplicate insert rejected");
        assert!(r.insert(10, 101));
        naive.insert(10, 101);
        assert!(r.insert(11, 100));
        naive.insert(11, 100);
        assert_matches(&r, &naive, &[10, 11, 100, 101, 999]);
        assert!(r.delete(10, 100));
        naive.delete(10, 100);
        assert!(!r.delete(10, 100), "double delete rejected");
        assert_matches(&r, &naive, &[10, 11, 100, 101]);
        r.check_invariants();
    }

    #[test]
    fn cascades_and_purges_match_naive() {
        let mut r = DynamicRelation::new(opts());
        let mut naive = NaiveRelation::new();
        let mut state = 0x5DEECE66Du64;
        let mut live: Vec<(u64, u64)> = Vec::new();
        for step in 0..600 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = state >> 33;
            if !x.is_multiple_of(3) || live.is_empty() {
                let o = 1 + x % 40;
                let l = 1000 + (x / 64) % 30;
                if r.insert(o, l) {
                    naive.insert(o, l);
                    live.push((o, l));
                }
            } else {
                let idx = (x as usize / 3) % live.len();
                let (o, l) = live.swap_remove(idx);
                assert_eq!(r.delete(o, l), naive.delete(o, l), "step {step}");
            }
            if step % 53 == 0 {
                r.check_invariants();
                assert_matches(&r, &naive, &[1, 2, 17, 39, 1000, 1015, 1029]);
            }
        }
        r.check_invariants();
        assert!(
            r.rebuilds() + r.global_rebuilds() > 0,
            "cascades must happen"
        );
        assert_matches(&r, &naive, &[1, 5, 20, 1001, 1010]);
    }

    #[test]
    fn slot_reuse_after_emptying() {
        let mut r = DynamicRelation::new(opts());
        // Fill enough to push pairs into static subsets.
        for i in 0..30u64 {
            r.insert(i, 500 + i);
        }
        // Empty object 3 entirely; slot should be freed and reusable.
        assert!(r.delete(3, 503));
        assert_eq!(r.count_labels(3), 0);
        assert!(!r.related(3, 503));
        // New object reuses slots; old (stale) subset entries must not leak.
        for i in 100..130u64 {
            r.insert(i, 600);
        }
        assert_eq!(r.count_labels(3), 0);
        assert!(!r.related(3, 503));
        assert_eq!(r.count_objects(600), 30);
        r.check_invariants();
    }

    #[test]
    fn empty_relation_queries() {
        let r = DynamicRelation::new(opts());
        assert!(r.is_empty());
        assert!(!r.related(1, 2));
        assert!(r.labels_of(1).is_empty());
        assert_eq!(r.count_objects(5), 0);
    }
}
