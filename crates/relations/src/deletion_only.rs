//! Deletion-only binary relation (§5, "Deletion-Only Data Structure").
//!
//! A [`StaticRelation`] plus:
//! * `D` — alive bits per position of `S` (a Lemma 3 [`OneBitReporter`]
//!   plus a [`FlipRank`] for counting, standing in for \[20\]);
//! * `D_a` — per-label alive bits over label `a`'s occurrences in `S`,
//!   so objects related to `a` are reported without touching dead pairs.

use crate::static_rel::{Pair, StaticRelation};
use dyndex_succinct::{FlipRank, OneBitReporter, SpaceUsage};

/// A static relation with lazy pair deletion.
#[derive(Clone, Debug)]
pub struct DeletionOnlyRelation {
    rel: StaticRelation,
    /// Alive bits per position of `S`.
    d: OneBitReporter,
    /// Rank over `D` (counting).
    d_rank: FlipRank,
    /// Per-label alive bits (`d_a[label]` has one bit per occurrence).
    d_a: Vec<LabelBits>,
    dead_pairs: usize,
}

/// Per-label alive bits. The Zipf-shaped workloads the paper targets have
/// mostly low-degree labels, so degrees ≤ 64 live in one machine word;
/// only heavy labels pay for full reporter/rank structures.
#[derive(Clone, Debug)]
enum LabelBits {
    Small {
        mask: u64,
    },
    /// Boxed so the enum stays 16 bytes: `d_a` has one entry per label in
    /// the universe, and almost all of them are `Small`.
    Big(Box<BigLabelBits>),
}

#[derive(Clone, Debug)]
struct BigLabelBits {
    alive: OneBitReporter,
    rank: FlipRank,
}

impl LabelBits {
    fn new(k: usize) -> Self {
        if k <= 64 {
            LabelBits::Small {
                mask: dyndex_succinct::bits::low_mask(k),
            }
        } else {
            LabelBits::Big(Box::new(BigLabelBits {
                alive: OneBitReporter::new_all_ones(k),
                rank: FlipRank::new(k, true),
            }))
        }
    }

    fn zero(&mut self, occ: usize) {
        match self {
            LabelBits::Small { mask, .. } => *mask &= !(1u64 << occ),
            LabelBits::Big(b) => {
                b.alive.zero(occ);
                b.rank.set(occ, false);
            }
        }
    }

    fn count(&self) -> usize {
        match self {
            LabelBits::Small { mask, .. } => mask.count_ones() as usize,
            LabelBits::Big(b) => b.rank.count_ones(),
        }
    }

    fn alive_occurrences(&self) -> Vec<usize> {
        match self {
            LabelBits::Small { mask, .. } => {
                let mut m = *mask;
                let mut out = Vec::with_capacity(m.count_ones() as usize);
                while m != 0 {
                    out.push(m.trailing_zeros() as usize);
                    m &= m - 1;
                }
                out
            }
            LabelBits::Big(b) => {
                if b.alive.is_empty() {
                    Vec::new()
                } else {
                    b.alive.report_vec(0, b.alive.len() - 1)
                }
            }
        }
    }
}

impl DeletionOnlyRelation {
    /// Builds from pairs.
    pub fn new(pairs: &[Pair], num_objects: u32, num_labels: u32) -> Self {
        let rel = StaticRelation::new(pairs, num_objects, num_labels);
        let n = rel.len();
        let d_a = (0..num_labels)
            .map(|l| LabelBits::new(rel.count_objects(l)))
            .collect();
        DeletionOnlyRelation {
            rel,
            d: OneBitReporter::new_all_ones(n),
            d_rank: FlipRank::new(n, true),
            d_a,
            dead_pairs: 0,
        }
    }

    /// The underlying static relation.
    pub fn inner(&self) -> &StaticRelation {
        &self.rel
    }

    /// Alive pairs.
    pub fn len(&self) -> usize {
        self.rel.len() - self.dead_pairs
    }

    /// Whether no pairs are alive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pairs marked deleted but still physically present.
    pub fn dead_pairs(&self) -> usize {
        self.dead_pairs
    }

    /// §2-style purge trigger: a `1/τ` fraction is dead.
    pub fn needs_purge(&self, tau: usize) -> bool {
        self.dead_pairs * tau >= self.rel.len().max(1)
    }

    /// Lazily deletes `(obj, label)`. Returns false if not (alive) here.
    pub fn delete(&mut self, obj: u32, label: u32) -> bool {
        let Some(pos) = self.rel.find_pair(obj, label) else {
            return false;
        };
        if !self.d.get(pos) {
            return false; // already deleted
        }
        self.d.zero(pos);
        self.d_rank.set(pos, false);
        let occ = self
            .rel
            .label_occurrence_rank(obj, label)
            .expect("pair exists");
        self.d_a[label as usize].zero(occ);
        self.dead_pairs += 1;
        true
    }

    /// Whether `(obj, label)` is alive.
    pub fn related(&self, obj: u32, label: u32) -> bool {
        match self.rel.find_pair(obj, label) {
            Some(pos) => self.d.get(pos),
            None => false,
        }
    }

    /// Alive labels related to `obj`. O(1) per reported label.
    pub fn labels_of(&self, obj: u32) -> Vec<u32> {
        if obj >= self.rel.num_objects() {
            return Vec::new();
        }
        let (l, r) = self.rel.object_range(obj);
        if l == r {
            return Vec::new();
        }
        self.d
            .report(l, r - 1)
            .map(|pos| self.rel.label_at(pos))
            .collect()
    }

    /// Alive objects related to `label`. O(1) per reported object plus a
    /// select on `S` each.
    pub fn objects_of(&self, label: u32) -> Vec<u32> {
        if label >= self.rel.num_labels() {
            return Vec::new();
        }
        self.d_a[label as usize]
            .alive_occurrences()
            .into_iter()
            .map(|occ| {
                let pos = self
                    .rel
                    .select_label(label, occ)
                    .expect("occurrence in range");
                self.rel.object_of_pos(pos)
            })
            .collect()
    }

    /// Counts alive labels of `obj` — O(log n).
    pub fn count_labels(&self, obj: u32) -> usize {
        if obj >= self.rel.num_objects() {
            return 0;
        }
        let (l, r) = self.rel.object_range(obj);
        self.d_rank.count_ones_range(l, r)
    }

    /// Counts alive objects of `label` — O(log n).
    pub fn count_objects(&self, label: u32) -> usize {
        if label >= self.rel.num_labels() {
            return 0;
        }
        self.d_a[label as usize].count()
    }

    /// Exports all alive pairs (purge/merge input).
    pub fn export_alive_pairs(&self) -> Vec<Pair> {
        let n = self.rel.len();
        if n == 0 {
            return Vec::new();
        }
        self.d
            .report(0, n - 1)
            .map(|pos| (self.rel.object_of_pos(pos), self.rel.label_at(pos)))
            .collect()
    }
}

impl SpaceUsage for DeletionOnlyRelation {
    fn heap_bytes(&self) -> usize {
        self.rel.heap_bytes()
            + self.d.heap_bytes()
            + self.d_rank.heap_bytes()
            + self
                .d_a
                .iter()
                .map(|l| match l {
                    LabelBits::Small { .. } => 0,
                    LabelBits::Big(b) => {
                        std::mem::size_of::<BigLabelBits>()
                            + b.alive.heap_bytes()
                            + b.rank.heap_bytes()
                    }
                })
                .sum::<usize>()
            + self.d_a.capacity() * std::mem::size_of::<LabelBits>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeletionOnlyRelation {
        let pairs = [(0, 1), (0, 2), (1, 0), (3, 1), (3, 0), (3, 2)];
        DeletionOnlyRelation::new(&pairs, 4, 3)
    }

    #[test]
    fn delete_hides_pair_everywhere() {
        let mut r = sample();
        assert!(r.related(3, 1));
        assert!(r.delete(3, 1));
        assert!(!r.related(3, 1));
        assert!(!r.delete(3, 1), "double delete is a no-op");
        assert_eq!(r.labels_of(3), vec![0, 2]);
        assert_eq!(r.objects_of(1), vec![0]);
        assert_eq!(r.count_labels(3), 2);
        assert_eq!(r.count_objects(1), 1);
        assert_eq!(r.len(), 5);
        assert_eq!(r.dead_pairs(), 1);
    }

    #[test]
    fn delete_all_of_an_object() {
        let mut r = sample();
        for l in [1, 2] {
            assert!(r.delete(0, l));
        }
        assert_eq!(r.labels_of(0), Vec::<u32>::new());
        assert_eq!(r.count_labels(0), 0);
        assert_eq!(r.objects_of(1), vec![3]);
        assert_eq!(r.objects_of(2), vec![3]);
    }

    #[test]
    fn purge_trigger_and_export() {
        let mut r = sample();
        assert!(!r.needs_purge(6));
        r.delete(0, 1);
        assert!(r.needs_purge(6)); // 1*6 >= 6
        let alive = r.export_alive_pairs();
        assert_eq!(alive, vec![(0, 2), (1, 0), (3, 0), (3, 1), (3, 2)]);
    }

    #[test]
    fn missing_pairs() {
        let mut r = sample();
        assert!(!r.delete(2, 0), "object with no pairs");
        assert!(!r.delete(0, 0), "absent pair");
        assert!(!r.related(9, 9));
        assert_eq!(r.labels_of(9), Vec::<u32>::new());
        assert_eq!(r.objects_of(9), Vec::<u32>::new());
    }
}

#[cfg(test)]
mod big_label_tests {
    use super::*;

    #[test]
    fn heavy_label_uses_big_path() {
        // 100 objects all related to label 0 (degree > 64 => Big variant).
        let pairs: Vec<Pair> = (0..100).map(|o| (o, 0)).collect();
        let mut r = DeletionOnlyRelation::new(&pairs, 100, 2);
        assert_eq!(r.count_objects(0), 100);
        for o in (0..100).step_by(3) {
            assert!(r.delete(o, 0));
        }
        let want: Vec<u32> = (0..100).filter(|o| o % 3 != 0).collect();
        assert_eq!(r.objects_of(0), want);
        assert_eq!(r.count_objects(0), want.len());
        assert_eq!(r.export_alive_pairs().len(), want.len());
    }
}
