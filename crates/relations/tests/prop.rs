//! Property-based tests: relations and graphs vs set models, plus the
//! Lemma 1 (Dietz–Sleator) bound on the "zero the largest" schedule.

use dyndex_core::config::DynOptions;
use dyndex_relations::*;
use proptest::prelude::*;

fn opts() -> DynOptions {
    DynOptions {
        min_capacity: 16,
        tau: 4,
        ..DynOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn static_relation_matches_model(
        pairs in proptest::collection::vec((0u32..20, 0u32..15), 0..200),
    ) {
        let rel = StaticRelation::new(&pairs, 20, 15);
        let mut dedup: Vec<(u32, u32)> = pairs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(rel.len(), dedup.len());
        for o in 0..20u32 {
            let want: Vec<u32> = dedup.iter().filter(|&&(a, _)| a == o).map(|&(_, l)| l).collect();
            prop_assert_eq!(rel.labels_of(o), want.clone());
            prop_assert_eq!(rel.count_labels(o), want.len());
        }
        for l in 0..15u32 {
            let want: Vec<u32> = dedup.iter().filter(|&&(_, b)| b == l).map(|&(o, _)| o).collect();
            prop_assert_eq!(rel.objects_of(l), want.clone());
            prop_assert_eq!(rel.count_objects(l), want.len());
        }
    }

    #[test]
    fn deletion_only_relation_matches_model(
        pairs in proptest::collection::vec((0u32..15, 0u32..12), 1..150),
        deletions in proptest::collection::vec(any::<proptest::sample::Index>(), 0..60),
    ) {
        let mut rel = DeletionOnlyRelation::new(&pairs, 15, 12);
        let mut model: std::collections::BTreeSet<(u32, u32)> = pairs.iter().copied().collect();
        let universe: Vec<(u32, u32)> = model.iter().copied().collect();
        for d in &deletions {
            let (o, l) = universe[d.index(universe.len())];
            prop_assert_eq!(rel.delete(o, l), model.remove(&(o, l)));
        }
        for o in 0..15u32 {
            let want: Vec<u32> = model.iter().filter(|&&(a, _)| a == o).map(|&(_, l)| l).collect();
            prop_assert_eq!(rel.labels_of(o), want.clone());
            prop_assert_eq!(rel.count_labels(o), want.len());
        }
        for l in 0..12u32 {
            let want: Vec<u32> = model.iter().filter(|&&(_, b)| b == l).map(|&(o, _)| o).collect();
            prop_assert_eq!(rel.objects_of(l), want);
        }
        let mut alive = rel.export_alive_pairs();
        alive.sort_unstable();
        prop_assert_eq!(alive, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_relation_matches_model(
        ops in proptest::collection::vec((any::<bool>(), 0u64..25, 0u64..20), 0..400),
    ) {
        let mut dynr = DynamicRelation::new(opts());
        let mut naive = NaiveRelation::new();
        for &(insert, o, l) in &ops {
            if insert {
                prop_assert_eq!(dynr.insert(o, 100 + l), naive.insert(o, 100 + l));
            } else {
                prop_assert_eq!(dynr.delete(o, 100 + l), naive.delete(o, 100 + l));
            }
        }
        dynr.check_invariants();
        prop_assert_eq!(dynr.len(), naive.len());
        for o in 0..25u64 {
            prop_assert_eq!(dynr.labels_of(o), naive.labels_of(o));
            prop_assert_eq!(dynr.count_labels(o), naive.count_labels(o));
        }
        for l in 100..120u64 {
            prop_assert_eq!(dynr.objects_of(l), naive.objects_of(l));
            prop_assert_eq!(dynr.count_objects(l), naive.count_objects(l));
        }
    }

    #[test]
    fn graph_matches_model(
        ops in proptest::collection::vec((0u8..3, 0u64..15, 0u64..15), 0..300),
    ) {
        let mut g = DynamicGraph::new(opts());
        let mut model: std::collections::BTreeSet<(u64, u64)> = Default::default();
        for &(op, u, v) in &ops {
            match op {
                0 | 1 => {
                    prop_assert_eq!(g.add_edge(u, v), model.insert((u, v)));
                }
                _ => {
                    prop_assert_eq!(g.remove_edge(u, v), model.remove(&(u, v)));
                }
            }
        }
        g.check_invariants();
        prop_assert_eq!(g.num_edges(), model.len());
        for node in 0..15u64 {
            let out: Vec<u64> = model.iter().filter(|&&(a, _)| a == node).map(|&(_, b)| b).collect();
            prop_assert_eq!(g.out_neighbors(node), out);
            let inn: Vec<u64> = model.iter().filter(|&&(_, b)| b == node).map(|&(a, _)| a).collect();
            prop_assert_eq!(g.in_neighbors(node), inn);
        }
    }

    /// Lemma 1 (Dietz–Sleator): iterating (i) add non-negative reals
    /// summing to 1, (ii) zero the largest, keeps every x_i <= 1 + H_{g-1}.
    /// Our top-collection purge scheduler relies on exactly this bound.
    #[test]
    fn dietz_sleator_bound_holds(
        g in 2usize..12,
        rounds in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 1..12), 1..60),
    ) {
        let mut xs = vec![0.0f64; g];
        let h: f64 = (1..g).map(|i| 1.0 / i as f64).sum();
        for weights in &rounds {
            let total: f64 = weights.iter().sum();
            if total <= 0.0 { continue; }
            // Normalize so each round adds exactly 1 across the xs.
            for (i, w) in weights.iter().enumerate() {
                xs[i % g] += w / total;
            }
            // Zero the largest.
            let (argmax, _) = xs.iter().enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .expect("non-empty");
            xs[argmax] = 0.0;
            for &x in &xs {
                prop_assert!(x <= 1.0 + h + 1e-9, "x = {x} exceeds 1 + H_(g-1) = {}", 1.0 + h);
            }
        }
    }
}
