//! # dyndex-baseline
//!
//! Prior-art baselines for the benchmark harness:
//!
//! * [`dyn_fm::DynFmBaseline`] — the dynamic-rank/select approach every
//!   previous compressed dynamic index was built on (Mäkinen–Navarro,
//!   Navarro–Nekrich): a multi-string BWT over a dynamic wavelet tree.
//!   Table 2's "before" column.
//! * [`rebuild_all::RebuildAllIndex`] — rebuild-from-scratch: static-index
//!   query speed, pathological update cost. The benchmark's envelopes.

pub mod dyn_fm;
pub mod rebuild_all;

pub use dyn_fm::DynFmBaseline;
pub use rebuild_all::RebuildAllIndex;
