//! The prior-art baseline: a dynamic FM-index over a **dynamic** wavelet
//! tree (the Mäkinen–Navarro \[30, 31\] / Navarro–Nekrich \[35\] family).
//!
//! This is the approach the paper's Table 2 row "\[35\]" represents: the
//! multi-string BWT of the collection is maintained under document
//! insertions/deletions, with *every* backward-search step paying a
//! dynamic-rank query — the Fredman–Saks Ω(log n / log log n) bottleneck
//! the paper circumvents. Benchmarks measure exactly this gap: our
//! transformations' query cost stays near the static index's, while this
//! baseline's per-symbol cost grows with n.
//!
//! Implementation notes: each document is stored `bytes · $`; the
//! multi-string BWT rows are all suffixes of all documents, `$`-suffix
//! rows ordered consistently with the `$` symbols' positions in the BWT
//! (so `LF` is uniform). Inserting a document walks its symbols
//! right-to-left, inserting one BWT symbol per step at the LF-computed
//! position; deleting collects the document's suffix rows by an LF walk
//! and removes them in decreasing position order.

use dyndex_succinct::{DynWavelet, SpaceUsage};
use dyndex_text::collection::{encode_pattern, SIGMA};

/// The `$` terminator symbol in the baseline's BWT alphabet.
const DOLLAR: u32 = 1;

/// A dynamic FM-index for a document collection (count queries + updates).
///
/// `locate`/`extract` are intentionally unsupported: the prior-art
/// structures need substantial extra machinery for dynamic SA sampling
/// (\[35\] §4); the benchmarks compare `count`/range-finding and update
/// costs, which is where the paper's improvement lies.
#[derive(Clone, Debug)]
pub struct DynFmBaseline {
    /// The multi-string BWT.
    bwt: DynWavelet,
    /// Document ids ordered by their `$`-row index; parallel byte lengths.
    doc_order: Vec<(u64, usize)>,
    /// Documents with zero bytes (no BWT presence).
    empty_docs: Vec<u64>,
    symbols: usize,
}

impl Default for DynFmBaseline {
    fn default() -> Self {
        Self::new()
    }
}

impl DynFmBaseline {
    /// Creates an empty index.
    pub fn new() -> Self {
        DynFmBaseline {
            bwt: DynWavelet::new(SIGMA),
            doc_order: Vec::new(),
            empty_docs: Vec::new(),
            symbols: 0,
        }
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.doc_order.len() + self.empty_docs.len()
    }

    /// Total document bytes.
    pub fn symbol_count(&self) -> usize {
        self.symbols
    }

    /// Whether a document is present.
    pub fn contains(&self, doc_id: u64) -> bool {
        self.doc_order.iter().any(|&(id, _)| id == doc_id) || self.empty_docs.contains(&doc_id)
    }

    /// Count of all symbols `< c` in the BWT (`C[c]`, including `$`s).
    #[inline]
    fn cnt_lt(&self, c: u32) -> usize {
        self.bwt.rank_lt(c, self.bwt.len())
    }

    /// Inserts a document. O(|T|) dynamic-wavelet insertions, each costing
    /// O(log σ · log n) — the baseline's `O(|T| log n)`-class update.
    ///
    /// # Panics
    /// Panics if the id is already present.
    pub fn insert(&mut self, doc_id: u64, bytes: &[u8]) {
        assert!(!self.contains(doc_id), "document {doc_id} already present");
        self.symbols += bytes.len();
        if bytes.is_empty() {
            self.empty_docs.push(doc_id);
            return;
        }
        let m = bytes.len();
        let rho = self.doc_order.len();
        // The new document's $-row goes at the end of the $ block: ties
        // among $-suffixes are broken by insertion recency. This order is
        // consistent because LF is never applied *to* a $ symbol (patterns
        // contain no $, and walks stop at their document's $), so only the
        // block's internal order is affected — and it is used consistently
        // by every rank below.
        let last = bytes[m - 1] as u32 + 2;
        self.bwt.insert(rho, last);
        // p = rows smaller than suffix "t_{m-1}$": all $-rows (ρ old + the
        // new pending one), byte rows < c, same-symbol rows before us.
        let mut p = self.cnt_lt(last) + 1 + self.bwt.rank(last, rho);
        // Steps 2..m: remaining symbols right-to-left.
        for k in (0..m - 1).rev() {
            let c = bytes[k] as u32 + 2;
            self.bwt.insert(p, c);
            p = self.cnt_lt(c) + 1 + self.bwt.rank(c, p);
        }
        // Final $, at the full-document suffix's row.
        self.bwt.insert(p, DOLLAR);
        self.doc_order.push((doc_id, m));
    }

    /// Deletes a document, returning its byte length, or `None`.
    pub fn delete(&mut self, doc_id: u64) -> Option<usize> {
        if let Some(i) = self.empty_docs.iter().position(|&id| id == doc_id) {
            self.empty_docs.swap_remove(i);
            return Some(0);
        }
        let block = self.doc_order.iter().position(|&(id, _)| id == doc_id)?;
        let (_, m) = self.doc_order.remove(block);
        self.symbols -= m;
        // Collect the document's suffix rows by LF-walking from its $-row.
        let mut rows = Vec::with_capacity(m + 1);
        let mut row = block;
        rows.push(row);
        loop {
            let sym = self.bwt.access(row);
            if sym == DOLLAR {
                break;
            }
            row = self.cnt_lt(sym) + self.bwt.rank(sym, row);
            rows.push(row);
        }
        debug_assert_eq!(rows.len(), m + 1, "walk must cover every suffix");
        // Remove in decreasing position order so shifts never interfere.
        rows.sort_unstable_by(|a, b| b.cmp(a));
        for r in rows {
            self.bwt.remove(r);
        }
        Some(m)
    }

    /// Backward search over the dynamic BWT. Every step pays two dynamic
    /// rank queries — the baseline's `O(|P| log n)`-class range-finding.
    pub fn find_range(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        let encoded = encode_pattern(pattern);
        let mut l = 0usize;
        let mut r = self.bwt.len();
        for &c in encoded.iter().rev() {
            let base = self.cnt_lt(c);
            l = base + self.bwt.rank(c, l);
            r = base + self.bwt.rank(c, r);
            if l >= r {
                return None;
            }
        }
        Some((l, r))
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        if pattern.is_empty() {
            return 0;
        }
        self.find_range(pattern).map_or(0, |(l, r)| r - l)
    }

    /// Reconstructs a document's bytes from the BWT (diagnostics/tests);
    /// O(|T|) dynamic ranks.
    pub fn doc_bytes(&self, doc_id: u64) -> Option<Vec<u8>> {
        if self.empty_docs.contains(&doc_id) {
            return Some(Vec::new());
        }
        let block = self.doc_order.iter().position(|&(id, _)| id == doc_id)?;
        let (_, m) = self.doc_order[block];
        let mut out = vec![0u8; m];
        let mut row = block;
        for k in (0..m).rev() {
            let sym = self.bwt.access(row);
            debug_assert_ne!(sym, DOLLAR);
            out[k] = (sym - 2) as u8;
            row = self.cnt_lt(sym) + self.bwt.rank(sym, row);
        }
        debug_assert_eq!(self.bwt.access(row), DOLLAR);
        Some(out)
    }
}

impl SpaceUsage for DynFmBaseline {
    fn heap_bytes(&self) -> usize {
        self.bwt.heap_bytes() + self.doc_order.heap_bytes() + self.empty_docs.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndex_core::NaiveIndex;

    fn assert_counts(idx: &DynFmBaseline, naive: &NaiveIndex, patterns: &[&[u8]]) {
        for &p in patterns {
            assert_eq!(
                idx.count(p),
                naive.count(p),
                "pattern {:?}",
                String::from_utf8_lossy(p)
            );
        }
    }

    #[test]
    fn insert_then_count() {
        let mut idx = DynFmBaseline::new();
        let mut naive = NaiveIndex::new();
        for (id, d) in [
            (1u64, b"banana".as_slice()),
            (2, b"bandana"),
            (3, b"ananas"),
            (4, b""),
        ] {
            idx.insert(id, d);
            naive.insert(id, d);
        }
        assert_counts(&idx, &naive, &[b"an", b"ana", b"ban", b"nd", b"a", b"zz"]);
        assert_eq!(idx.num_docs(), 4);
        assert_eq!(idx.symbol_count(), 6 + 7 + 6);
    }

    #[test]
    fn roundtrip_doc_bytes() {
        let mut idx = DynFmBaseline::new();
        idx.insert(7, b"reconstruct me");
        idx.insert(8, b"and me too");
        assert_eq!(
            idx.doc_bytes(7).as_deref(),
            Some(b"reconstruct me".as_slice())
        );
        assert_eq!(idx.doc_bytes(8).as_deref(), Some(b"and me too".as_slice()));
        assert_eq!(idx.doc_bytes(9), None);
    }

    #[test]
    fn delete_restores_counts() {
        let mut idx = DynFmBaseline::new();
        let mut naive = NaiveIndex::new();
        for (id, d) in [(1u64, b"abcabc".as_slice()), (2, b"bcabca"), (3, b"cabcab")] {
            idx.insert(id, d);
            naive.insert(id, d);
        }
        assert_eq!(idx.delete(2), Some(6));
        naive.delete(2);
        assert_counts(&idx, &naive, &[b"abc", b"bca", b"cab", b"c"]);
        assert_eq!(idx.delete(2), None);
        idx.delete(1);
        naive.delete(1);
        idx.delete(3);
        naive.delete(3);
        assert_eq!(idx.num_docs(), 0);
        assert_counts(&idx, &naive, &[b"a"]);
    }

    #[test]
    fn churn_matches_naive() {
        let mut idx = DynFmBaseline::new();
        let mut naive = NaiveIndex::new();
        let mut state = 0xFEEDFACE_CAFEBEEFu64;
        let mut live: Vec<u64> = Vec::new();
        for step in 0..250u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            if !r.is_multiple_of(3) || live.is_empty() {
                let id = step + 1;
                let len = (r % 20) as usize;
                let doc: Vec<u8> = (0..len)
                    .map(|k| b"abcd"[((r >> (k % 16)) % 4) as usize])
                    .collect();
                idx.insert(id, &doc);
                naive.insert(id, &doc);
                live.push(id);
            } else {
                let pick = (r as usize / 3) % live.len();
                let id = live.swap_remove(pick);
                let want = naive.delete(id).map(|b| b.len());
                assert_eq!(idx.delete(id), want, "step {step}");
            }
            if step % 23 == 0 {
                assert_counts(&idx, &naive, &[b"ab", b"ba", b"cd", b"abc", b"dd", b"a"]);
            }
        }
        assert_counts(&idx, &naive, &[b"ab", b"abcd", b"d"]);
        // Documents must survive reconstruction after heavy churn.
        for &id in &live {
            assert_eq!(
                idx.doc_bytes(id).as_deref(),
                naive.doc_bytes(id),
                "doc {id}"
            );
        }
    }

    #[test]
    fn single_char_docs() {
        let mut idx = DynFmBaseline::new();
        for i in 0..10u64 {
            idx.insert(i, &[b'a' + (i % 3) as u8]);
        }
        assert_eq!(idx.count(b"a"), 4);
        assert_eq!(idx.count(b"b"), 3);
        assert_eq!(idx.count(b"c"), 3);
        for i in 0..10u64 {
            assert_eq!(idx.delete(i), Some(1));
        }
        assert_eq!(idx.count(b"a"), 0);
    }
}
