//! The trivial baseline: rebuild the entire static index on every update.
//!
//! Queries are exactly as fast as the static index (the lower envelope of
//! every table's query column), but each update costs a full O(n·u(n))
//! reconstruction — the benchmark's upper envelope for update time. The
//! transformations must sit between the two.

use dyndex_core::{DeletionOnlyIndex, StaticIndex};
use dyndex_succinct::SpaceUsage;
use dyndex_text::Occurrence;

/// A dynamic index that rebuilds from scratch on every update.
#[derive(Debug)]
pub struct RebuildAllIndex<I: StaticIndex> {
    docs: Vec<(u64, Vec<u8>)>,
    index: Option<DeletionOnlyIndex<I>>,
    config: I::Config,
    counting: bool,
}

impl<I: StaticIndex> RebuildAllIndex<I> {
    /// Creates an empty index.
    pub fn new(config: I::Config, counting: bool) -> Self {
        RebuildAllIndex {
            docs: Vec::new(),
            index: None,
            config,
            counting,
        }
    }

    fn rebuild(&mut self) {
        if self.docs.is_empty() {
            self.index = None;
            return;
        }
        let refs: Vec<(u64, &[u8])> = self
            .docs
            .iter()
            .map(|(id, d)| (*id, d.as_slice()))
            .collect();
        self.index = Some(DeletionOnlyIndex::build(&refs, &self.config, self.counting));
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Total bytes.
    pub fn symbol_count(&self) -> usize {
        self.docs.iter().map(|(_, d)| d.len()).sum()
    }

    /// Appends a document *without* rebuilding (bulk-loading; call
    /// [`Self::rebuild_now`] afterwards).
    pub fn push_without_rebuild(&mut self, doc_id: u64, bytes: &[u8]) {
        assert!(
            !self.docs.iter().any(|&(id, _)| id == doc_id),
            "document {doc_id} already present"
        );
        self.docs.push((doc_id, bytes.to_vec()));
    }

    /// Rebuilds the index immediately.
    pub fn rebuild_now(&mut self) {
        self.rebuild();
    }

    /// Inserts a document (full rebuild).
    pub fn insert(&mut self, doc_id: u64, bytes: &[u8]) {
        assert!(
            !self.docs.iter().any(|&(id, _)| id == doc_id),
            "document {doc_id} already present"
        );
        self.docs.push((doc_id, bytes.to_vec()));
        self.rebuild();
    }

    /// Deletes a document (full rebuild).
    pub fn delete(&mut self, doc_id: u64) -> Option<Vec<u8>> {
        let i = self.docs.iter().position(|&(id, _)| id == doc_id)?;
        let (_, bytes) = self.docs.remove(i);
        self.rebuild();
        Some(bytes)
    }

    /// All occurrences of `pattern`.
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        self.index.as_ref().map_or(Vec::new(), |i| i.find(pattern))
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.index.as_ref().map_or(0, |i| i.count(pattern))
    }
}

impl<I: StaticIndex> SpaceUsage for RebuildAllIndex<I> {
    fn heap_bytes(&self) -> usize {
        self.docs.iter().map(|(_, d)| d.heap_bytes()).sum::<usize>()
            + self.index.as_ref().map_or(0, |i| i.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndex_core::FmConfig;
    use dyndex_succinct::HuffmanWavelet;
    use dyndex_text::FmIndex;

    #[test]
    fn behaves_like_an_index() {
        let mut idx: RebuildAllIndex<FmIndex<HuffmanWavelet>> =
            RebuildAllIndex::new(FmConfig { sample_rate: 4 }, true);
        idx.insert(1, b"hello world");
        idx.insert(2, b"world peace");
        assert_eq!(idx.count(b"world"), 2);
        assert_eq!(idx.count(b"peace"), 1);
        assert_eq!(idx.delete(1).as_deref(), Some(b"hello world".as_slice()));
        assert_eq!(idx.count(b"world"), 1);
        assert_eq!(idx.delete(1), None);
        idx.delete(2);
        assert_eq!(idx.count(b"world"), 0);
        assert_eq!(idx.num_docs(), 0);
    }
}
