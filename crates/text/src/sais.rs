//! SA-IS: linear-time suffix array construction (Nong, Zhang, Chan).
//!
//! Works over integer alphabets, which the document-collection encoding
//! needs (byte symbols are shifted by 2 and per-document separators /
//! the global terminator occupy values 1 / 0 — see
//! [`crate::collection`]). The input must end with a unique, smallest
//! sentinel (`0`).

/// Builds the suffix array of `text` (symbols `< sigma`).
///
/// Requirements: `text` is non-empty, ends with `0`, and `0` occurs only
/// there. Runs in O(n + σ).
///
/// # Panics
/// Panics if the sentinel requirement is violated.
pub fn suffix_array(text: &[u32], sigma: u32) -> Vec<u32> {
    assert!(!text.is_empty(), "SA-IS input must be non-empty");
    assert_eq!(
        *text.last().expect("non-empty"),
        0,
        "input must end with sentinel 0"
    );
    assert_eq!(
        text.iter().filter(|&&c| c == 0).count(),
        1,
        "sentinel 0 must be unique"
    );
    debug_assert!(text.iter().all(|&c| c < sigma));
    let mut sa = vec![0u32; text.len()];
    sais_impl(text, sigma as usize, &mut sa);
    sa
}

const EMPTY: u32 = u32::MAX;

/// True = S-type, false = L-type.
fn classify(text: &[u32]) -> Vec<bool> {
    let n = text.len();
    let mut t = vec![false; n];
    t[n - 1] = true; // sentinel is S-type
    for i in (0..n - 1).rev() {
        t[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && t[i + 1]);
    }
    t
}

#[inline]
fn is_lms(t: &[bool], i: usize) -> bool {
    i > 0 && t[i] && !t[i - 1]
}

/// Bucket start (head) positions per symbol.
fn bucket_heads(text: &[u32], sigma: usize) -> Vec<u32> {
    let mut counts = vec![0u32; sigma];
    for &c in text {
        counts[c as usize] += 1;
    }
    let mut heads = vec![0u32; sigma];
    let mut acc = 0u32;
    for (h, &c) in heads.iter_mut().zip(counts.iter()) {
        *h = acc;
        acc += c;
    }
    heads
}

/// Bucket end (one-past-tail) positions per symbol.
fn bucket_tails(text: &[u32], sigma: usize) -> Vec<u32> {
    let mut counts = vec![0u32; sigma];
    for &c in text {
        counts[c as usize] += 1;
    }
    let mut tails = vec![0u32; sigma];
    let mut acc = 0u32;
    for (t, &c) in tails.iter_mut().zip(counts.iter()) {
        acc += c;
        *t = acc;
    }
    tails
}

/// Induced sort: given LMS positions already placed (or to be placed at
/// bucket tails in `lms` order), fills in L-type then S-type suffixes.
fn induce(text: &[u32], sigma: usize, t: &[bool], sa: &mut [u32], lms: &[u32]) {
    let n = text.len();
    sa.fill(EMPTY);
    // Step 1: place LMS suffixes at the tails of their buckets, in the
    // given order (reversed so earlier entries end up closer to the tail).
    let mut tails = bucket_tails(text, sigma);
    for &p in lms.iter().rev() {
        let c = text[p as usize] as usize;
        tails[c] -= 1;
        sa[tails[c] as usize] = p;
    }
    // Step 2: induce L-type suffixes left-to-right from bucket heads.
    let mut heads = bucket_heads(text, sigma);
    for i in 0..n {
        let p = sa[i];
        if p == EMPTY || p == 0 {
            continue;
        }
        let j = (p - 1) as usize;
        if !t[j] {
            let c = text[j] as usize;
            sa[heads[c] as usize] = j as u32;
            heads[c] += 1;
        }
    }
    // Step 3: induce S-type suffixes right-to-left from bucket tails.
    let mut tails = bucket_tails(text, sigma);
    for i in (0..n).rev() {
        let p = sa[i];
        if p == EMPTY || p == 0 {
            continue;
        }
        let j = (p - 1) as usize;
        if t[j] {
            let c = text[j] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = j as u32;
        }
    }
}

fn sais_impl(text: &[u32], sigma: usize, sa: &mut [u32]) {
    let n = text.len();
    if n == 1 {
        sa[0] = 0;
        return;
    }
    let t = classify(text);
    let lms_positions: Vec<u32> = (1..n)
        .filter(|&i| is_lms(&t, i))
        .map(|i| i as u32)
        .collect();

    // First induction: approximate order (LMS in text order).
    induce(text, sigma, &t, sa, &lms_positions);

    // Extract LMS suffixes in their induced order and name LMS substrings.
    let sorted_lms: Vec<u32> = sa
        .iter()
        .copied()
        .filter(|&p| p != EMPTY && is_lms(&t, p as usize))
        .collect();
    debug_assert_eq!(sorted_lms.len(), lms_positions.len());

    // Name each LMS substring; equal adjacent substrings share a name.
    let mut names = vec![EMPTY; n];
    let mut name = 0u32;
    let mut prev: Option<u32> = None;
    for &p in &sorted_lms {
        if let Some(q) = prev {
            if !lms_substring_eq(text, &t, q as usize, p as usize) {
                name += 1;
            }
        }
        names[p as usize] = name;
        prev = Some(p);
    }
    let num_names = name + 1;

    // Build the reduced problem: names of LMS substrings in text order.
    let reduced: Vec<u32> = lms_positions.iter().map(|&p| names[p as usize]).collect();

    let lms_order: Vec<u32> = if num_names as usize == reduced.len() {
        // All names unique: the induced order is already correct.
        sorted_lms
    } else {
        // Recurse on the reduced string (it ends with the sentinel's name,
        // which is 0 and unique because the sentinel is the unique minimum).
        let mut sub_sa = vec![0u32; reduced.len()];
        sais_impl(&reduced, num_names as usize, &mut sub_sa);
        sub_sa.iter().map(|&r| lms_positions[r as usize]).collect()
    };

    // Final induction with correctly ordered LMS suffixes.
    induce(text, sigma, &t, sa, &lms_order);
}

/// Compares the LMS substrings starting at `a` and `b`.
fn lms_substring_eq(text: &[u32], t: &[bool], a: usize, b: usize) -> bool {
    let n = text.len();
    if a == b {
        return true;
    }
    // The sentinel's LMS substring is just itself and unique.
    if a == n - 1 || b == n - 1 {
        return false;
    }
    let mut i = 0usize;
    loop {
        let pa = a + i;
        let pb = b + i;
        if pa >= n || pb >= n {
            return false;
        }
        if text[pa] != text[pb] || t[pa] != t[pb] {
            return false;
        }
        if i > 0 && (is_lms(t, pa) || is_lms(t, pb)) {
            return is_lms(t, pa) && is_lms(t, pb);
        }
        i += 1;
    }
}

/// O(n² log n) reference construction for testing.
pub fn suffix_array_naive(text: &[u32]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_sentinel(bytes: &[u8]) -> Vec<u32> {
        let mut v: Vec<u32> = bytes.iter().map(|&b| b as u32 + 2).collect();
        v.push(0);
        v
    }

    fn check(bytes: &[u8]) {
        let text = with_sentinel(bytes);
        let got = suffix_array(&text, 258);
        let want = suffix_array_naive(&text);
        assert_eq!(got, want, "text {:?}", String::from_utf8_lossy(bytes));
    }

    #[test]
    fn classic_examples() {
        check(b"");
        check(b"a");
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(b"aaaaaaaaaa");
        check(b"abcabcabcabc");
        check(b"zyxwvut");
    }

    #[test]
    fn binary_runs() {
        check(b"abababababab");
        check(b"aabbaabbaabb");
        check(b"baaaabaaaab");
    }

    #[test]
    fn pseudorandom_texts() {
        let mut state = 0x853c49e6748fea9bu64;
        for len in [10, 100, 1000] {
            for sigma in [2u8, 4, 26] {
                let bytes: Vec<u8> = (0..len)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        b'a' + ((state >> 33) % sigma as u64) as u8
                    })
                    .collect();
                check(&bytes);
            }
        }
    }

    #[test]
    fn with_separators_like_collection() {
        // Emulates the collection encoding: docs separated by symbol 1.
        let mut text: Vec<u32> = Vec::new();
        for doc in [b"abab".as_slice(), b"babb", b"", b"ab"] {
            text.extend(doc.iter().map(|&b| b as u32 + 2));
            text.push(1);
        }
        text.push(0);
        let got = suffix_array(&text, 258);
        let want = suffix_array_naive(&text);
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn rejects_missing_sentinel() {
        suffix_array(&[5, 4, 3], 258);
    }
}
