//! Burrows–Wheeler transform and LF mapping utilities.
//!
//! The BWT is the bridge between the suffix array and the compressed
//! (FM) index: `BWT[i] = T[SA[i] − 1]` (cyclically). Rank queries over the
//! BWT implement backward search; `LF` steps walk the text right-to-left.

/// Computes the BWT of `text` given its suffix array.
pub fn bwt_from_sa(text: &[u32], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    assert_eq!(n, sa.len());
    sa.iter()
        .map(|&p| {
            if p == 0 {
                text[n - 1]
            } else {
                text[p as usize - 1]
            }
        })
        .collect()
}

/// Computes the `C` array: `c[s]` = number of text symbols strictly
/// smaller than `s`, with one extra entry holding `n`.
pub fn c_array(text: &[u32], sigma: u32) -> Vec<usize> {
    let mut counts = vec![0usize; sigma as usize + 1];
    for &s in text {
        counts[s as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    counts
}

/// Inverts a BWT (for testing): reconstructs the text ending in the unique
/// sentinel `0`.
pub fn inverse_bwt(bwt: &[u32], sigma: u32) -> Vec<u32> {
    let n = bwt.len();
    if n == 0 {
        return Vec::new();
    }
    let c = c_array(bwt, sigma);
    // occ[i] = rank of bwt[i] within its symbol class, computed by scan.
    let mut seen = vec![0usize; sigma as usize];
    let mut lf = vec![0usize; n];
    for (i, &s) in bwt.iter().enumerate() {
        lf[i] = c[s as usize] + seen[s as usize];
        seen[s as usize] += 1;
    }
    // The sentinel's row is SA position 0; text[n-1] = 0. Walk backwards.
    let mut out = vec![0u32; n];
    let mut row = 0usize; // row of the suffix array holding the full text
    for i in (0..n - 1).rev() {
        out[i] = bwt[row];
        row = lf[row];
    }
    out[n - 1] = 0;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sais::suffix_array;

    fn encode(bytes: &[u8]) -> Vec<u32> {
        let mut v: Vec<u32> = bytes.iter().map(|&b| b as u32 + 2).collect();
        v.push(0);
        v
    }

    #[test]
    fn banana_roundtrip() {
        let text = encode(b"banana");
        let sa = suffix_array(&text, 258);
        let bwt = bwt_from_sa(&text, &sa);
        assert_eq!(inverse_bwt(&bwt, 258), text);
    }

    #[test]
    fn various_roundtrips() {
        for s in [
            b"".as_slice(),
            b"a",
            b"mississippi",
            b"the quick brown fox jumps over the lazy dog",
            b"aaaabbbbccccaaaabbbbcccc",
        ] {
            let text = encode(s);
            let sa = suffix_array(&text, 258);
            let bwt = bwt_from_sa(&text, &sa);
            assert_eq!(inverse_bwt(&bwt, 258), text, "text {s:?}");
        }
    }

    #[test]
    fn c_array_prefix_sums() {
        let text = encode(b"abcabc");
        // symbols: a+2=99.. whatever; check sums
        let c = c_array(&text, 258);
        assert_eq!(c[0], 0);
        assert_eq!(c[258], text.len());
        for w in c.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
