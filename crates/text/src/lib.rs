//! # dyndex-text
//!
//! Text-indexing substrates for the `dyndex` reproduction of *Munro,
//! Nekrich, Vitter: Dynamic Data Structures for Document Collections and
//! Graphs* (PODS 2015):
//!
//! * [`sais`] — linear-time suffix array construction (SA-IS).
//! * [`bwt`] — Burrows–Wheeler transform and LF utilities.
//! * [`collection`] — the document-collection text model (separators,
//!   terminator, `(doc, offset)` resolution).
//! * [`fm_index`] — the static compressed index `Is` (backward search /
//!   locate / extract / tSA), generic over the BWT sequence representation.
//! * [`sa_index`] — the fast `O(n log σ)`-text classical suffix-array
//!   index (Table 3 regime).
//! * [`gst`] — a generalized suffix tree with document insert *and* delete
//!   (the paper's uncompressed `C0` structure, Appendix A.2).

pub mod bwt;
pub mod collection;
pub mod fm_index;
pub mod gst;
pub mod sa_index;
pub mod sais;

pub use collection::{ConcatText, ConcatTextBuilder, Occurrence};
pub use fm_index::{FmIndex, FmIndexCompressed, FmIndexPlain};
pub use gst::SuffixTree;
pub use sa_index::SaIndex;
