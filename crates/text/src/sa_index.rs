//! A plain suffix-array index — the fast, `O(n log σ)`-bit-text static
//! index plugged into the transformations for the paper's Table 3 regime
//! (stand-in for Grossi–Vitter \[22\]; see DESIGN.md substitutions).
//!
//! Trade-off profile (vs the FM-index):
//! * `locate` is **O(1)** (`SA[i]` is stored) instead of O(s) LF steps —
//!   this is the headline advantage Table 3 demonstrates;
//! * `extract` reads the packed text directly, O(ℓ);
//! * `tSA` is O(1) (`ISA` stored);
//! * range-finding is binary search: O(|P| log n);
//! * space is `n·⌈log σ⌉` bits for the text plus `2n·⌈log n⌉` bits for
//!   SA/ISA (GV compress these to O(n log σ); we keep them plain and
//!   report the difference in EXPERIMENTS.md).

use crate::collection::{ConcatText, Occurrence, SIGMA, SYM_OFFSET};
use crate::sais::suffix_array;
use dyndex_succinct::{bits::bits_for, EliasFano, IntVec, SpaceUsage};

/// A classical suffix-array full-text index over a document collection.
#[derive(Clone, Debug)]
pub struct SaIndex {
    /// Packed encoded text (9 bits/symbol).
    text: IntVec,
    /// Suffix array.
    sa: IntVec,
    /// Inverse suffix array.
    isa: IntVec,
    n: usize,
    doc_ids: Vec<u64>,
    doc_starts: EliasFano,
}

impl SaIndex {
    /// Builds the index over `docs`.
    pub fn build(docs: &[(u64, &[u8])]) -> Self {
        let concat = ConcatText::new(docs);
        Self::from_concat(&concat)
    }

    /// Builds from an already-encoded concatenation.
    pub fn from_concat(concat: &ConcatText) -> Self {
        let raw = concat.text();
        let n = raw.len();
        let sa_raw = suffix_array(raw, SIGMA);
        let width = bits_for(n.saturating_sub(1) as u64) as usize;
        let sym_width = bits_for(SIGMA as u64 - 1) as usize;
        let mut text = IntVec::with_capacity(sym_width, n);
        for &s in raw {
            text.push(s as u64);
        }
        let mut sa = IntVec::with_capacity(width, n);
        let mut isa_raw = vec![0u64; n];
        for (row, &p) in sa_raw.iter().enumerate() {
            sa.push(p as u64);
            isa_raw[p as usize] = row as u64;
        }
        let mut isa = IntVec::with_capacity(width, n);
        for &r in &isa_raw {
            isa.push(r);
        }
        let starts: Vec<u64> = (0..concat.num_docs())
            .map(|s| concat.doc_start(s) as u64)
            .collect();
        SaIndex {
            text,
            sa,
            isa,
            n,
            doc_ids: concat.doc_ids().to_vec(),
            doc_starts: EliasFano::new(&starts, n as u64 + 1),
        }
    }

    /// Total encoded text length.
    #[inline]
    pub fn text_len(&self) -> usize {
        self.n
    }

    /// Total document bytes.
    #[inline]
    pub fn symbol_count(&self) -> usize {
        self.n - self.num_docs() - 1
    }

    /// Number of documents.
    #[inline]
    pub fn num_docs(&self) -> usize {
        self.doc_ids.len()
    }

    /// Caller-assigned document ids in concatenation order.
    #[inline]
    pub fn doc_ids(&self) -> &[u64] {
        &self.doc_ids
    }

    /// Compares `pattern` against the suffix starting at `pos`.
    fn cmp_suffix(&self, pattern: &[u32], pos: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        for (k, &pc) in pattern.iter().enumerate() {
            let tp = pos + k;
            if tp >= self.n {
                return Ordering::Less; // suffix exhausted => suffix < pattern
            }
            let tc = self.text.get(tp) as u32;
            match tc.cmp(&pc) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal // pattern is a prefix of the suffix
    }

    /// Range-finding by binary search: the SA interval `[l, r)` of suffixes
    /// starting with `pattern`. O(|P| log n).
    pub fn find_range(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        let encoded = crate::collection::encode_pattern(pattern);
        if encoded.is_empty() {
            return Some((0, self.n));
        }
        // Lower bound: first suffix >= pattern.
        let mut lo = 0usize;
        let mut hi = self.n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cmp_suffix(&encoded, self.sa.get(mid) as usize) == std::cmp::Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let start = lo;
        // Upper bound: first suffix whose prefix > pattern.
        let mut hi = self.n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cmp_suffix(&encoded, self.sa.get(mid) as usize) == std::cmp::Ordering::Greater {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if start < lo {
            Some((start, lo))
        } else {
            None
        }
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.find_range(pattern).map_or(0, |(l, r)| r - l)
    }

    /// Text position of SA row `row` — O(1).
    #[inline]
    pub fn locate_row(&self, row: usize) -> usize {
        self.sa.get(row) as usize
    }

    /// SA row of text position `pos` (tSA) — O(1).
    #[inline]
    pub fn suffix_rank(&self, pos: usize) -> usize {
        self.isa.get(pos) as usize
    }

    /// Resolves a flat text position to `(slot, Occurrence)`.
    pub fn resolve(&self, pos: usize) -> (usize, Occurrence) {
        let (slot, start) = self
            .doc_starts
            .predecessor(pos as u64)
            .expect("position before first document");
        (
            slot,
            Occurrence {
                doc: self.doc_ids[slot],
                offset: pos - start as usize,
            },
        )
    }

    /// All occurrences of `pattern` (unordered).
    pub fn locate(&self, pattern: &[u8]) -> Vec<Occurrence> {
        match self.find_range(pattern) {
            None => Vec::new(),
            Some((l, r)) => (l..r)
                .map(|row| self.resolve(self.locate_row(row)).1)
                .collect(),
        }
    }

    /// Byte length of document `slot`.
    pub fn doc_len(&self, slot: usize) -> usize {
        let start = self.doc_starts.get(slot) as usize;
        let end = if slot + 1 < self.num_docs() {
            self.doc_starts.get(slot + 1) as usize
        } else {
            self.n - 1
        };
        end - start - 1
    }

    /// Start position of document `slot`.
    pub fn doc_start(&self, slot: usize) -> usize {
        self.doc_starts.get(slot) as usize
    }

    /// Extracts `len` bytes of document `slot` from `offset` — O(ℓ).
    pub fn extract(&self, slot: usize, offset: usize, len: usize) -> Vec<u8> {
        let start = self.doc_start(slot);
        let dlen = self.doc_len(slot);
        let a = start + offset.min(dlen);
        let b = start + (offset + len).min(dlen);
        (a..b)
            .map(|p| (self.text.get(p) as u32 - SYM_OFFSET) as u8)
            .collect()
    }

    /// SA rows of all suffixes starting inside document `slot` — O(|doc|).
    pub fn doc_suffix_rows(&self, slot: usize) -> Vec<usize> {
        let start = self.doc_start(slot);
        (start..start + self.doc_len(slot))
            .map(|p| self.suffix_rank(p))
            .collect()
    }

    /// Reconstructs all documents.
    pub fn extract_all_docs(&self) -> Vec<(u64, Vec<u8>)> {
        (0..self.num_docs())
            .map(|slot| {
                (
                    self.doc_ids[slot],
                    self.extract(slot, 0, self.doc_len(slot)),
                )
            })
            .collect()
    }
}

impl SpaceUsage for SaIndex {
    fn heap_bytes(&self) -> usize {
        self.text.heap_bytes()
            + self.sa.heap_bytes()
            + self.isa.heap_bytes()
            + self.doc_ids.heap_bytes()
            + self.doc_starts.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOCS: &[(u64, &[u8])] = &[
        (1, b"the quick brown fox jumps over the lazy dog"),
        (2, b"pack my box with five dozen liquor jugs"),
        (3, b"aa"),
        (4, b""),
    ];

    fn naive(docs: &[(u64, &[u8])], pattern: &[u8]) -> Vec<Occurrence> {
        let mut out = Vec::new();
        for (id, d) in docs {
            if pattern.is_empty() || pattern.len() > d.len() {
                continue;
            }
            for off in 0..=(d.len() - pattern.len()) {
                if &d[off..off + pattern.len()] == pattern {
                    out.push(Occurrence {
                        doc: *id,
                        offset: off,
                    });
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn matches_naive() {
        let idx = SaIndex::build(DOCS);
        for p in [b"the".as_slice(), b"a", b"qu", b"ox", b"zzz", b" "] {
            let want = naive(DOCS, p);
            assert_eq!(idx.count(p), want.len(), "count {p:?}");
            let mut got = idx.locate(p);
            got.sort();
            assert_eq!(got, want, "locate {p:?}");
        }
    }

    #[test]
    fn extraction_and_inverse() {
        let idx = SaIndex::build(DOCS);
        for (slot, (_, d)) in DOCS.iter().enumerate() {
            assert_eq!(idx.doc_len(slot), d.len());
            assert_eq!(&idx.extract(slot, 0, d.len()), d);
        }
        for pos in 0..idx.text_len() {
            assert_eq!(idx.locate_row(idx.suffix_rank(pos)), pos);
        }
        let all = idx.extract_all_docs();
        assert_eq!(all.len(), DOCS.len());
        for ((id, bytes), (wid, wb)) in all.iter().zip(DOCS) {
            assert_eq!((id, bytes.as_slice()), (wid, *wb));
        }
    }

    #[test]
    fn doc_suffix_rows_roundtrip() {
        let idx = SaIndex::build(DOCS);
        for slot in 0..idx.num_docs() {
            let rows = idx.doc_suffix_rows(slot);
            assert_eq!(rows.len(), idx.doc_len(slot));
            for (i, &row) in rows.iter().enumerate() {
                assert_eq!(idx.locate_row(row), idx.doc_start(slot) + i);
            }
        }
    }
}
