//! The document-collection text model.
//!
//! The paper (§1, "Previous Results") extends single-text indexes to
//! collections by concatenating documents with unique end markers. We
//! follow the standard practical encoding:
//!
//! * byte `b` of any document ↦ symbol `b + 2`;
//! * every document is followed by the separator symbol `1`;
//! * the whole concatenation ends with the terminator symbol `0`
//!   (the unique smallest sentinel SA-IS requires).
//!
//! Patterns contain only symbols `≥ 2`, so a match can never cross a
//! document boundary, and an occurrence's `(document, offset)` pair is
//! recovered from the flat text position with one predecessor query on the
//! (sparse, Elias–Fano-encoded) document-start sequence — this is the
//! `O(ρ log n)`-bit navigation structure the paper budgets for.

use dyndex_succinct::{EliasFano, SpaceUsage};

/// Global terminator symbol (unique smallest sentinel).
pub const TERMINATOR: u32 = 0;
/// Per-document separator symbol.
pub const SEPARATOR: u32 = 1;
/// Offset added to every document byte.
pub const SYM_OFFSET: u32 = 2;
/// Alphabet size of the encoded text (bytes 0–255 map to 2–257).
pub const SIGMA: u32 = 258;

/// Remaps a pattern's bytes into text symbols.
pub fn encode_pattern(pattern: &[u8]) -> Vec<u32> {
    pattern.iter().map(|&b| b as u32 + SYM_OFFSET).collect()
}

/// An occurrence of a pattern: which document, and the byte offset in it.
///
/// Matches the paper's required output: "all pairs (doc, off) such that P
/// occurs in a document doc at position off" — *relative* positions, so
/// updates to other documents never invalidate reported occurrences.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Occurrence {
    /// Caller-assigned document identifier.
    pub doc: u64,
    /// Byte offset of the match within the document.
    pub offset: usize,
}

/// A static concatenation of documents with position→(doc, offset) mapping.
#[derive(Clone, Debug)]
pub struct ConcatText {
    /// Encoded text: docs with separators, plus final terminator.
    text: Vec<u32>,
    /// Caller-assigned identifier per document (in concatenation order).
    doc_ids: Vec<u64>,
    /// Start position of each document in `text` (monotone, sparse).
    doc_starts: EliasFano,
}

/// Streaming constructor for [`ConcatText`]: documents are encoded into
/// the concatenation one at a time, so a caller holding a document
/// *stream* (the bulk-ingestion path) never has to materialize a
/// `&[(u64, &[u8])]` slice first. Feed the result to
/// [`FmIndex::from_concat`](crate::FmIndex::from_concat) /
/// [`SaIndex::from_concat`](crate::SaIndex::from_concat) for a one-pass
/// stream → SA-IS → static-index build.
///
/// # Examples
///
/// ```
/// use dyndex_text::{ConcatTextBuilder, SaIndex};
///
/// let mut builder = ConcatTextBuilder::new();
/// for (id, doc) in [(1u64, "streamed"), (2, "documents")] {
///     builder.push(id, doc.as_bytes());
/// }
/// assert_eq!(builder.symbols(), "streamed".len() + "documents".len());
/// let index = SaIndex::from_concat(&builder.finish());
/// assert!(index.find_range(b"stream").is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ConcatTextBuilder {
    text: Vec<u32>,
    doc_ids: Vec<u64>,
    starts: Vec<u64>,
    symbols: usize,
}

impl ConcatTextBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with room for `symbols` document bytes.
    pub fn with_capacity(symbols: usize, docs: usize) -> Self {
        ConcatTextBuilder {
            text: Vec::with_capacity(symbols + docs + 1),
            doc_ids: Vec::with_capacity(docs),
            starts: Vec::with_capacity(docs),
            symbols: 0,
        }
    }

    /// Appends one document (encoded immediately, separator included).
    pub fn push(&mut self, doc_id: u64, bytes: &[u8]) {
        self.doc_ids.push(doc_id);
        self.starts.push(self.text.len() as u64);
        self.text
            .extend(bytes.iter().map(|&b| b as u32 + SYM_OFFSET));
        self.text.push(SEPARATOR);
        self.symbols += bytes.len();
    }

    /// Document bytes pushed so far (excluding separators) — the knob
    /// bulk loaders cut batches on.
    pub fn symbols(&self) -> usize {
        self.symbols
    }

    /// Documents pushed so far.
    pub fn num_docs(&self) -> usize {
        self.doc_ids.len()
    }

    /// True iff nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.doc_ids.is_empty()
    }

    /// Seals the concatenation (appends the global terminator).
    pub fn finish(mut self) -> ConcatText {
        self.text.push(TERMINATOR);
        let universe = self.text.len() as u64 + 1;
        ConcatText {
            text: self.text,
            doc_ids: self.doc_ids,
            doc_starts: EliasFano::new(&self.starts, universe),
        }
    }
}

impl ConcatText {
    /// Builds from `(doc_id, bytes)` pairs (one [`ConcatTextBuilder`]
    /// pass — the slice and streaming paths share one encoding).
    pub fn new(docs: &[(u64, &[u8])]) -> Self {
        let total: usize = docs.iter().map(|(_, d)| d.len()).sum();
        let mut builder = ConcatTextBuilder::with_capacity(total, docs.len());
        for (id, bytes) in docs {
            builder.push(*id, bytes);
        }
        builder.finish()
    }

    /// The encoded text (including separators and terminator).
    #[inline]
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// Total length of the encoded text.
    #[inline]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True iff the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.doc_ids.is_empty()
    }

    /// Number of documents.
    #[inline]
    pub fn num_docs(&self) -> usize {
        self.doc_ids.len()
    }

    /// Caller-assigned ids, in concatenation order.
    #[inline]
    pub fn doc_ids(&self) -> &[u64] {
        &self.doc_ids
    }

    /// Maps a flat text position to `(slot, Occurrence)`, where `slot` is
    /// the document's index in concatenation order.
    pub fn resolve(&self, pos: usize) -> (usize, Occurrence) {
        let (slot, start) = self
            .doc_starts
            .predecessor(pos as u64)
            .expect("position before first document");
        (
            slot,
            Occurrence {
                doc: self.doc_ids[slot],
                offset: pos - start as usize,
            },
        )
    }

    /// Start position of document `slot` in the flat text.
    pub fn doc_start(&self, slot: usize) -> usize {
        self.doc_starts.get(slot) as usize
    }

    /// Byte length of document `slot` (excluding the separator).
    pub fn doc_len(&self, slot: usize) -> usize {
        let start = self.doc_starts.get(slot) as usize;
        let end = if slot + 1 < self.num_docs() {
            self.doc_starts.get(slot + 1) as usize
        } else {
            self.text.len() - 1 // before terminator
        };
        end - start - 1 // minus separator
    }

    /// Decodes document `slot` back to bytes.
    pub fn doc_bytes(&self, slot: usize) -> Vec<u8> {
        let start = self.doc_start(slot);
        let len = self.doc_len(slot);
        self.text[start..start + len]
            .iter()
            .map(|&s| (s - SYM_OFFSET) as u8)
            .collect()
    }

    /// The slot of a caller-assigned id, if present (linear scan; callers
    /// that need this hot keep their own map).
    pub fn slot_of(&self, doc_id: u64) -> Option<usize> {
        self.doc_ids.iter().position(|&d| d == doc_id)
    }
}

impl SpaceUsage for ConcatText {
    fn heap_bytes(&self) -> usize {
        self.text.heap_bytes() + self.doc_ids.heap_bytes() + self.doc_starts.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_layout() {
        let ct = ConcatText::new(&[(7, b"ab"), (9, b""), (11, b"xyz")]);
        // "ab" + sep + "" + sep + "xyz" + sep + term
        assert_eq!(ct.len(), (2 + 1) + 1 + 3 + 1 + 1);
        assert_eq!(ct.num_docs(), 3);
        assert_eq!(ct.text()[2], SEPARATOR);
        assert_eq!(*ct.text().last().expect("non-empty"), TERMINATOR);
        assert_eq!(ct.doc_len(0), 2);
        assert_eq!(ct.doc_len(1), 0);
        assert_eq!(ct.doc_len(2), 3);
        assert_eq!(ct.doc_bytes(2), b"xyz");
    }

    #[test]
    fn resolve_positions() {
        let ct = ConcatText::new(&[(100, b"hello"), (200, b"world!")]);
        let (slot, occ) = ct.resolve(0);
        assert_eq!((slot, occ.doc, occ.offset), (0, 100, 0));
        let (slot, occ) = ct.resolve(4);
        assert_eq!((slot, occ.doc, occ.offset), (0, 100, 4));
        let (slot, occ) = ct.resolve(6); // first char of "world!"
        assert_eq!((slot, occ.doc, occ.offset), (1, 200, 0));
        let (slot, occ) = ct.resolve(11);
        assert_eq!((slot, occ.doc, occ.offset), (1, 200, 5));
    }

    #[test]
    fn empty_collection() {
        let ct = ConcatText::new(&[]);
        assert!(ct.is_empty());
        assert_eq!(ct.len(), 1); // just the terminator
    }

    #[test]
    fn pattern_encoding() {
        assert_eq!(
            encode_pattern(b"ab"),
            vec![b'a' as u32 + 2, b'b' as u32 + 2]
        );
        assert!(encode_pattern(&[0u8, 255]).iter().all(|&s| s >= 2));
    }
}
