//! Generalized suffix tree with document insertion **and deletion** —
//! the paper's uncompressed fully-dynamic structure `D0` for the small
//! sub-collection `C0` (Appendix A.2).
//!
//! * Insertion runs Ukkonen's online algorithm per document (amortized
//!   O(|T|)); each document ends with a unique sentinel symbol so every
//!   suffix owns a leaf.
//! * Edge labels are *witness-based*: a node stores `(witness doc, witness
//!   offset, depth)` such that `path(node) = text[woff .. woff+depth]`.
//!   This makes deletion safe: labels never dangle, because a deleted
//!   document's text is retained (ref-counted) until no node witnesses it —
//!   exactly the "O((n/τ) log σ) bits for deleted symbols" the paper
//!   budgets in §2/A.5. (`C0` is purged wholesale into `C1` long before
//!   retained text accumulates.)
//! * Deletion removes the document's leaves one by one, merging unary
//!   internal nodes. Suffix links of surviving branching nodes always point
//!   at surviving branching nodes (if `aX` is branching in the surviving
//!   collection, so is `X`), so links never dangle either.
//! * Queries: `find` descends by pattern symbols and reports each leaf in
//!   the locus subtree in O(1) per occurrence — `O(|P| + occ)` total.

use crate::collection::{Occurrence, SYM_OFFSET};
use dyndex_succinct::space::SpaceUsage;
use std::collections::HashMap;

const NIL: u32 = u32::MAX;
/// Leaf depths are set to `OPEN` while their document is being inserted.
const OPEN: u32 = u32::MAX;
/// Sentinel symbols live above the byte range (bytes map to 2..=257).
const SENTINEL_BASE: u32 = 1 << 20;

#[derive(Clone, Debug)]
struct Node {
    parent: u32,
    /// Children sorted by first edge symbol.
    children: Vec<(u32, u32)>,
    /// `path(node) = docs[witness_doc].text[witness_off .. witness_off + depth]`.
    witness_doc: u32,
    witness_off: u32,
    /// Path length in symbols; `OPEN` while a leaf's doc is being inserted.
    depth: u32,
    /// Suffix link (internal nodes; defaults to the root).
    slink: u32,
    /// Whether this node is a leaf (a document suffix).
    is_leaf: bool,
}

#[derive(Clone, Debug, Default)]
struct DocSlot {
    /// Caller-assigned id.
    id: u64,
    /// Encoded text: bytes + 2, followed by a unique sentinel.
    text: Vec<u32>,
    /// Leaves of this document (one per suffix), set after insertion.
    leaves: Vec<u32>,
    /// Number of tree nodes whose witness references this slot.
    witness_refs: usize,
    /// False once the document is deleted (text may outlive deletion while
    /// witnessed).
    alive: bool,
}

/// A dynamic generalized suffix tree over byte documents.
#[derive(Clone, Debug)]
pub struct SuffixTree {
    nodes: Vec<Node>,
    free_nodes: Vec<u32>,
    docs: Vec<DocSlot>,
    free_docs: Vec<u32>,
    /// Caller id → doc slot.
    by_id: HashMap<u64, u32>,
    /// Monotone counter making sentinels unique for the tree's lifetime.
    next_sentinel: u32,
    /// Total bytes across alive documents.
    alive_symbols: usize,
    /// Total bytes across retained-but-deleted documents.
    dead_symbols: usize,
}

impl Default for SuffixTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SuffixTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        let root = Node {
            parent: NIL,
            children: Vec::new(),
            witness_doc: NIL,
            witness_off: 0,
            depth: 0,
            slink: 0,
            is_leaf: false,
        };
        SuffixTree {
            nodes: vec![root],
            free_nodes: Vec::new(),
            docs: Vec::new(),
            free_docs: Vec::new(),
            by_id: HashMap::new(),
            next_sentinel: 0,
            alive_symbols: 0,
            dead_symbols: 0,
        }
    }

    /// Number of alive documents.
    pub fn num_docs(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no documents are alive.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Total bytes across alive documents.
    pub fn symbol_count(&self) -> usize {
        self.alive_symbols
    }

    /// Bytes retained on behalf of deleted documents (freed on purge or
    /// when the last witness disappears).
    pub fn retained_dead_symbols(&self) -> usize {
        self.dead_symbols
    }

    /// Ids of alive documents (arbitrary order).
    pub fn doc_ids(&self) -> Vec<u64> {
        self.by_id.keys().copied().collect()
    }

    /// Whether `doc_id` is present.
    pub fn contains_doc(&self, doc_id: u64) -> bool {
        self.by_id.contains_key(&doc_id)
    }

    /// The bytes of an alive document.
    pub fn doc_bytes(&self, doc_id: u64) -> Option<Vec<u8>> {
        let &slot = self.by_id.get(&doc_id)?;
        let d = &self.docs[slot as usize];
        Some(
            d.text[..d.text.len() - 1]
                .iter()
                .map(|&s| (s - SYM_OFFSET) as u8)
                .collect(),
        )
    }

    // ----- arena helpers ---------------------------------------------------

    fn alloc_node(&mut self, node: Node) -> u32 {
        self.docs[node.witness_doc as usize].witness_refs += 1;
        if let Some(idx) = self.free_nodes.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn free_node(&mut self, idx: u32) {
        let wdoc = self.nodes[idx as usize].witness_doc;
        self.release_witness(wdoc);
        self.nodes[idx as usize].parent = NIL;
        self.nodes[idx as usize].children.clear();
        self.free_nodes.push(idx);
    }

    fn release_witness(&mut self, wdoc: u32) {
        let d = &mut self.docs[wdoc as usize];
        d.witness_refs -= 1;
        if d.witness_refs == 0 && !d.alive && d.leaves.is_empty() {
            self.dead_symbols -= d.text.len().saturating_sub(1);
            self.free_doc_slot(wdoc);
        }
    }

    fn free_doc_slot(&mut self, slot: u32) {
        let d = &mut self.docs[slot as usize];
        d.text = Vec::new();
        d.leaves = Vec::new();
        self.free_docs.push(slot);
    }

    #[inline]
    fn text_sym(&self, doc: u32, pos: u32) -> u32 {
        self.docs[doc as usize].text[pos as usize]
    }

    /// First symbol of the edge leading into `v` (whose parent is `u`).
    #[inline]
    fn edge_first_sym(&self, u: u32, v: u32) -> u32 {
        let vn = &self.nodes[v as usize];
        self.text_sym(
            vn.witness_doc,
            vn.witness_off + self.nodes[u as usize].depth,
        )
    }

    fn child(&self, u: u32, sym: u32) -> Option<u32> {
        let ch = &self.nodes[u as usize].children;
        ch.binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| ch[i].1)
    }

    fn set_child(&mut self, u: u32, sym: u32, v: u32) {
        let ch = &mut self.nodes[u as usize].children;
        match ch.binary_search_by_key(&sym, |&(s, _)| s) {
            Ok(i) => ch[i].1 = v,
            Err(i) => ch.insert(i, (sym, v)),
        }
        self.nodes[v as usize].parent = u;
    }

    fn remove_child(&mut self, u: u32, sym: u32) {
        let ch = &mut self.nodes[u as usize].children;
        if let Ok(i) = ch.binary_search_by_key(&sym, |&(s, _)| s) {
            ch.remove(i);
        }
    }

    /// Effective depth of a node during insertion of doc `d` at phase end
    /// `cur_end` (open leaves extend to the current frontier).
    #[inline]
    fn eff_depth(&self, v: u32, d: u32, cur_end: u32) -> u32 {
        let vn = &self.nodes[v as usize];
        if vn.depth == OPEN {
            debug_assert_eq!(vn.witness_doc, d);
            cur_end - vn.witness_off
        } else {
            vn.depth
        }
    }

    // ----- insertion (Ukkonen) ---------------------------------------------

    /// Inserts a document. O(|bytes|) amortized.
    ///
    /// # Panics
    /// Panics if `doc_id` is already present.
    pub fn insert(&mut self, doc_id: u64, bytes: &[u8]) {
        assert!(
            !self.by_id.contains_key(&doc_id),
            "document {doc_id} already present"
        );
        let sentinel = SENTINEL_BASE + self.next_sentinel;
        self.next_sentinel += 1;
        let mut text: Vec<u32> = bytes.iter().map(|&b| b as u32 + SYM_OFFSET).collect();
        text.push(sentinel);
        let m = text.len() as u32;

        // Allocate the document slot.
        let slot = if let Some(s) = self.free_docs.pop() {
            self.docs[s as usize] = DocSlot {
                id: doc_id,
                text,
                leaves: Vec::new(),
                witness_refs: 0,
                alive: true,
            };
            s
        } else {
            self.docs.push(DocSlot {
                id: doc_id,
                text,
                leaves: Vec::new(),
                witness_refs: 0,
                alive: true,
            });
            (self.docs.len() - 1) as u32
        };
        self.by_id.insert(doc_id, slot);
        self.alive_symbols += bytes.len();

        // Ukkonen state.
        let mut active_node = 0u32;
        let mut active_edge = 0u32; // index into this doc's text
        let mut active_len = 0u32;
        let mut remaining = 0u32;
        let mut new_leaves: Vec<u32> = Vec::with_capacity(m as usize);

        for i in 0..m {
            let c = self.text_sym(slot, i);
            remaining += 1;
            let mut last_new: u32 = NIL;
            while remaining > 0 {
                if active_len == 0 {
                    active_edge = i;
                }
                let edge_sym = self.text_sym(slot, active_edge);
                match self.child(active_node, edge_sym) {
                    None => {
                        // Rule 2: fresh leaf hanging off active_node.
                        let suffix_start = i + 1 - remaining;
                        let leaf = self.alloc_node(Node {
                            parent: active_node,
                            children: Vec::new(),
                            witness_doc: slot,
                            witness_off: suffix_start,
                            depth: OPEN,
                            slink: 0,
                            is_leaf: true,
                        });
                        self.set_child(active_node, edge_sym, leaf);
                        new_leaves.push(leaf);
                        if last_new != NIL {
                            self.nodes[last_new as usize].slink = active_node;
                            last_new = NIL;
                        }
                    }
                    Some(next) => {
                        // Open leaves implicitly extend through t[i] (rule 1),
                        // so the frontier is i + 1 in exclusive terms.
                        let edge_len = self.eff_depth(next, slot, i + 1)
                            - self.nodes[active_node as usize].depth;
                        if active_len >= edge_len {
                            // Walk down.
                            active_node = next;
                            active_len -= edge_len;
                            active_edge += edge_len;
                            continue;
                        }
                        let nn = &self.nodes[next as usize];
                        let probe = self.text_sym(
                            nn.witness_doc,
                            nn.witness_off + self.nodes[active_node as usize].depth + active_len,
                        );
                        if probe == c {
                            // Rule 3: extension already present; stop phase.
                            if last_new != NIL && active_node != 0 {
                                self.nodes[last_new as usize].slink = active_node;
                            }
                            active_len += 1;
                            break;
                        }
                        // Rule 2 with split.
                        let split_depth = self.nodes[active_node as usize].depth + active_len;
                        let (next_wdoc, next_woff) = {
                            let nn = &self.nodes[next as usize];
                            (nn.witness_doc, nn.witness_off)
                        };
                        let split = self.alloc_node(Node {
                            parent: active_node,
                            children: Vec::new(),
                            witness_doc: next_wdoc,
                            witness_off: next_woff,
                            depth: split_depth,
                            slink: 0,
                            is_leaf: false,
                        });
                        self.set_child(active_node, edge_sym, split);
                        // Re-hang `next` under the split.
                        let next_sym = self.text_sym(next_wdoc, next_woff + split_depth);
                        self.set_child(split, next_sym, next);
                        // New leaf for the current suffix.
                        let suffix_start = i + 1 - remaining;
                        let leaf = self.alloc_node(Node {
                            parent: split,
                            children: Vec::new(),
                            witness_doc: slot,
                            witness_off: suffix_start,
                            depth: OPEN,
                            slink: 0,
                            is_leaf: true,
                        });
                        self.set_child(split, c, leaf);
                        new_leaves.push(leaf);
                        if last_new != NIL {
                            self.nodes[last_new as usize].slink = split;
                        }
                        last_new = split;
                    }
                }
                remaining -= 1;
                if active_node == 0 && active_len > 0 {
                    active_len -= 1;
                    active_edge = i + 1 - remaining;
                } else if active_node != 0 {
                    active_node = self.nodes[active_node as usize].slink;
                }
            }
        }
        debug_assert_eq!(new_leaves.len(), m as usize, "one leaf per suffix");

        // Finalize open leaves and register them with the document.
        for &leaf in &new_leaves {
            let woff = self.nodes[leaf as usize].witness_off;
            self.nodes[leaf as usize].depth = m - woff;
        }
        self.docs[slot as usize].leaves = new_leaves;
    }

    // ----- deletion ---------------------------------------------------------

    /// Deletes a document; returns its bytes, or `None` if absent.
    /// O(|T|) amortized.
    pub fn delete(&mut self, doc_id: u64) -> Option<Vec<u8>> {
        let slot = self.by_id.remove(&doc_id)?;
        let bytes = {
            let d = &self.docs[slot as usize];
            d.text[..d.text.len() - 1]
                .iter()
                .map(|&s| (s - SYM_OFFSET) as u8)
                .collect::<Vec<u8>>()
        };
        self.alive_symbols -= bytes.len();
        // Count the text as retained-dead up front; `release_witness`
        // subtracts it back the moment the last referencing node dies.
        self.dead_symbols += bytes.len();
        let leaves = std::mem::take(&mut self.docs[slot as usize].leaves);
        self.docs[slot as usize].alive = false;

        for leaf in leaves {
            debug_assert!(self.nodes[leaf as usize].is_leaf);
            let parent = self.nodes[leaf as usize].parent;
            let sym = self.edge_first_sym(parent, leaf);
            self.remove_child(parent, sym);
            self.free_node(leaf);
            // Merge a now-unary internal node into its surviving child.
            if parent != 0 && self.nodes[parent as usize].children.len() == 1 {
                let (_, only_child) = self.nodes[parent as usize].children[0];
                let gp = self.nodes[parent as usize].parent;
                let gp_sym = self.edge_first_sym(gp, parent);
                // The child keeps its own witness/depth; only re-parent it.
                self.remove_child(gp, gp_sym);
                let child_sym = self.edge_first_sym(gp, only_child);
                self.set_child(gp, child_sym, only_child);
                self.free_node(parent);
            }
        }

        // If no node witnesses this document any more, its text was already
        // freed inside the loop by `release_witness`; otherwise it stays
        // retained (the paper's "deleted symbols" space term) until the last
        // witnessing node dies or the structure is purged.
        Some(bytes)
    }

    // ----- queries ----------------------------------------------------------

    /// Locus search: the highest node whose path has `pattern` as a prefix,
    /// or `None` if the pattern does not occur. O(|P| log σ).
    fn locus(&self, pattern: &[u32]) -> Option<u32> {
        if pattern.is_empty() {
            return Some(0);
        }
        let mut node = 0u32;
        let mut matched = 0usize;
        loop {
            let next = self.child(node, pattern[matched])?;
            let nn = &self.nodes[next as usize];
            let edge_start = nn.witness_off + self.nodes[node as usize].depth;
            let edge_len = (nn.depth - self.nodes[node as usize].depth) as usize;
            let take = edge_len.min(pattern.len() - matched);
            for k in 0..take {
                if self.text_sym(nn.witness_doc, edge_start + k as u32) != pattern[matched + k] {
                    return None;
                }
            }
            matched += take;
            if matched == pattern.len() {
                return Some(next);
            }
            node = next;
        }
    }

    /// All occurrences of `pattern` across alive documents, `O(|P| + occ)`.
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        let encoded = crate::collection::encode_pattern(pattern);
        let Some(locus) = self.locus(&encoded) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![locus];
        while let Some(v) = stack.pop() {
            let vn = &self.nodes[v as usize];
            if vn.is_leaf {
                out.push(Occurrence {
                    doc: self.docs[vn.witness_doc as usize].id,
                    offset: vn.witness_off as usize,
                });
            } else {
                stack.extend(vn.children.iter().map(|&(_, c)| c));
            }
        }
        out
    }

    /// Number of occurrences of `pattern` (O(|P| + occ) by traversal; see
    /// DESIGN.md — `C0` is tiny so traversal counting is within budget).
    pub fn count(&self, pattern: &[u8]) -> usize {
        let encoded = crate::collection::encode_pattern(pattern);
        let Some(locus) = self.locus(&encoded) else {
            return 0;
        };
        let mut count = 0usize;
        let mut stack = vec![locus];
        while let Some(v) = stack.pop() {
            let vn = &self.nodes[v as usize];
            if vn.is_leaf {
                count += 1;
            } else {
                stack.extend(vn.children.iter().map(|&(_, c)| c));
            }
        }
        count
    }

    /// All alive documents as `(id, bytes)` pairs (used when `C0` is
    /// flushed into a static sub-collection).
    pub fn export_docs(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = self
            .by_id
            .values()
            .map(|&slot| {
                let d = &self.docs[slot as usize];
                (
                    d.id,
                    d.text[..d.text.len() - 1]
                        .iter()
                        .map(|&s| (s - SYM_OFFSET) as u8)
                        .collect(),
                )
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// All alive documents ordered by insertion age (ascending sentinel
    /// value). Re-inserting them into a fresh tree in this order assigns
    /// sentinels in the same relative order, reproducing this tree's
    /// canonical shape — and therefore its occurrence-enumeration order —
    /// exactly. The persistence layer relies on this for byte-identical
    /// restored query answers.
    #[doc(hidden)]
    pub fn export_docs_by_age(&self) -> Vec<(u64, Vec<u8>)> {
        let mut slots: Vec<u32> = self.by_id.values().copied().collect();
        slots.sort_by_key(|&slot| {
            *self.docs[slot as usize]
                .text
                .last()
                .expect("alive doc has a sentinel")
        });
        slots
            .into_iter()
            .map(|slot| {
                let d = &self.docs[slot as usize];
                (
                    d.id,
                    d.text[..d.text.len() - 1]
                        .iter()
                        .map(|&s| (s - SYM_OFFSET) as u8)
                        .collect(),
                )
            })
            .collect()
    }

    // ----- integrity checking (tests / debug builds) -------------------------

    /// Exhaustively validates structural invariants. O(total text size).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut live = vec![false; self.nodes.len()];
        let mut stack = vec![0u32];
        let mut leaf_count = 0usize;
        while let Some(v) = stack.pop() {
            live[v as usize] = true;
            let vn = &self.nodes[v as usize];
            if v != 0 {
                assert!(
                    vn.depth > self.nodes[vn.parent as usize].depth,
                    "depth must grow along edges"
                );
            }
            if vn.is_leaf {
                leaf_count += 1;
                assert!(vn.children.is_empty(), "leaves have no children");
            } else if v != 0 {
                assert!(vn.children.len() >= 2, "internal nodes are branching");
            }
            let mut prev_sym = None;
            for &(sym, c) in &vn.children {
                assert_eq!(self.nodes[c as usize].parent, v, "parent pointers");
                assert_eq!(self.edge_first_sym(v, c), sym, "child key matches edge");
                if let Some(p) = prev_sym {
                    assert!(sym > p, "children sorted");
                }
                prev_sym = Some(sym);
                stack.push(c);
            }
        }
        let expected_leaves: usize = self
            .by_id
            .values()
            .map(|&s| self.docs[s as usize].text.len())
            .sum();
        assert_eq!(leaf_count, expected_leaves, "one leaf per alive suffix");
        for (i, n) in self.nodes.iter().enumerate() {
            if live[i] && !n.is_leaf {
                assert!(
                    live[n.slink as usize],
                    "suffix link of live node {i} dangles"
                );
            }
        }
    }
}

impl SpaceUsage for SuffixTree {
    fn heap_bytes(&self) -> usize {
        let nodes: usize = self
            .nodes
            .iter()
            .map(|n| n.children.heap_bytes())
            .sum::<usize>()
            + self.nodes.capacity() * std::mem::size_of::<Node>();
        let docs: usize = self
            .docs
            .iter()
            .map(|d| d.text.heap_bytes() + d.leaves.heap_bytes())
            .sum::<usize>()
            + self.docs.capacity() * std::mem::size_of::<DocSlot>();
        nodes
            + docs
            + self.free_nodes.heap_bytes()
            + self.free_docs.heap_bytes()
            + self.by_id.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_find(docs: &[(u64, &[u8])], pattern: &[u8]) -> Vec<Occurrence> {
        let mut out = Vec::new();
        for (id, d) in docs {
            if pattern.is_empty() || pattern.len() > d.len() {
                continue;
            }
            for off in 0..=(d.len() - pattern.len()) {
                if &d[off..off + pattern.len()] == pattern {
                    out.push(Occurrence {
                        doc: *id,
                        offset: off,
                    });
                }
            }
        }
        out.sort();
        out
    }

    fn assert_matches(st: &SuffixTree, docs: &[(u64, &[u8])], patterns: &[&[u8]]) {
        for &p in patterns {
            let mut got = st.find(p);
            got.sort();
            let want = naive_find(docs, p);
            assert_eq!(got, want, "pattern {:?}", String::from_utf8_lossy(p));
            assert_eq!(st.count(p), want.len());
        }
    }

    #[test]
    fn single_doc_queries() {
        let mut st = SuffixTree::new();
        st.insert(1, b"mississippi");
        st.check_invariants();
        let docs: &[(u64, &[u8])] = &[(1, b"mississippi")];
        assert_matches(
            &st,
            docs,
            &[b"ssi", b"i", b"mississippi", b"ppi", b"x", b"issi"],
        );
    }

    #[test]
    fn multi_doc_queries() {
        let mut st = SuffixTree::new();
        let docs: Vec<(u64, &[u8])> = vec![
            (10, b"banana".as_slice()),
            (20, b"bandana"),
            (30, b"an"),
            (40, b""),
        ];
        for (id, d) in &docs {
            st.insert(*id, d);
            st.check_invariants();
        }
        assert_matches(&st, &docs, &[b"an", b"ana", b"ban", b"nd", b"a", b"q"]);
        assert_eq!(st.num_docs(), 4);
        assert_eq!(st.symbol_count(), 6 + 7 + 2);
    }

    #[test]
    fn delete_restores_exact_state() {
        let mut st = SuffixTree::new();
        st.insert(1, b"abcabc");
        st.insert(2, b"bcabca");
        st.insert(3, b"cab");
        st.check_invariants();
        let deleted = st.delete(2).expect("present");
        assert_eq!(deleted, b"bcabca");
        st.check_invariants();
        let docs: &[(u64, &[u8])] = &[(1, b"abcabc"), (3, b"cab")];
        assert_matches(&st, docs, &[b"abc", b"bca", b"cab", b"c", b"bc"]);
        assert_eq!(st.delete(2), None);
    }

    #[test]
    fn delete_all_then_reinsert() {
        let mut st = SuffixTree::new();
        for round in 0..3u64 {
            st.insert(round * 10 + 1, b"hello world");
            st.insert(round * 10 + 2, b"world hello");
            st.check_invariants();
            assert_eq!(st.count(b"hello"), 2);
            st.delete(round * 10 + 1);
            st.check_invariants();
            assert_eq!(st.count(b"hello"), 1);
            st.delete(round * 10 + 2);
            st.check_invariants();
            assert!(st.is_empty());
            assert_eq!(st.count(b"hello"), 0);
        }
    }

    #[test]
    fn repetitive_text_stress() {
        let mut st = SuffixTree::new();
        st.insert(1, b"aaaaaaaaaaaaaaaa");
        st.insert(2, b"aaaabaaaabaaaab");
        st.check_invariants();
        let docs: &[(u64, &[u8])] = &[(1, b"aaaaaaaaaaaaaaaa"), (2, b"aaaabaaaabaaaab")];
        assert_matches(&st, docs, &[b"aaaa", b"ab", b"ba", b"aaaab"]);
        st.delete(1);
        st.check_invariants();
        assert_matches(&st, &[(2, b"aaaabaaaabaaaab")], &[b"aaaa", b"ab"]);
    }

    #[test]
    fn witness_retention_after_delete() {
        let mut st = SuffixTree::new();
        st.insert(1, b"shared prefix one");
        st.insert(2, b"shared prefix two");
        st.delete(1);
        st.check_invariants();
        // Internal nodes may still witness doc 1's text.
        assert_matches(
            &st,
            &[(2, b"shared prefix two")],
            &[b"shared", b"prefix", b"two"],
        );
        st.delete(2);
        st.check_invariants();
        assert_eq!(
            st.retained_dead_symbols(),
            0,
            "all text freed when tree empties"
        );
    }

    #[test]
    fn interleaved_random_ops_match_naive() {
        let mut st = SuffixTree::new();
        let mut model: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next_id = 0u64;
        let alphabet = b"abc";
        for step in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            if !r.is_multiple_of(3) || model.is_empty() {
                let len = (r % 24) as usize;
                let doc: Vec<u8> = (0..len)
                    .map(|k| alphabet[((state.rotate_left(k as u32 * 7 + 1)) % 3) as usize])
                    .collect();
                next_id += 1;
                st.insert(next_id, &doc);
                model.push((next_id, doc));
            } else {
                let idx = (r as usize / 3) % model.len();
                let (id, bytes) = model.remove(idx);
                assert_eq!(st.delete(id), Some(bytes), "step {step}");
            }
            if step % 37 == 0 {
                st.check_invariants();
                let docs: Vec<(u64, &[u8])> =
                    model.iter().map(|(id, d)| (*id, d.as_slice())).collect();
                assert_matches(&st, &docs, &[b"ab", b"ca", b"aa", b"abc", b"cc"]);
            }
        }
        st.check_invariants();
    }

    #[test]
    fn export_docs_roundtrip() {
        let mut st = SuffixTree::new();
        st.insert(5, b"five");
        st.insert(3, b"three");
        st.insert(4, b"");
        st.delete(3);
        let docs = st.export_docs();
        assert_eq!(docs, vec![(4, b"".to_vec()), (5, b"five".to_vec())]);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_id_rejected() {
        let mut st = SuffixTree::new();
        st.insert(1, b"a");
        st.insert(1, b"b");
    }
}
