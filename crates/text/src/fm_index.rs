//! The static FM-index: the paper's `(u(n), w(n))`-constructible compressed
//! index `Is`.
//!
//! Answers queries with the two-step method the paper's framework assumes
//! (§1–2): **range-finding** (backward search narrows the suffix-array
//! interval of suffixes starting with `P`) and **locating** (LF-walk to the
//! nearest sampled suffix, cost O(s) per occurrence, where `s` is the
//! sample rate — the paper's space/time trade-off parameter). It also
//! supports **extract** (any text substring in O(s + ℓ) rank operations)
//! and **tSA** (the rank of any suffix, used by deletions).
//!
//! The index is generic over the BWT sequence representation:
//! [`dyndex_succinct::HuffmanWavelet`] gives the `nHk + o(n log σ)` regime
//! of Tables 1–2; [`dyndex_succinct::WaveletMatrix`] the `O(n log σ)`
//! regime. Stands in for Belazzougui–Navarro \[7\] / Barbay et al. \[3\]
//! (see DESIGN.md substitutions).

use crate::bwt::{bwt_from_sa, c_array};
use crate::collection::{ConcatText, Occurrence, SEPARATOR, SIGMA, SYM_OFFSET};
use crate::sais::suffix_array;
use dyndex_succinct::{
    bits::bits_for, BitVec, EliasFano, HuffmanWavelet, IntVec, RankSelect, Sequence, SpaceUsage,
    WaveletMatrix,
};

/// The compressed-space FM-index (Huffman-shaped wavelet over the BWT).
pub type FmIndexCompressed = FmIndex<HuffmanWavelet>;
/// The plain-space FM-index (balanced wavelet matrix over the BWT).
pub type FmIndexPlain = FmIndex<WaveletMatrix>;

/// Borrowed decomposition of an [`FmIndex`] for the persistence layer's
/// encode path (field meanings match the struct's).
#[doc(hidden)]
pub struct FmIndexView<'a, S: Sequence> {
    pub bwt: &'a S,
    pub c: &'a [usize],
    pub marked: &'a RankSelect,
    pub sa_samples: &'a IntVec,
    pub inv_samples: &'a IntVec,
    pub sample_rate: usize,
    pub n: usize,
    pub doc_ids: &'a [u64],
    pub doc_starts: &'a EliasFano,
}

/// Owned parts reassembling an [`FmIndex`] (persistence decode path).
#[doc(hidden)]
pub struct FmIndexParts<S: Sequence> {
    pub bwt: S,
    pub c: Vec<usize>,
    pub marked: RankSelect,
    pub sa_samples: IntVec,
    pub inv_samples: IntVec,
    pub sample_rate: usize,
    pub n: usize,
    pub doc_ids: Vec<u64>,
    pub doc_starts: EliasFano,
}

/// A static full-text index over a document collection.
#[derive(Clone, Debug)]
pub struct FmIndex<S: Sequence> {
    bwt: S,
    /// `c[sym]` = number of text symbols < `sym`.
    c: Vec<usize>,
    /// Marks suffix-array rows whose text position is ≡ 0 (mod s).
    marked: RankSelect,
    /// SA values at marked rows, in row order.
    sa_samples: IntVec,
    /// `inv_samples[j]` = ISA[j·s] (suffix-array row of text position j·s).
    inv_samples: IntVec,
    sample_rate: usize,
    n: usize,
    doc_ids: Vec<u64>,
    doc_starts: EliasFano,
}

impl<S: Sequence> FmIndex<S> {
    /// Builds the index over `docs` with locate-sample rate `s ≥ 1`.
    ///
    /// Construction runs in O(n) (SA-IS) plus O(n log σ) sequence building —
    /// the `u(n)` of the paper's transformations.
    pub fn build(docs: &[(u64, &[u8])], sample_rate: usize) -> Self {
        assert!(sample_rate >= 1, "sample rate must be positive");
        let concat = ConcatText::new(docs);
        Self::from_concat(&concat, sample_rate)
    }

    /// Builds from an already-encoded concatenation.
    pub fn from_concat(concat: &ConcatText, sample_rate: usize) -> Self {
        let text = concat.text();
        let n = text.len();
        let sa = suffix_array(text, SIGMA);
        let bwt_syms = bwt_from_sa(text, &sa);
        let c = c_array(text, SIGMA);
        let bwt = S::build(&bwt_syms, SIGMA);

        let width = bits_for(n.saturating_sub(1) as u64) as usize;
        let mut marked_bits = BitVec::from_elem(n, false);
        let n_inv = n.div_ceil(sample_rate);
        let mut inv_samples = IntVec::with_capacity(width, n_inv);
        // First pass: collect which rows are marked and fill ISA samples.
        let mut inv_tmp = vec![0u64; n_inv];
        for (row, &p) in sa.iter().enumerate() {
            if (p as usize).is_multiple_of(sample_rate) {
                marked_bits.set(row, true);
                inv_tmp[p as usize / sample_rate] = row as u64;
            }
        }
        for &row in &inv_tmp {
            inv_samples.push(row);
        }
        let mut sa_samples = IntVec::with_capacity(width, n / sample_rate + 1);
        for (row, &p) in sa.iter().enumerate() {
            if (p as usize).is_multiple_of(sample_rate) {
                debug_assert!(marked_bits.get(row));
                sa_samples.push(p as u64);
            }
        }
        let marked = RankSelect::new(marked_bits);

        // Re-derive the document directory (cheap, O(ρ)).
        let doc_ids = concat.doc_ids().to_vec();
        let starts: Vec<u64> = (0..concat.num_docs())
            .map(|s| concat.doc_start(s) as u64)
            .collect();
        let doc_starts = EliasFano::new(&starts, n as u64 + 1);

        FmIndex {
            bwt,
            c,
            marked,
            sa_samples,
            inv_samples,
            sample_rate,
            n,
            doc_ids,
            doc_starts,
        }
    }

    /// Borrowed decomposition for the persistence encode path.
    #[doc(hidden)]
    pub fn persist_view(&self) -> FmIndexView<'_, S> {
        FmIndexView {
            bwt: &self.bwt,
            c: &self.c,
            marked: &self.marked,
            sa_samples: &self.sa_samples,
            inv_samples: &self.inv_samples,
            sample_rate: self.sample_rate,
            n: self.n,
            doc_ids: &self.doc_ids,
            doc_starts: &self.doc_starts,
        }
    }

    /// Reassembles from parts (persistence decode path). Returns `Err`
    /// (never panics) on structurally inconsistent input.
    #[doc(hidden)]
    pub fn from_persist_parts(parts: FmIndexParts<S>) -> Result<Self, String> {
        if parts.sample_rate == 0 {
            return Err("fm-index sample rate must be positive".into());
        }
        if parts.bwt.len() != parts.n || parts.marked.len() != parts.n {
            return Err("fm-index bwt/marked length mismatch".into());
        }
        if parts.c.len() != SIGMA as usize + 1 {
            return Err("fm-index C array length mismatch".into());
        }
        if parts.sa_samples.len() != parts.marked.count_ones() {
            return Err("fm-index SA sample count mismatch".into());
        }
        if parts.inv_samples.len() != parts.n.div_ceil(parts.sample_rate) {
            return Err("fm-index ISA sample count mismatch".into());
        }
        if parts.doc_starts.len() != parts.doc_ids.len() {
            return Err("fm-index document directory length mismatch".into());
        }
        Ok(FmIndex {
            bwt: parts.bwt,
            c: parts.c,
            marked: parts.marked,
            sa_samples: parts.sa_samples,
            inv_samples: parts.inv_samples,
            sample_rate: parts.sample_rate,
            n: parts.n,
            doc_ids: parts.doc_ids,
            doc_starts: parts.doc_starts,
        })
    }

    /// Total encoded text length (including separators and terminator).
    #[inline]
    pub fn text_len(&self) -> usize {
        self.n
    }

    /// Total document bytes (excluding separators/terminator).
    #[inline]
    pub fn symbol_count(&self) -> usize {
        self.n - self.num_docs() - 1
    }

    /// Number of documents.
    #[inline]
    pub fn num_docs(&self) -> usize {
        self.doc_ids.len()
    }

    /// Caller-assigned document ids in concatenation order.
    #[inline]
    pub fn doc_ids(&self) -> &[u64] {
        &self.doc_ids
    }

    /// The locate sample rate `s`.
    #[inline]
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }

    /// One LF step: maps the SA row of suffix `T[p..]` to the row of
    /// `T[p-1..]`.
    #[inline]
    pub fn lf(&self, row: usize) -> usize {
        let sym = self.bwt.access(row);
        self.c[sym as usize] + self.bwt.rank(sym, row)
    }

    /// Backward search: the suffix-array interval `[l, r)` of suffixes
    /// starting with `pattern` (encoded symbols). O(|P|) rank pairs.
    pub fn backward_search(&self, pattern: &[u32]) -> Option<(usize, usize)> {
        let mut l = 0usize;
        let mut r = self.n;
        for &sym in pattern.iter().rev() {
            if sym >= SIGMA {
                return None;
            }
            let base = self.c[sym as usize];
            l = base + self.bwt.rank(sym, l);
            r = base + self.bwt.rank(sym, r);
            if l >= r {
                return None;
            }
        }
        Some((l, r))
    }

    /// Range-finding on a byte pattern.
    pub fn find_range(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        self.backward_search(&crate::collection::encode_pattern(pattern))
    }

    /// Number of occurrences of `pattern` across all documents.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.find_range(pattern).map_or(0, |(l, r)| r - l)
    }

    /// Text position of suffix-array row `row` (the paper's *locate*,
    /// O(s) LF steps).
    pub fn locate_row(&self, row: usize) -> usize {
        let mut row = row;
        let mut steps = 0usize;
        while !self.marked.get(row) {
            row = self.lf(row);
            steps += 1;
        }
        let base = self.sa_samples.get(self.marked.rank1(row)) as usize;
        base + steps
    }

    /// Resolves a text position into `(slot, Occurrence)`.
    pub fn resolve(&self, pos: usize) -> (usize, Occurrence) {
        let (slot, start) = self
            .doc_starts
            .predecessor(pos as u64)
            .expect("position before first document");
        (
            slot,
            Occurrence {
                doc: self.doc_ids[slot],
                offset: pos - start as usize,
            },
        )
    }

    /// All occurrences of `pattern` (unordered).
    pub fn locate(&self, pattern: &[u8]) -> Vec<Occurrence> {
        match self.find_range(pattern) {
            None => Vec::new(),
            Some((l, r)) => (l..r)
                .map(|row| self.resolve(self.locate_row(row)).1)
                .collect(),
        }
    }

    /// ISA: the suffix-array row of text position `pos` (the paper's
    /// `tSA`, O(s) LF steps).
    pub fn suffix_rank(&self, pos: usize) -> usize {
        assert!(pos < self.n, "position {pos} out of range {}", self.n);
        // Find the nearest sampled text position ≥ pos, then LF-walk back.
        let j = pos.div_ceil(self.sample_rate);
        let (mut p, mut row) = if j < self.inv_samples.len() {
            (j * self.sample_rate, self.inv_samples.get(j) as usize)
        } else {
            // Beyond the last sample: the terminator suffix T[n-1..] is the
            // smallest suffix, so its row is 0.
            (self.n - 1, 0usize)
        };
        while p > pos {
            row = self.lf(row);
            p -= 1;
        }
        row
    }

    /// Extracts encoded symbols `text[a..b)` in O(s + (b−a)) LF steps.
    pub fn extract_symbols(&self, a: usize, b: usize) -> Vec<u32> {
        assert!(a <= b && b <= self.n, "bad extract range {a}..{b}");
        if a == b {
            return Vec::new();
        }
        // Start from a known row at position p ≥ b − 1 and walk left.
        // suffix_rank(b-1) gives ISA[b-1]; BWT[ISA[p]] = T[p-1], so to read
        // T[b-1] we need ISA[b]. Handle b == n via the terminator (T[n-1]=0).
        let mut out = vec![0u32; b - a];
        let mut k = b;
        let mut row = if b == self.n {
            out[b - a - 1] = crate::collection::TERMINATOR;
            k = b - 1;
            0 // ISA[n-1]
        } else {
            self.suffix_rank(b)
        };
        while k > a {
            let sym = self.bwt.access(row);
            out[k - 1 - a] = sym;
            row = self.c[sym as usize] + self.bwt.rank(sym, row);
            k -= 1;
        }
        out
    }

    /// Extracts `len` bytes of document `slot` starting at byte `offset`
    /// (clamped to the document length).
    pub fn extract(&self, slot: usize, offset: usize, len: usize) -> Vec<u8> {
        let start = self.doc_starts.get(slot) as usize;
        let dlen = self.doc_len(slot);
        let a = start + offset.min(dlen);
        let b = start + (offset + len).min(dlen);
        self.extract_symbols(a, b)
            .into_iter()
            .map(|s| (s - SYM_OFFSET) as u8)
            .collect()
    }

    /// Byte length of document `slot`.
    pub fn doc_len(&self, slot: usize) -> usize {
        let start = self.doc_starts.get(slot) as usize;
        let end = if slot + 1 < self.num_docs() {
            self.doc_starts.get(slot + 1) as usize
        } else {
            self.n - 1
        };
        end - start - 1
    }

    /// Start position of document `slot` in the flat text.
    pub fn doc_start(&self, slot: usize) -> usize {
        self.doc_starts.get(slot) as usize
    }

    /// Suffix-array rows of every suffix starting inside document `slot`
    /// (at byte positions), i.e. the rows a deletion must mark dead.
    ///
    /// One `suffix_rank` plus O(doc length) LF steps — O(1) amortized per
    /// symbol, matching the paper's deletion budget.
    pub fn doc_suffix_rows(&self, slot: usize) -> Vec<usize> {
        let start = self.doc_start(slot);
        let dlen = self.doc_len(slot);
        let mut rows = Vec::with_capacity(dlen);
        // Row of the separator suffix, then LF-walk to cover the doc.
        let mut row = self.suffix_rank(start + dlen);
        debug_assert_eq!(self.bwt_symbol_at_pos(start + dlen), SEPARATOR);
        for _ in 0..dlen {
            row = self.lf(row);
            rows.push(row);
        }
        rows.reverse();
        rows
    }

    #[cfg(debug_assertions)]
    fn bwt_symbol_at_pos(&self, pos: usize) -> u32 {
        self.extract_symbols(pos, pos + 1)[0]
    }
    #[cfg(not(debug_assertions))]
    fn bwt_symbol_at_pos(&self, _pos: usize) -> u32 {
        SEPARATOR
    }

    /// Reconstructs every document (id, bytes) — used when an index is
    /// purged/merged and its survivors move to a new index. O(n) LF steps.
    pub fn extract_all_docs(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = self
            .doc_ids
            .iter()
            .enumerate()
            .map(|(slot, &id)| (id, Vec::with_capacity(self.doc_len(slot))))
            .collect();
        if self.n <= 1 {
            return out;
        }
        // Walk the whole text right-to-left from the terminator row.
        let mut row = 0usize; // ISA[n-1]: terminator suffix is smallest
        let mut pos = self.n - 1;
        let mut bytes_rev: Vec<u32> = Vec::with_capacity(self.n - 1);
        while pos > 0 {
            let sym = self.bwt.access(row);
            bytes_rev.push(sym);
            row = self.c[sym as usize] + self.bwt.rank(sym, row);
            pos -= 1;
        }
        bytes_rev.reverse();
        // bytes_rev = text[0..n-1]; split on separators.
        let mut slot = 0usize;
        for &sym in &bytes_rev {
            if sym == SEPARATOR {
                slot += 1;
            } else {
                out[slot].1.push((sym - SYM_OFFSET) as u8);
            }
        }
        debug_assert_eq!(slot, self.doc_ids.len());
        out
    }
}

impl<S: Sequence> SpaceUsage for FmIndex<S> {
    fn heap_bytes(&self) -> usize {
        self.bwt.heap_bytes()
            + self.c.heap_bytes()
            + self.marked.heap_bytes()
            + self.sa_samples.heap_bytes()
            + self.inv_samples.heap_bytes()
            + self.doc_ids.heap_bytes()
            + self.doc_starts.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_occurrences(docs: &[(u64, &[u8])], pattern: &[u8]) -> Vec<Occurrence> {
        let mut out = Vec::new();
        for (id, d) in docs {
            if pattern.is_empty() || pattern.len() > d.len() {
                continue;
            }
            for off in 0..=(d.len() - pattern.len()) {
                if &d[off..off + pattern.len()] == pattern {
                    out.push(Occurrence {
                        doc: *id,
                        offset: off,
                    });
                }
            }
        }
        out.sort();
        out
    }

    fn check_index<S: Sequence>(docs: &[(u64, &[u8])], patterns: &[&[u8]], s: usize) {
        let fm = FmIndex::<S>::build(docs, s);
        for &p in patterns {
            let want = naive_occurrences(docs, p);
            assert_eq!(
                fm.count(p),
                want.len(),
                "count({:?})",
                String::from_utf8_lossy(p)
            );
            let mut got = fm.locate(p);
            got.sort();
            assert_eq!(got, want, "locate({:?})", String::from_utf8_lossy(p));
        }
        // extraction round-trips
        for (slot, (_, d)) in docs.iter().enumerate() {
            assert_eq!(fm.doc_len(slot), d.len());
            assert_eq!(&fm.extract(slot, 0, d.len()), d, "extract full doc {slot}");
            if d.len() >= 3 {
                assert_eq!(&fm.extract(slot, 1, d.len() - 2), &d[1..d.len() - 1]);
            }
            // clamped over-reads
            assert_eq!(fm.extract(slot, d.len(), 10), Vec::<u8>::new());
        }
        // full reconstruction
        let rebuilt = fm.extract_all_docs();
        assert_eq!(rebuilt.len(), docs.len());
        for ((id, bytes), (wid, wbytes)) in rebuilt.iter().zip(docs.iter()) {
            assert_eq!(id, wid);
            assert_eq!(bytes.as_slice(), *wbytes);
        }
    }

    const DOCS: &[(u64, &[u8])] = &[
        (1, b"the quick brown fox jumps over the lazy dog"),
        (2, b"pack my box with five dozen liquor jugs"),
        (3, b"the five boxing wizards jump quickly"),
        (4, b""),
        (5, b"aaaaa"),
    ];

    const PATTERNS: &[&[u8]] = &[
        b"the", b"qu", b"five", b"aa", b"a", b"zzz", b"jump", b"box", b" ",
    ];

    #[test]
    fn compressed_index_matches_naive() {
        check_index::<HuffmanWavelet>(DOCS, PATTERNS, 4);
    }

    #[test]
    fn plain_index_matches_naive() {
        check_index::<WaveletMatrix>(DOCS, PATTERNS, 4);
    }

    #[test]
    fn sample_rates() {
        for s in [1, 2, 7, 16, 64] {
            check_index::<HuffmanWavelet>(DOCS, &[b"the", b"a"], s);
        }
    }

    #[test]
    fn suffix_rank_is_inverse_of_locate() {
        let fm = FmIndexCompressed::build(DOCS, 4);
        for pos in (0..fm.text_len() - 1).step_by(5) {
            let row = fm.suffix_rank(pos);
            assert_eq!(fm.locate_row(row), pos, "ISA/SA mismatch at {pos}");
        }
    }

    #[test]
    fn doc_suffix_rows_cover_doc() {
        let fm = FmIndexCompressed::build(DOCS, 4);
        for slot in 0..fm.num_docs() {
            let rows = fm.doc_suffix_rows(slot);
            assert_eq!(rows.len(), fm.doc_len(slot));
            let start = fm.doc_start(slot);
            for (i, &row) in rows.iter().enumerate() {
                assert_eq!(fm.locate_row(row), start + i, "slot {slot} offset {i}");
            }
        }
    }

    #[test]
    fn single_doc_single_byte() {
        let docs: &[(u64, &[u8])] = &[(42, b"x")];
        let fm = FmIndexCompressed::build(docs, 2);
        assert_eq!(fm.count(b"x"), 1);
        assert_eq!(fm.count(b"y"), 0);
        assert_eq!(fm.locate(b"x"), vec![Occurrence { doc: 42, offset: 0 }]);
    }

    #[test]
    fn repetitive_cross_doc_counts() {
        let docs: &[(u64, &[u8])] = &[(1, b"abab"), (2, b"ababab"), (3, b"b")];
        let fm = FmIndexCompressed::build(docs, 3);
        assert_eq!(fm.count(b"ab"), 2 + 3);
        assert_eq!(fm.count(b"ba"), 1 + 2);
        assert_eq!(fm.count(b"b"), 2 + 3 + 1);
        // no cross-document phantom matches
        assert_eq!(fm.count(b"abb"), 0);
        assert_eq!(fm.count(b"bab"), 1 + 2);
    }
}
