//! Property-based tests: SA-IS vs naive sort, FM-index and suffix tree vs
//! a brute-force matcher, extraction round-trips.

use dyndex_text::sais::{suffix_array, suffix_array_naive};
use dyndex_text::{FmIndexCompressed, Occurrence, SaIndex, SuffixTree};
use proptest::prelude::*;

fn doc_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabets maximize repeated substrings (the adversarial case
    // for suffix structures).
    proptest::collection::vec(proptest::sample::select(b"abc".to_vec()), 0..60)
}

fn naive_find(docs: &[(u64, Vec<u8>)], pattern: &[u8]) -> Vec<Occurrence> {
    let mut out = Vec::new();
    if pattern.is_empty() {
        return out;
    }
    for (id, d) in docs {
        if pattern.len() > d.len() {
            continue;
        }
        for off in 0..=(d.len() - pattern.len()) {
            if &d[off..off + pattern.len()] == pattern {
                out.push(Occurrence {
                    doc: *id,
                    offset: off,
                });
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sais_matches_naive(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut text: Vec<u32> = bytes.iter().map(|&b| b as u32 + 2).collect();
        text.push(0);
        prop_assert_eq!(suffix_array(&text, 258), suffix_array_naive(&text));
    }

    #[test]
    fn sais_small_alphabet(bytes in proptest::collection::vec(0u8..3, 0..600)) {
        let mut text: Vec<u32> = bytes.iter().map(|&b| b as u32 + 2).collect();
        text.push(0);
        prop_assert_eq!(suffix_array(&text, 258), suffix_array_naive(&text));
    }

    #[test]
    fn fm_index_matches_naive(
        docs_raw in proptest::collection::vec(doc_strategy(), 1..8),
        pattern in proptest::collection::vec(proptest::sample::select(b"abc".to_vec()), 1..6),
        s in 1usize..16,
    ) {
        let docs: Vec<(u64, Vec<u8>)> = docs_raw.into_iter().enumerate()
            .map(|(i, d)| (i as u64, d)).collect();
        let refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
        let fm = FmIndexCompressed::build(&refs, s);
        let want = naive_find(&docs, &pattern);
        prop_assert_eq!(fm.count(&pattern), want.len());
        let mut got = fm.locate(&pattern);
        got.sort();
        prop_assert_eq!(got, want);
        // extraction round-trips
        for (slot, (_, d)) in docs.iter().enumerate() {
            prop_assert_eq!(&fm.extract(slot, 0, d.len()), d);
        }
    }

    #[test]
    fn sa_index_agrees_with_fm(
        docs_raw in proptest::collection::vec(doc_strategy(), 1..6),
        pattern in proptest::collection::vec(proptest::sample::select(b"abc".to_vec()), 1..5),
    ) {
        let docs: Vec<(u64, Vec<u8>)> = docs_raw.into_iter().enumerate()
            .map(|(i, d)| (i as u64, d)).collect();
        let refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
        let fm = FmIndexCompressed::build(&refs, 4);
        let sa = SaIndex::build(&refs);
        prop_assert_eq!(sa.count(&pattern), fm.count(&pattern));
        let mut a = sa.locate(&pattern);
        let mut b = fm.locate(&pattern);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn suffix_tree_insert_delete_query(
        docs_raw in proptest::collection::vec(doc_strategy(), 1..10),
        deletions in proptest::collection::vec(any::<proptest::sample::Index>(), 0..6),
        pattern in proptest::collection::vec(proptest::sample::select(b"abc".to_vec()), 1..5),
    ) {
        let mut docs: Vec<(u64, Vec<u8>)> = docs_raw.into_iter().enumerate()
            .map(|(i, d)| (i as u64, d)).collect();
        let mut st = SuffixTree::new();
        for (id, d) in &docs {
            st.insert(*id, d);
        }
        for del in &deletions {
            if docs.is_empty() { break; }
            let i = del.index(docs.len());
            let (id, bytes) = docs.remove(i);
            prop_assert_eq!(st.delete(id), Some(bytes));
        }
        st.check_invariants();
        let want = naive_find(&docs, &pattern);
        let mut got = st.find(&pattern);
        got.sort();
        prop_assert_eq!(got, want);
        prop_assert_eq!(st.count(&pattern), st.find(&pattern).len());
    }

    #[test]
    fn fm_suffix_rank_inverts_locate(
        doc in proptest::collection::vec(proptest::sample::select(b"ab".to_vec()), 1..80),
        s in 1usize..12,
    ) {
        let refs: Vec<(u64, &[u8])> = vec![(1, doc.as_slice())];
        let fm = FmIndexCompressed::build(&refs, s);
        for pos in 0..fm.text_len() - 1 {
            prop_assert_eq!(fm.locate_row(fm.suffix_rank(pos)), pos);
        }
    }
}
