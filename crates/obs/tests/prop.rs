//! Property tests for the histogram core (satellite: bucket bounds,
//! percentile monotonicity, concurrent no-loss, merge == concat).

use std::sync::Arc;
use std::thread;

use dyndex_obs::{bucket_bounds, bucket_of, Histogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every recorded value lands in a bucket whose bounds contain it.
    #[test]
    fn values_land_within_bucket_bounds(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        for &v in &values {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            prop_assert!(lo <= v && v <= hi, "v={} outside [{}, {}]", v, lo, hi);
        }
        let h = Histogram::new(1);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.snapshot().count(), values.len() as u64);
    }

    /// Percentiles are monotone non-decreasing in q and never exceed max.
    #[test]
    fn percentiles_monotone(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let h = Histogram::new(2);
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let true_max = values.iter().copied().max().unwrap();
        prop_assert_eq!(s.max(), true_max);
        let mut prev = 0u64;
        for i in 0..=100u32 {
            let p = s.percentile(f64::from(i) / 100.0);
            prop_assert!(p >= prev, "percentile dropped at q={}: {} < {}", i, p, prev);
            prop_assert!(p <= true_max);
            prev = p;
        }
        prop_assert_eq!(s.percentile(1.0), true_max);
    }

    /// Concurrent recording from N threads loses no counts and no sum.
    #[test]
    fn concurrent_recording_loses_nothing(
        per_thread in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 1..50), 2..6)
    ) {
        let h = Arc::new(Histogram::new(per_thread.len()));
        let expect_count: u64 = per_thread.iter().map(|v| v.len() as u64).sum();
        let expect_sum: u64 = per_thread
            .iter()
            .flatten()
            .fold(0u64, |acc, &v| acc.wrapping_add(v));
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|values| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for v in values {
                        h.record(v);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), expect_count);
        prop_assert_eq!(s.sum(), expect_sum);
    }

    /// Merging two snapshots equals snapshotting the concatenated stream.
    #[test]
    fn merge_equals_concatenated_stream(
        a in proptest::collection::vec(any::<u64>(), 0..150),
        b in proptest::collection::vec(any::<u64>(), 0..150),
    ) {
        let ha = Histogram::new(1);
        let hb = Histogram::new(3);
        let hall = Histogram::new(2);
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let all = hall.snapshot();
        prop_assert_eq!(merged.count(), all.count());
        prop_assert_eq!(merged.sum(), all.sum());
        prop_assert_eq!(merged.max(), all.max());
        for i in 0..=20u32 {
            let q = f64::from(i) / 20.0;
            prop_assert_eq!(merged.percentile(q), all.percentile(q));
        }
    }
}
