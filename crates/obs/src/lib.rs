//! Zero-dependency telemetry for dyndex: lock-free metrics, log-bucketed
//! latency histograms, bounded query tracing, and Prometheus-style text
//! exposition.
//!
//! Like the `Persist` codec, this crate is std-only by design — the registry
//! must work offline, embedded in benches and tests, with nothing to vendor.
//!
//! Three layers:
//!
//! - **Primitives** ([`Counter`], [`Gauge`], [`Histogram`]): plain atomics,
//!   wait-free recording, no allocation on the hot path. Histograms stripe
//!   their buckets (per thread or per shard via [`Histogram::record_at`]) so
//!   concurrent recorders don't share cache lines, and snapshots merge
//!   losslessly ([`HistogramSnapshot::merge`]).
//! - **Registry** ([`MetricsRegistry`]): named get-or-create handles plus
//!   [`MetricsRegistry::render_text`] exposition. Re-registering a name
//!   returns the same handle — a restored store pointed at the old registry
//!   keeps accumulating into the same series.
//! - **Tracer** ([`Tracer`]): a bounded ring buffer of per-query
//!   [`QuerySpan`]s (route → queue-wait → shard-execute → merge, with the
//!   view epoch range the read served from).
//! - **Flight recorder** ([`FlightRecorder`]): always-on causal span trees
//!   ([`Span`] with `id`/`parent` links) covering foreground queries *and*
//!   background work — rebuilds, installs, WAL appends/fsyncs, snapshot
//!   freezes/serializations, epoch-GC — in a wait-free seqlock ring, with a
//!   threshold-gated slow-op log that keeps full trees for slow operations.
//! - **Health** ([`HealthReport`]): the typed Ok/Degraded/Unhealthy verdict
//!   vocabulary the store's watchdog folds its detector findings into.
//! - **Admin endpoint** ([`AdminServer`]): a std-only `GET`-route HTTP
//!   listener serving `/metrics`, `/health`, `/spans`, `/slow` with graceful
//!   shutdown on drop.
//!
//! ```
//! use dyndex_obs::{MetricsRegistry, Unit};
//!
//! let registry = MetricsRegistry::new();
//! let latency = registry.histogram("query_nanos", "query latency", Unit::Nanos, 8);
//! latency.record(1_200);
//! latency.record(3_400);
//! let snap = latency.snapshot();
//! assert_eq!(snap.count(), 2);
//! assert!(snap.percentile(0.99) >= 3_400);
//! println!("{}", registry.render_text());
//! ```

mod flight;
mod health;
mod metrics;
mod net;
mod recorder;
mod registry;
mod server;
mod trace;

pub use flight::{FlightRecorder, Span, SpanKind};
pub use health::{HealthReason, HealthReport, HealthStatus};
pub use metrics::{bucket_bounds, bucket_of, Counter, Gauge, Histogram, HistogramSnapshot};
pub use net::DeadlineReader;
pub use recorder::{NoopRecorder, Recorder};
pub use registry::{MetricsRegistry, Unit};
pub use server::{AdminHandler, AdminResponse, AdminServer};
pub use trace::{QueryKind, QuerySpan, Tracer};
