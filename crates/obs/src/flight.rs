//! The flight recorder: a bounded lock-free buffer of hierarchical
//! [`Span`]s covering foreground queries *and* every kind of background
//! work (rebuilds, installs, WAL appends and fsyncs, snapshot freezes
//! and serializations, epoch-GC passes).
//!
//! PR 7's [`Tracer`](crate::Tracer) records one flat latency breakdown
//! per query. The flight recorder generalizes it: every span carries a
//! `span_id`/`parent_id` pair, so a query span has per-shard queue-wait
//! and execute *children* recorded by the pool workers themselves, and a
//! background snapshot has per-shard freeze/serialize children — causal
//! trees for work that never touches the query path.
//!
//! ## Recording is wait-free
//!
//! Spans land in per-stripe rings of fixed-size slots. A writer claims a
//! ticket with one `fetch_add`, then publishes the span through a
//! seqlock: the slot's sequence goes odd, the nine span words are stored
//! as relaxed atomics, and the sequence goes even again. Readers accept
//! a slot only when they observe the same even sequence before and after
//! copying the words, so a torn (mid-write) span is skipped, never
//! returned. No locks, no allocation, no waiting on the record path;
//! old spans are simply overwritten when the ring wraps.
//!
//! ## The slow-op log
//!
//! Full trees are retained only for operations beyond a configurable
//! latency bound ([`FlightRecorder::set_slow_threshold`]): when a *root*
//! span finishes over the threshold, its children are collected from the
//! ring and the whole tree is pushed into a small bounded log — the
//! flight recorder's answer to "what was that one slow query doing".

use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What a span measured. Foreground query kinds mirror
/// [`QueryKind`](crate::QueryKind); the rest are background work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A multi-shard `count` query (root span).
    Count,
    /// A multi-shard `find` query (root span).
    Find,
    /// A multi-shard `find_limit` query (root span).
    FindLimit,
    /// Child of a query: submit-to-pickup wait in one shard's worker
    /// queue.
    QueueWait,
    /// Child of a query: one shard's execution against its published
    /// view.
    ShardExecute,
    /// A static rebuild/merge job (Transformation 2 background work).
    Rebuild,
    /// A finished level job installed into the shard.
    LevelInstall,
    /// A finished top-maintenance job installed into the shard.
    TopInstall,
    /// One write-ahead-log record append.
    WalAppend,
    /// One write-ahead-log fsync.
    WalFsync,
    /// A whole snapshot generation (root span).
    Snapshot,
    /// Child of a snapshot: one shard quiesced and frozen.
    ShardFreeze,
    /// Child of a snapshot: one shard's changed levels serialized.
    ShardSerialize,
    /// One epoch-reclamation pass over retired shard views.
    EpochGc,
    /// One remote request served by the wire-protocol server (root
    /// span; the query it triggers contributes its own child spans).
    ServeRequest,
    /// One bulk-ingested chunk built straight to a static level and
    /// installed (the stream-to-static fast path).
    BulkBuild,
}

impl SpanKind {
    /// Stable wire code (used by the lock-free slot encoding).
    fn code(self) -> u64 {
        match self {
            SpanKind::Count => 1,
            SpanKind::Find => 2,
            SpanKind::FindLimit => 3,
            SpanKind::QueueWait => 4,
            SpanKind::ShardExecute => 5,
            SpanKind::Rebuild => 6,
            SpanKind::LevelInstall => 7,
            SpanKind::TopInstall => 8,
            SpanKind::WalAppend => 9,
            SpanKind::WalFsync => 10,
            SpanKind::Snapshot => 11,
            SpanKind::ShardFreeze => 12,
            SpanKind::ShardSerialize => 13,
            SpanKind::EpochGc => 14,
            SpanKind::ServeRequest => 15,
            SpanKind::BulkBuild => 16,
        }
    }

    fn from_code(code: u64) -> Option<SpanKind> {
        Some(match code {
            1 => SpanKind::Count,
            2 => SpanKind::Find,
            3 => SpanKind::FindLimit,
            4 => SpanKind::QueueWait,
            5 => SpanKind::ShardExecute,
            6 => SpanKind::Rebuild,
            7 => SpanKind::LevelInstall,
            8 => SpanKind::TopInstall,
            9 => SpanKind::WalAppend,
            10 => SpanKind::WalFsync,
            11 => SpanKind::Snapshot,
            12 => SpanKind::ShardFreeze,
            13 => SpanKind::ShardSerialize,
            14 => SpanKind::EpochGc,
            15 => SpanKind::ServeRequest,
            16 => SpanKind::BulkBuild,
            _ => return None,
        })
    }

    /// Snake-case name, as rendered by `/spans`.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Count => "count",
            SpanKind::Find => "find",
            SpanKind::FindLimit => "find_limit",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::ShardExecute => "execute",
            SpanKind::Rebuild => "rebuild",
            SpanKind::LevelInstall => "level_install",
            SpanKind::TopInstall => "top_install",
            SpanKind::WalAppend => "wal_append",
            SpanKind::WalFsync => "wal_fsync",
            SpanKind::Snapshot => "snapshot",
            SpanKind::ShardFreeze => "freeze",
            SpanKind::ShardSerialize => "serialize",
            SpanKind::EpochGc => "epoch_gc",
            SpanKind::ServeRequest => "serve",
            SpanKind::BulkBuild => "bulk_build",
        }
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One unit of recorded work: a node in a causal span tree.
///
/// `id` is nonzero only for spans that can have children (roots hand
/// their id to the workers that record under them); `parent` is zero for
/// roots. Timestamps are nanoseconds since the owning recorder's base
/// instant, so spans from different layers order consistently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// This span's id (0 for leaf spans that never parent anything).
    pub id: u64,
    /// Parent span id (0 = this is a root span).
    pub parent: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// The shard the work belonged to, when it was shard-scoped.
    pub shard: Option<usize>,
    /// Start time, nanoseconds since [`FlightRecorder::now_nanos`]'s
    /// zero point.
    pub start_nanos: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_nanos: u64,
    /// Smallest view epoch touched (0 when not applicable).
    pub epoch_lo: u64,
    /// Largest view epoch touched (0 when not applicable).
    pub epoch_hi: u64,
    /// Kind-specific payload: result count for queries, bytes for WAL
    /// appends and serializations, freed values for GC passes.
    pub detail: u64,
}

impl Span {
    /// A root span (no parent) with a fresh `id` slot to hand children.
    pub fn root(id: u64, kind: SpanKind) -> Span {
        Span {
            id,
            parent: 0,
            kind,
            shard: None,
            start_nanos: 0,
            duration_nanos: 0,
            epoch_lo: 0,
            epoch_hi: 0,
            detail: 0,
        }
    }

    /// A leaf child of `parent`.
    pub fn child(parent: u64, kind: SpanKind) -> Span {
        Span {
            id: 0,
            parent,
            kind,
            shard: None,
            start_nanos: 0,
            duration_nanos: 0,
            epoch_lo: 0,
            epoch_hi: 0,
            detail: 0,
        }
    }

    fn render_into(&self, out: &mut String, indent: &str) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{indent}{} id={} parent={} shard=",
            self.kind, self.id, self.parent
        );
        match self.shard {
            Some(s) => {
                let _ = write!(out, "{s}");
            }
            None => out.push('-'),
        }
        let _ = writeln!(
            out,
            " start={}ns dur={}ns epochs={}..={} detail={}",
            self.start_nanos, self.duration_nanos, self.epoch_lo, self.epoch_hi, self.detail
        );
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.render_into(&mut s, "");
        f.write_str(s.trim_end())
    }
}

/// Number of `u64` words a span encodes to inside a slot.
const SPAN_WORDS: usize = 9;
/// `shard` sentinel for "not shard-scoped".
const NO_SHARD: u64 = u64::MAX;

fn encode(span: &Span) -> [u64; SPAN_WORDS] {
    [
        span.kind.code(),
        span.shard.map_or(NO_SHARD, |s| s as u64),
        span.id,
        span.parent,
        span.start_nanos,
        span.duration_nanos,
        span.epoch_lo,
        span.epoch_hi,
        span.detail,
    ]
}

fn decode(words: [u64; SPAN_WORDS]) -> Option<Span> {
    Some(Span {
        kind: SpanKind::from_code(words[0])?,
        shard: (words[1] != NO_SHARD).then_some(words[1] as usize),
        id: words[2],
        parent: words[3],
        start_nanos: words[4],
        duration_nanos: words[5],
        epoch_lo: words[6],
        epoch_hi: words[7],
        detail: words[8],
    })
}

/// One seqlock-protected span slot. `seq == 0` means never written; odd
/// means a write is in progress; even `2t + 2` means ticket `t`'s span
/// is fully published.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Publishes `span` under ticket `t`. Wait-free; a concurrent writer
    /// on the same slot (tickets a full ring apart) only makes readers
    /// reject the slot, never blocks.
    fn write(&self, t: u64, span: &Span) {
        self.seq.store(2 * t + 1, Ordering::Relaxed);
        // The release fence orders the odd marker before the payload
        // stores, so a reader that observes any payload word (via its
        // own acquire fence) also observes at least the odd sequence —
        // its before/after sequence check then rejects the slot.
        fence(Ordering::Release);
        for (w, v) in self.words.iter().zip(encode(span)) {
            w.store(v, Ordering::Relaxed);
        }
        self.seq.store(2 * t + 2, Ordering::Release);
    }

    /// Returns the slot's span if a fully published one is observable.
    fn read(&self) -> Option<Span> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        let mut words = [0u64; SPAN_WORDS];
        for (out, w) in words.iter_mut().zip(self.words.iter()) {
            *out = w.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 {
            return None; // torn: a writer overtook us mid-copy
        }
        decode(words)
    }
}

/// One recording lane: an independent ring with its own ticket counter,
/// so pool workers recording per-shard child spans never contend on a
/// shared cursor.
struct Stripe {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Stripe {
    fn new(capacity: usize) -> Stripe {
        Stripe {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    fn record(&self, span: &Span) {
        let t = self.head.fetch_add(1, Ordering::Relaxed);
        self.slots[(t % self.slots.len() as u64) as usize].write(t, span);
    }
}

/// Picks a stable per-thread stripe index (same scheme as the striped
/// histograms: threads spread across lanes, no shared cache line).
fn thread_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    STRIPE.with(|s| *s)
}

/// How many retained slow-op trees the log keeps.
const SLOW_LOG_CAPACITY: usize = 32;

/// Always-on recorder of causal span trees with a threshold-gated
/// slow-op log. See the module docs for the design; recording is
/// wait-free and never allocates.
///
/// ```
/// use dyndex_obs::{FlightRecorder, Span, SpanKind};
/// use std::time::Duration;
///
/// let rec = FlightRecorder::new(256, 4);
/// rec.set_slow_threshold(Duration::from_nanos(500));
///
/// // A root query span with one per-shard execute child.
/// let root = rec.next_span_id();
/// rec.record(Span {
///     shard: Some(2),
///     start_nanos: 10,
///     duration_nanos: 700,
///     epoch_lo: 5,
///     epoch_hi: 5,
///     ..Span::child(root, SpanKind::ShardExecute)
/// });
/// rec.finish_root(Span {
///     start_nanos: 0,
///     duration_nanos: 900, // over the 500ns bound -> retained as a tree
///     detail: 3,
///     ..Span::root(root, SpanKind::Count)
/// });
///
/// assert_eq!(rec.recorded(), 2);
/// let slow = rec.slow_ops();
/// assert_eq!(slow.len(), 1);
/// assert_eq!(slow[0].len(), 2); // root + its child
/// assert!(rec.render_spans().contains("count"));
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Box<[Stripe]>,
    base: Instant,
    next_id: AtomicU64,
    slow_threshold_nanos: AtomicU64,
    slow: Mutex<VecDeque<Vec<Span>>>,
    /// Slow trees lost because the log was contended at capture time.
    slow_dropped: AtomicU64,
}

impl std::fmt::Debug for Stripe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stripe")
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder retaining roughly `capacity` spans across
    /// `stripes` recording lanes (per-stripe capacity is rounded up to a
    /// power of two, minimum 16). The slow-op threshold starts at
    /// [`Duration::MAX`] — nothing is retained until
    /// [`FlightRecorder::set_slow_threshold`] lowers it.
    pub fn new(capacity: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        let per_stripe = (capacity / stripes).max(16).next_power_of_two();
        FlightRecorder {
            stripes: (0..stripes).map(|_| Stripe::new(per_stripe)).collect(),
            base: Instant::now(),
            next_id: AtomicU64::new(1),
            slow_threshold_nanos: AtomicU64::new(u64::MAX),
            slow: Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAPACITY)),
            slow_dropped: AtomicU64::new(0),
        }
    }

    /// Total spans the ring can hold before overwriting.
    pub fn capacity(&self) -> usize {
        self.stripes.iter().map(|s| s.slots.len()).sum()
    }

    /// Nanoseconds since this recorder's zero point — the time base
    /// every span's `start_nanos` is measured in.
    pub fn now_nanos(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }

    /// Allocates a fresh span id (for roots that will parent children).
    pub fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one span on this thread's stripe. Wait-free.
    pub fn record(&self, span: Span) {
        let mask = self.stripes.len() - 1;
        self.stripes[thread_stripe() & mask].record(&span);
    }

    /// Records one span on the stripe selected by `hint` (e.g. a shard
    /// index), keeping already-partitioned recorders contention-free.
    pub fn record_at(&self, hint: usize, span: Span) {
        let mask = self.stripes.len() - 1;
        self.stripes[hint & mask].record(&span);
    }

    /// Records a finished *root* span and, when its duration is at or
    /// over the slow-op threshold, captures the full tree (root plus
    /// every child still in the ring) into the slow-op log.
    pub fn finish_root(&self, span: Span) {
        self.record(span);
        if span.duration_nanos >= self.slow_threshold_nanos.load(Ordering::Relaxed) {
            let mut tree = vec![span];
            tree.extend(self.recent().into_iter().filter(|s| s.parent == span.id));
            tree.sort_by_key(|s| (s.parent, s.start_nanos));
            match self.slow.try_lock() {
                Ok(mut slow) => {
                    if slow.len() == SLOW_LOG_CAPACITY {
                        slow.pop_front();
                    }
                    slow.push_back(tree);
                }
                Err(_) => {
                    self.slow_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Slow-op trees lost to log contention at capture time.
    pub fn slow_dropped(&self) -> u64 {
        self.slow_dropped.load(Ordering::Relaxed)
    }

    /// Sets the latency bound at or above which a finished root span's
    /// full tree is retained in the slow-op log.
    pub fn set_slow_threshold(&self, bound: Duration) {
        let nanos = u64::try_from(bound.as_nanos()).unwrap_or(u64::MAX);
        self.slow_threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The current slow-op latency bound.
    pub fn slow_threshold(&self) -> Duration {
        Duration::from_nanos(self.slow_threshold_nanos.load(Ordering::Relaxed))
    }

    /// Every span currently observable in the ring, sorted by start
    /// time. Torn (mid-write) slots are skipped, never returned.
    pub fn recent(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .stripes
            .iter()
            .flat_map(|stripe| stripe.slots.iter().filter_map(Slot::read))
            .collect();
        spans.sort_by_key(|s| s.start_nanos);
        spans
    }

    /// The retained slow-op trees, oldest first. Each tree is the root
    /// span followed by its children sorted by start time.
    pub fn slow_ops(&self) -> Vec<Vec<Span>> {
        self.slow.lock().unwrap().iter().cloned().collect()
    }

    /// Renders the ring as text: root spans (oldest first) with their
    /// children indented beneath them — the `/spans` admin payload.
    pub fn render_spans(&self) -> String {
        let spans = self.recent();
        let mut out = String::new();
        for root in spans.iter().filter(|s| s.parent == 0) {
            root.render_into(&mut out, "");
            for child in spans.iter().filter(|s| s.id == 0 || s.id != root.id) {
                if child.parent != 0 && child.parent == root.id {
                    child.render_into(&mut out, "  ");
                }
            }
        }
        out
    }

    /// Renders the slow-op log as text — the `/slow` admin payload.
    pub fn render_slow(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# slow ops over {:?}", self.slow_threshold());
        for tree in self.slow_ops() {
            for (i, span) in tree.iter().enumerate() {
                span.render_into(&mut out, if i == 0 { "" } else { "  " });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(kind: SpanKind, start: u64) -> Span {
        Span {
            start_nanos: start,
            duration_nanos: 5,
            ..Span::child(0, kind)
        }
    }

    #[test]
    fn kind_codes_roundtrip() {
        for kind in [
            SpanKind::Count,
            SpanKind::Find,
            SpanKind::FindLimit,
            SpanKind::QueueWait,
            SpanKind::ShardExecute,
            SpanKind::Rebuild,
            SpanKind::LevelInstall,
            SpanKind::TopInstall,
            SpanKind::WalAppend,
            SpanKind::WalFsync,
            SpanKind::Snapshot,
            SpanKind::ShardFreeze,
            SpanKind::ShardSerialize,
            SpanKind::EpochGc,
            SpanKind::ServeRequest,
            SpanKind::BulkBuild,
        ] {
            assert_eq!(SpanKind::from_code(kind.code()), Some(kind));
            assert!(!kind.as_str().is_empty());
        }
        assert_eq!(SpanKind::from_code(0), None);
        assert_eq!(SpanKind::from_code(999), None);
    }

    #[test]
    fn span_encode_decode_roundtrip() {
        let span = Span {
            id: 7,
            parent: 3,
            kind: SpanKind::ShardSerialize,
            shard: Some(5),
            start_nanos: 123,
            duration_nanos: 456,
            epoch_lo: 9,
            epoch_hi: 11,
            detail: 42,
        };
        assert_eq!(decode(encode(&span)), Some(span));
        let unsharded = Span {
            shard: None,
            ..span
        };
        assert_eq!(decode(encode(&unsharded)), Some(unsharded));
    }

    #[test]
    fn ring_retains_and_overwrites() {
        let rec = FlightRecorder::new(16, 1);
        let cap = rec.capacity();
        for i in 0..(cap as u64 * 3) {
            rec.record(leaf(SpanKind::WalAppend, i));
        }
        let recent = rec.recent();
        assert_eq!(recent.len(), cap, "full ring, oldest overwritten");
        assert_eq!(rec.recorded(), cap as u64 * 3);
        // The survivors are exactly the newest `cap` spans.
        assert!(recent.iter().all(|s| s.start_nanos >= cap as u64 * 2));
    }

    #[test]
    fn recent_is_sorted_across_stripes() {
        let rec = FlightRecorder::new(64, 4);
        for i in 0..32u64 {
            rec.record_at((i % 4) as usize, leaf(SpanKind::Rebuild, 100 - i));
        }
        let recent = rec.recent();
        assert_eq!(recent.len(), 32);
        assert!(recent
            .windows(2)
            .all(|w| w[0].start_nanos <= w[1].start_nanos));
    }

    #[test]
    fn trees_link_children_to_roots() {
        let rec = FlightRecorder::new(64, 2);
        let root = rec.next_span_id();
        for shard in 0..4usize {
            rec.record_at(
                shard,
                Span {
                    shard: Some(shard),
                    start_nanos: 10 + shard as u64,
                    duration_nanos: 3,
                    epoch_lo: 7,
                    epoch_hi: 7,
                    ..Span::child(root, SpanKind::ShardExecute)
                },
            );
        }
        rec.finish_root(Span {
            start_nanos: 5,
            duration_nanos: 50,
            detail: 9,
            ..Span::root(root, SpanKind::Find)
        });
        let rendered = rec.render_spans();
        let root_line = rendered
            .lines()
            .find(|l| l.starts_with("find "))
            .expect("root rendered");
        assert!(root_line.contains(&format!("id={root}")), "{root_line}");
        let children: Vec<&str> = rendered
            .lines()
            .filter(|l| l.starts_with("  execute"))
            .collect();
        assert_eq!(children.len(), 4, "{rendered}");
        assert!(children[0].contains(&format!("parent={root}")));
    }

    #[test]
    fn slow_log_gated_by_threshold() {
        let rec = FlightRecorder::new(64, 1);
        // Threshold starts at MAX: nothing retained.
        rec.finish_root(Span {
            duration_nanos: 1_000_000,
            ..Span::root(rec.next_span_id(), SpanKind::Count)
        });
        assert!(rec.slow_ops().is_empty());

        rec.set_slow_threshold(Duration::from_nanos(100));
        let fast = rec.next_span_id();
        rec.finish_root(Span {
            duration_nanos: 99,
            ..Span::root(fast, SpanKind::Count)
        });
        assert!(rec.slow_ops().is_empty(), "under the bound");

        let slow = rec.next_span_id();
        rec.record(Span {
            shard: Some(1),
            duration_nanos: 80,
            ..Span::child(slow, SpanKind::QueueWait)
        });
        rec.finish_root(Span {
            duration_nanos: 250,
            ..Span::root(slow, SpanKind::Count)
        });
        let trees = rec.slow_ops();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0][0].id, slow, "root first");
        assert_eq!(trees[0].len(), 2, "child captured with the tree");
        assert!(rec.render_slow().contains("queue_wait"));
    }

    #[test]
    fn slow_log_is_bounded() {
        let rec = FlightRecorder::new(64, 1);
        rec.set_slow_threshold(Duration::from_nanos(0));
        for _ in 0..(SLOW_LOG_CAPACITY + 10) {
            rec.finish_root(Span {
                duration_nanos: 1,
                ..Span::root(rec.next_span_id(), SpanKind::Snapshot)
            });
        }
        assert_eq!(rec.slow_ops().len(), SLOW_LOG_CAPACITY);
    }

    #[test]
    fn concurrent_record_and_read_never_tears() {
        let rec = FlightRecorder::new(256, 4);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        // Every writer uses a fixed (start, duration)
                        // pair; a torn read would mix them.
                        rec.record(Span {
                            start_nanos: w * 1_000_000 + i,
                            duration_nanos: w * 1_000_000 + i,
                            ..Span::child(0, SpanKind::WalAppend)
                        });
                    }
                });
            }
            for _ in 0..2 {
                let rec = &rec;
                scope.spawn(move || {
                    for _ in 0..200 {
                        for span in rec.recent() {
                            assert_eq!(
                                span.start_nanos, span.duration_nanos,
                                "torn span escaped the seqlock"
                            );
                        }
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 4 * 5_000);
    }

    #[test]
    fn display_and_render_mention_fields() {
        let span = Span {
            id: 3,
            shard: Some(2),
            start_nanos: 100,
            duration_nanos: 40,
            epoch_lo: 6,
            epoch_hi: 8,
            detail: 12,
            ..Span::root(3, SpanKind::Snapshot)
        };
        let text = span.to_string();
        assert!(text.contains("snapshot"), "{text}");
        assert!(text.contains("shard=2"), "{text}");
        assert!(text.contains("epochs=6..=8"), "{text}");
        assert!(text.contains("detail=12"), "{text}");
    }
}
