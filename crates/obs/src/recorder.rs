//! The [`Recorder`] abstraction: a sink for latency/count observations with
//! a free no-op default.
//!
//! Instrumented code can be generic over `R: Recorder` (or hold a concrete
//! [`NoopRecorder`]) so that with telemetry disabled every call body is an
//! empty inlineable function — no clock reads, no atomics, no branches left
//! after optimization. `dyndex-store`'s `Telemetry::Disabled` mode is built
//! on exactly this: its instrumentation points collapse to the no-op path.

use crate::metrics::{Counter, Histogram};

/// A sink for observations. Every method has a no-op default body, so a
/// disabled recorder costs nothing.
///
/// ```
/// use dyndex_obs::{Histogram, NoopRecorder, Recorder};
///
/// fn timed_op<R: Recorder>(rec: &R) -> u64 {
///     let out = 40 + 2; // the real work
///     rec.observe(1_250); // e.g. elapsed nanos
///     out
/// }
///
/// // Full recording...
/// let hist = Histogram::new(1);
/// assert_eq!(timed_op(&hist), 42);
/// assert_eq!(hist.snapshot().count(), 1);
/// // ...or provably free when disabled.
/// assert_eq!(timed_op(&NoopRecorder), 42);
/// assert!(!NoopRecorder.enabled());
/// ```
pub trait Recorder {
    /// Whether observations are consumed. Callers may skip expensive
    /// measurement (e.g. `Instant::now()`) when this returns `false`.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Records one observation (a latency in nanos, a size in bytes, ...).
    #[inline]
    fn observe(&self, _value: u64) {}

    /// Records one observation on a striped lane selected by `hint`.
    #[inline]
    fn observe_at(&self, _hint: usize, value: u64) {
        self.observe(value);
    }
}

/// The always-disabled recorder: every method is an empty default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl Recorder for Histogram {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn observe(&self, value: u64) {
        self.record(value);
    }

    #[inline]
    fn observe_at(&self, hint: usize, value: u64) {
        self.record_at(hint, value);
    }
}

impl Recorder for Counter {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn observe(&self, value: u64) {
        self.add(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_free() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.observe(123);
        r.observe_at(4, 123);
    }

    #[test]
    fn histogram_recorder_records() {
        let h = Histogram::new(2);
        assert!(Recorder::enabled(&h));
        Recorder::observe(&h, 10);
        Recorder::observe_at(&h, 1, 20);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), 30);
    }

    #[test]
    fn counter_recorder_adds() {
        let c = Counter::new();
        Recorder::observe(&c, 5);
        Recorder::observe(&c, 7);
        assert_eq!(c.get(), 12);
    }
}
