//! Bounded ring-buffer query tracer.
//!
//! Each query records one [`QuerySpan`] breaking its latency into the four
//! stages of the fan-out path — route → queue-wait → shard-execute → merge —
//! together with the range of view epochs the read served from. The buffer
//! is bounded: when full, the oldest span is dropped and counted.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which store query produced a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `ShardedStore::count`.
    Count,
    /// `ShardedStore::find`.
    Find,
    /// `ShardedStore::find_limit`.
    FindLimit,
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryKind::Count => f.write_str("count"),
            QueryKind::Find => f.write_str("find"),
            QueryKind::FindLimit => f.write_str("find_limit"),
        }
    }
}

/// One query's latency breakdown and the view epochs it read.
#[derive(Debug, Clone)]
pub struct QuerySpan {
    /// Which query API produced this span.
    pub kind: QueryKind,
    /// Time spent hashing/routing and submitting shard jobs, in nanoseconds.
    pub route_nanos: u64,
    /// Worst per-shard wait between submit and a pool worker picking the job
    /// up, in nanoseconds (0 for scoped-spawn fan-out).
    pub queue_nanos: u64,
    /// Worst per-shard execution time against the published view.
    pub execute_nanos: u64,
    /// Time spent collecting and merging per-shard results.
    pub merge_nanos: u64,
    /// Smallest view epoch any shard served from.
    pub min_epoch: u64,
    /// Largest view epoch any shard served from.
    pub max_epoch: u64,
    /// Number of shards fanned out to.
    pub shards: usize,
    /// Result cardinality (match count or hits returned).
    pub results: usize,
}

impl QuerySpan {
    /// Total latency across all stages, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.route_nanos + self.queue_nanos + self.execute_nanos + self.merge_nanos
    }
}

impl std::fmt::Display for QuerySpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} shards, epochs {}..={}] route {}ns | queue {}ns | execute {}ns | merge {}ns -> {} results",
            self.kind,
            self.shards,
            self.min_epoch,
            self.max_epoch,
            self.route_nanos,
            self.queue_nanos,
            self.execute_nanos,
            self.merge_nanos,
            self.results
        )
    }
}

/// A bounded ring buffer of the most recent [`QuerySpan`]s.
///
/// Recording uses `try_lock`: if a reader currently holds the buffer, the
/// span is dropped (and counted) rather than blocking the query path.
///
/// ```
/// use dyndex_obs::{QueryKind, QuerySpan, Tracer};
/// let tracer = Tracer::new(2);
/// for i in 0..3u64 {
///     tracer.record(QuerySpan {
///         kind: QueryKind::Count,
///         route_nanos: i,
///         queue_nanos: 0,
///         execute_nanos: 0,
///         merge_nanos: 0,
///         min_epoch: 1,
///         max_epoch: 1,
///         shards: 1,
///         results: 0,
///     });
/// }
/// let recent = tracer.recent();
/// assert_eq!(recent.len(), 2); // oldest span evicted
/// assert_eq!(recent[0].route_nanos, 1);
/// assert_eq!(tracer.recorded(), 3);
/// ```
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    spans: Mutex<VecDeque<QuerySpan>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Tracer {
    /// Creates a tracer keeping at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            spans: Mutex::new(VecDeque::with_capacity(capacity)),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a span, evicting the oldest when full. Never blocks: if the
    /// buffer is contended the span is counted as dropped instead.
    pub fn record(&self, span: QuerySpan) {
        match self.spans.try_lock() {
            Ok(mut spans) => {
                if spans.len() == self.capacity {
                    spans.pop_front();
                }
                spans.push_back(span);
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<QuerySpan> {
        self.spans.lock().unwrap().iter().cloned().collect()
    }

    /// Total spans ever recorded (including ones since evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans lost to buffer contention (never blocks the query path).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tag: u64) -> QuerySpan {
        QuerySpan {
            kind: QueryKind::Find,
            route_nanos: tag,
            queue_nanos: 10,
            execute_nanos: 100,
            merge_nanos: 5,
            min_epoch: 3,
            max_epoch: 4,
            shards: 8,
            results: 2,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let t = Tracer::new(3);
        for i in 0..10 {
            t.record(span(i));
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|s| s.route_nanos).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_minimum_is_one() {
        let t = Tracer::new(0);
        t.record(span(1));
        t.record(span(2));
        assert_eq!(t.recent().len(), 1);
        assert_eq!(t.recent()[0].route_nanos, 2);
    }

    #[test]
    fn total_sums_stages() {
        assert_eq!(span(7).total_nanos(), 7 + 10 + 100 + 5);
    }

    #[test]
    fn display_mentions_stages() {
        let text = span(1).to_string();
        assert!(text.contains("route"), "{text}");
        assert!(text.contains("queue"), "{text}");
        assert!(text.contains("execute"), "{text}");
        assert!(text.contains("merge"), "{text}");
        assert!(text.contains("epochs 3..=4"), "{text}");
    }

    #[test]
    fn contended_record_drops_not_blocks() {
        let t = Tracer::new(4);
        let guard = t.spans.lock().unwrap();
        t.record(span(1));
        drop(guard);
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.dropped(), 1);
        assert!(t.recent().is_empty());
    }
}
