//! Typed health reports produced by the store's watchdog.
//!
//! The watchdog itself lives next to the machinery it inspects
//! (`dyndex-store`); this module only defines the *vocabulary* — a
//! [`HealthStatus`], the concrete [`HealthReason`]s a detector can
//! raise, and the [`HealthReport`] that folds them together — so that
//! the admin endpoint, the facade, and tests all speak the same types
//! without depending on the store crate.

use std::time::Duration;

/// Overall health verdict, ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Every detector passed.
    Ok,
    /// Service continues but something needs attention (a poisoned
    /// shard, a stalled writer, slow fsyncs, WAL errors).
    Degraded,
    /// The store can no longer make progress on part of its work (a
    /// stuck worker, or every shard poisoned).
    Unhealthy,
}

impl HealthStatus {
    /// Lowercase name, as served by `/health`.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        }
    }
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One concrete finding from a watchdog detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthReason {
    /// A writer panicked mid-update and the shard refuses writes (reads
    /// keep serving the last published view).
    ShardPoisoned {
        /// The poisoned shard.
        shard: usize,
    },
    /// A pool worker has been running one job past the stuck-worker
    /// bound — queries fanned out to its shard cannot complete.
    StuckWorker {
        /// The shard whose worker is stuck.
        shard: usize,
        /// How long the current job has been running.
        busy_for: Duration,
    },
    /// A writer has held a shard's write lock past the stall bound.
    WriterStalled {
        /// The shard whose write lock is held.
        shard: usize,
        /// How long the lock has been held.
        held_for: Duration,
    },
    /// Background rebuild jobs have been pending on a shard past the
    /// stalled-rebuild bound without being installed.
    StalledRebuild {
        /// The shard with pending jobs.
        shard: usize,
        /// How long jobs have been pending.
        pending_for: Duration,
    },
    /// WAL fsync p99 latency exceeds the configured bound.
    SlowFsync {
        /// Observed p99 fsync latency.
        p99: Duration,
        /// Configured bound.
        bound: Duration,
    },
    /// The write-ahead log has reported I/O errors.
    WalErrors {
        /// Failed record appends.
        append_errors: u64,
        /// Failed fsyncs.
        fsync_errors: u64,
    },
}

impl HealthReason {
    /// The status this finding implies on its own.
    pub fn severity(&self) -> HealthStatus {
        match self {
            HealthReason::StuckWorker { .. } => HealthStatus::Unhealthy,
            _ => HealthStatus::Degraded,
        }
    }
}

impl std::fmt::Display for HealthReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthReason::ShardPoisoned { shard } => {
                write!(f, "shard {shard} poisoned by a panicked writer")
            }
            HealthReason::StuckWorker { shard, busy_for } => {
                write!(f, "shard {shard} worker stuck on one job for {busy_for:?}")
            }
            HealthReason::WriterStalled { shard, held_for } => {
                write!(
                    f,
                    "writer has held shard {shard} write lock for {held_for:?}"
                )
            }
            HealthReason::StalledRebuild { shard, pending_for } => {
                write!(
                    f,
                    "shard {shard} rebuild jobs pending uninstalled for {pending_for:?}"
                )
            }
            HealthReason::SlowFsync { p99, bound } => {
                write!(f, "wal fsync p99 {p99:?} exceeds bound {bound:?}")
            }
            HealthReason::WalErrors {
                append_errors,
                fsync_errors,
            } => {
                write!(
                    f,
                    "wal reported {append_errors} append error(s), {fsync_errors} fsync error(s)"
                )
            }
        }
    }
}

/// A point-in-time health verdict with every finding that produced it.
///
/// ```
/// use dyndex_obs::{HealthReason, HealthReport, HealthStatus};
///
/// let ok = HealthReport::from_reasons(vec![]);
/// assert!(ok.is_ok());
/// assert_eq!(ok.to_string(), "ok");
///
/// let report = HealthReport::from_reasons(vec![
///     HealthReason::ShardPoisoned { shard: 3 },
/// ]);
/// assert_eq!(report.status, HealthStatus::Degraded);
/// assert!(report.to_string().contains("shard 3 poisoned"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The folded verdict: the worst severity among `reasons`.
    pub status: HealthStatus,
    /// Every finding, in detector order.
    pub reasons: Vec<HealthReason>,
}

impl HealthReport {
    /// Folds findings into a report; no findings means [`HealthStatus::Ok`].
    pub fn from_reasons(reasons: Vec<HealthReason>) -> Self {
        let status = reasons
            .iter()
            .map(HealthReason::severity)
            .max()
            .unwrap_or(HealthStatus::Ok);
        HealthReport { status, reasons }
    }

    /// True when every detector passed.
    pub fn is_ok(&self) -> bool {
        self.status == HealthStatus::Ok
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.status)?;
        for (i, reason) in self.reasons.iter().enumerate() {
            write!(f, "{} {reason}", if i == 0 { ":" } else { ";" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_ok() {
        let report = HealthReport::from_reasons(vec![]);
        assert_eq!(report.status, HealthStatus::Ok);
        assert!(report.is_ok());
        assert_eq!(report.to_string(), "ok");
    }

    #[test]
    fn worst_severity_wins() {
        let report = HealthReport::from_reasons(vec![
            HealthReason::ShardPoisoned { shard: 0 },
            HealthReason::StuckWorker {
                shard: 1,
                busy_for: Duration::from_secs(9),
            },
        ]);
        assert_eq!(report.status, HealthStatus::Unhealthy);
        assert!(!report.is_ok());
        let text = report.to_string();
        assert!(text.starts_with("unhealthy:"), "{text}");
        assert!(text.contains("shard 0 poisoned"), "{text}");
        assert!(text.contains("shard 1 worker stuck"), "{text}");
        assert!(text.contains(';'), "{text}");
    }

    #[test]
    fn each_reason_renders_its_shard_or_bound() {
        let cases: Vec<(HealthReason, &str)> = vec![
            (HealthReason::ShardPoisoned { shard: 2 }, "shard 2"),
            (
                HealthReason::WriterStalled {
                    shard: 4,
                    held_for: Duration::from_millis(700),
                },
                "shard 4 write lock",
            ),
            (
                HealthReason::StalledRebuild {
                    shard: 1,
                    pending_for: Duration::from_secs(20),
                },
                "shard 1 rebuild",
            ),
            (
                HealthReason::SlowFsync {
                    p99: Duration::from_millis(900),
                    bound: Duration::from_millis(250),
                },
                "exceeds bound",
            ),
            (
                HealthReason::WalErrors {
                    append_errors: 2,
                    fsync_errors: 1,
                },
                "2 append error(s)",
            ),
        ];
        for (reason, needle) in cases {
            let text = reason.to_string();
            assert!(text.contains(needle), "{text} should contain {needle}");
            assert_eq!(reason.severity(), HealthStatus::Degraded);
        }
    }

    #[test]
    fn status_ordering_and_names() {
        assert!(HealthStatus::Ok < HealthStatus::Degraded);
        assert!(HealthStatus::Degraded < HealthStatus::Unhealthy);
        assert_eq!(HealthStatus::Ok.as_str(), "ok");
        assert_eq!(HealthStatus::Degraded.as_str(), "degraded");
        assert_eq!(HealthStatus::Unhealthy.as_str(), "unhealthy");
    }
}
