//! A zero-dependency admin endpoint over plain [`std::net`].
//!
//! One blocking accept thread, one short-lived thread per connection,
//! exact-path `GET` routing, HTTP/1.0-style responses with
//! `Connection: close`. This is deliberately *not* a web framework: it
//! exists so an operator (or a Prometheus scraper, or `curl`) can read
//! `/metrics`, `/health`, `/spans`, and `/slow` without linking
//! anything — and it is the first TCP code the ROADMAP's serving-layer
//! milestone builds on.
//!
//! Shutdown is graceful and prompt: dropping the [`AdminServer`] flips
//! a flag and self-connects to wake the blocked `accept`, then joins
//! the accept thread. No polling loops, no dropped-on-the-floor
//! listener threads.

use crate::net::DeadlineReader;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Total budget for reading one request head. Absolute, not per-read:
/// a client trickling bytes cannot extend it (see [`DeadlineReader`]).
const HEAD_DEADLINE: Duration = Duration::from_secs(2);

/// Largest request head accepted; anything longer is rejected outright
/// rather than parsed from a truncated prefix.
const MAX_HEAD: usize = 8 * 1024;

/// A response from an admin route handler.
#[derive(Debug, Clone)]
pub struct AdminResponse {
    /// HTTP status code (200, 404, 503, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl AdminResponse {
    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<String>) -> Self {
        AdminResponse {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A plain-text response with an explicit status code (e.g. `503`
    /// for an unhealthy `/health`).
    pub fn with_status(status: u16, body: impl Into<String>) -> Self {
        AdminResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// The `404 Not Found` response served for unknown paths.
    pub fn not_found() -> Self {
        AdminResponse::with_status(404, "not found\n")
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// A route handler: called once per matching request, returns the body.
pub type AdminHandler = Box<dyn Fn() -> AdminResponse + Send + Sync>;

/// A minimal threaded HTTP listener serving fixed `GET` routes.
///
/// ```
/// use dyndex_obs::{AdminResponse, AdminServer};
/// use std::io::{Read, Write};
/// use std::net::TcpStream;
///
/// let server = AdminServer::bind(
///     "127.0.0.1:0",
///     vec![("/ping".to_string(), Box::new(|| AdminResponse::text("pong\n")) as _)],
/// )
/// .unwrap();
///
/// let mut conn = TcpStream::connect(server.addr()).unwrap();
/// conn.write_all(b"GET /ping HTTP/1.0\r\n\r\n").unwrap();
/// let mut reply = String::new();
/// conn.read_to_string(&mut reply).unwrap();
/// assert!(reply.starts_with("HTTP/1.0 200 OK"));
/// assert!(reply.ends_with("pong\n"));
/// // Dropping the server wakes and joins the accept thread.
/// drop(server);
/// ```
pub struct AdminServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for AdminServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl AdminServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `routes` — `(exact path, handler)` pairs — on a
    /// background accept thread.
    pub fn bind(
        addr: impl ToSocketAddrs,
        routes: Vec<(String, AdminHandler)>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let routes = Arc::new(routes);
        let accept_thread = std::thread::Builder::new()
            .name("dyndex-admin".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let routes = Arc::clone(&routes);
                    // One short-lived thread per connection keeps a slow
                    // client from stalling the next scrape; the read
                    // timeout bounds its lifetime.
                    let _ = std::thread::Builder::new()
                        .name("dyndex-admin-conn".to_string())
                        .spawn(move || serve_connection(conn, &routes));
                }
            })?;
        Ok(AdminServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the accept thread: a throwaway connection makes its
        // blocking `accept` return so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Reads one request head, routes it, writes one response, closes.
fn serve_connection(mut conn: TcpStream, routes: &[(String, AdminHandler)]) {
    let _ = conn.set_write_timeout(Some(Duration::from_secs(2)));

    // The whole head must arrive within one absolute deadline. The old
    // per-read timeout reset on every successful `read`, so a slow-loris
    // client feeding one byte every ~1.9s could hold this thread for
    // hours before hitting the size cap.
    let Ok(mut reader) = DeadlineReader::new(&conn, HEAD_DEADLINE) else {
        return;
    };
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        match reader.read_some(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
                if head.len() > MAX_HEAD {
                    // Oversized head: reject instead of routing a
                    // truncated prefix as if it were a whole request.
                    let _ = write!(
                        conn,
                        "HTTP/1.0 431 Request Header Fields Too Large\r\nConnection: close\r\n\r\n"
                    );
                    return;
                }
            }
            Err(_) => return, // deadline exceeded or reset: drop silently
        }
    }

    let head = String::from_utf8_lossy(&head);
    let mut first_line = head.lines().next().unwrap_or("").split_whitespace();
    let method = first_line.next().unwrap_or("");
    let path = first_line.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let response = if method.is_empty() && path.is_empty() {
        return; // shutdown self-connect or an empty probe: no reply owed
    } else if method != "GET" {
        AdminResponse::with_status(405, "only GET is supported\n")
    } else {
        routes
            .iter()
            .find(|(route, _)| route == path)
            .map(|(_, handler)| handler())
            .unwrap_or_else(AdminResponse::not_found)
    };

    let _ = write!(
        conn,
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    );
    let _ = conn.write_all(response.body.as_bytes());
    let _ = conn.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        let status: u16 = reply
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .unwrap();
        let body = reply
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn routes() -> Vec<(String, AdminHandler)> {
        vec![
            (
                "/metrics".to_string(),
                Box::new(|| AdminResponse::text("metric_a 1\n")) as AdminHandler,
            ),
            (
                "/health".to_string(),
                Box::new(|| AdminResponse::with_status(503, "unhealthy\n")) as AdminHandler,
            ),
        ]
    }

    #[test]
    fn serves_routes_and_404s_unknown_paths() {
        let server = AdminServer::bind("127.0.0.1:0", routes()).unwrap();
        let (status, body) = get(server.addr(), "/metrics");
        assert_eq!(status, 200);
        assert_eq!(body, "metric_a 1\n");
        let (status, body) = get(server.addr(), "/health");
        assert_eq!(status, 503);
        assert_eq!(body, "unhealthy\n");
        let (status, _) = get(server.addr(), "/nope");
        assert_eq!(status, 404);
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let server = AdminServer::bind("127.0.0.1:0", routes()).unwrap();
        let (status, body) = get(server.addr(), "/metrics?format=text");
        assert_eq!(status, 200);
        assert_eq!(body, "metric_a 1\n");
    }

    #[test]
    fn non_get_is_rejected() {
        let server = AdminServer::bind("127.0.0.1:0", routes()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        write!(conn, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.0 405"), "{reply}");
    }

    #[test]
    fn concurrent_scrapes_all_answer() {
        let server = AdminServer::bind("127.0.0.1:0", routes()).unwrap();
        let addr = server.addr();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    for _ in 0..10 {
                        let (status, _) = get(addr, "/metrics");
                        assert_eq!(status, 200);
                    }
                });
            }
        });
    }

    /// Regression: a client trickling header bytes must be cut off at
    /// the absolute head deadline. The pre-fix reader reset its 2s
    /// timeout on every successful read, so this client could have held
    /// a connection thread for hours.
    #[test]
    fn slow_loris_header_is_cut_off_at_the_deadline() {
        let server = AdminServer::bind("127.0.0.1:0", routes()).unwrap();
        let addr = server.addr();

        let mut conn = TcpStream::connect(addr).unwrap();
        let start = std::time::Instant::now();
        let mut served = false;
        // Drip a plausible GET one byte at a time, well within any
        // per-read timeout, far slower than the whole-head deadline.
        'drip: for chunk in b"GET /metrics HTTP/1.0\r\nHost: loris\r\n".iter() {
            if conn.write_all(std::slice::from_ref(chunk)).is_err() {
                break 'drip; // server already hung up on us — good
            }
            std::thread::sleep(Duration::from_millis(150));
            if start.elapsed() > HEAD_DEADLINE + Duration::from_secs(3) {
                panic!("server kept accepting trickled bytes past the deadline");
            }
            // The server stays responsive to well-behaved clients while
            // the loris dribbles.
            if !served {
                let (status, _) = get(addr, "/metrics");
                assert_eq!(status, 200);
                served = true;
            }
        }
        // The connection must be dead (reset or EOF) shortly after the
        // deadline, not after the loris finishes at its own pace.
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut scratch = [0u8; 64];
        let outcome = std::io::Read::read(&mut conn, &mut scratch);
        assert!(
            matches!(outcome, Ok(0) | Err(_)),
            "server should have dropped the trickling connection: {outcome:?}"
        );
        assert!(
            start.elapsed() < HEAD_DEADLINE + Duration::from_secs(10),
            "cutoff took {:?}",
            start.elapsed()
        );
    }

    /// An oversized request head is rejected with `431`, never routed
    /// from a truncated prefix.
    #[test]
    fn oversized_head_is_rejected() {
        let server = AdminServer::bind("127.0.0.1:0", routes()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        let huge = format!(
            "GET /metrics HTTP/1.0\r\nX-Pad: {}\r\n",
            "a".repeat(MAX_HEAD)
        );
        // The server may reset mid-write once it rejects; that is fine.
        let _ = conn.write_all(huge.as_bytes());
        let mut reply = String::new();
        let _ = std::io::Read::read_to_string(&mut conn, &mut reply);
        if !reply.is_empty() {
            assert!(reply.starts_with("HTTP/1.0 431"), "{reply}");
        }
    }

    #[test]
    fn drop_shuts_down_and_frees_the_port() {
        let server = AdminServer::bind("127.0.0.1:0", routes()).unwrap();
        let addr = server.addr();
        drop(server);
        // The port is released: binding it again succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
    }
}
