//! Lock-free metric primitives: [`Counter`], [`Gauge`], and the striped
//! log-bucketed [`Histogram`].
//!
//! All three are plain `AtomicU64` structures with `Relaxed` ordering: they
//! are statistics, not synchronization. Recording never blocks, never
//! allocates, and never takes a lock; readers take a consistent-enough
//! point-in-time [`HistogramSnapshot`] by summing the stripes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A monotonically increasing event counter.
///
/// ```
/// use dyndex_obs::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (queue depths, garbage backlog, worker busyness).
///
/// ```
/// use dyndex_obs::Gauge;
/// let g = Gauge::new();
/// g.set(7);
/// assert_eq!(g.get(), 7);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two, giving a
/// worst-case relative bucket width of 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Values 0..8 get exact unit buckets; each of the remaining 61 octaves
/// (msb 3..=63) contributes 8 sub-buckets: 8 + 61*8 = 496.
pub(crate) const NUM_BUCKETS: usize = SUB + 61 * SUB;

/// One cache-line-ish stripe of bucket counters plus its own count/sum/max.
#[derive(Debug)]
struct Stripe {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }
}

/// Maps a value to its bucket index. Values below 8 land in exact unit
/// buckets; larger values keep their top `SUB_BITS + 1` significant bits.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        ((shift as usize + 1) * SUB) + ((v >> shift) as usize - SUB)
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `index`.
#[inline]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB {
        (index as u64, index as u64)
    } else {
        let shift = (index / SUB - 1) as u32;
        let sub = (index % SUB) as u64;
        let lo = (sub + SUB as u64) << shift;
        (lo, lo + ((1u64 << shift) - 1))
    }
}

/// Picks a stable per-thread stripe index so concurrent recorders rarely
/// contend on the same cache lines.
fn thread_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    STRIPE.with(|s| *s)
}

/// A mergeable log-bucketed histogram with wait-free recording.
///
/// Recording adds to one of `stripes` independent bucket arrays (chosen by
/// thread, or explicitly via [`Histogram::record_at`] for per-shard
/// striping), so N recorders scale without cache-line ping-pong. Buckets are
/// log-linear: exact below 8, then 8 sub-buckets per power of two (≤12.5%
/// relative error) up to `u64::MAX`.
///
/// ```
/// use dyndex_obs::Histogram;
/// let h = Histogram::new(4);
/// for v in [1u64, 10, 100, 1000, 10_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 5);
/// assert_eq!(snap.max(), 10_000);
/// assert!(snap.percentile(0.50) >= 100);
/// ```
#[derive(Debug)]
pub struct Histogram {
    stripes: Box<[Stripe]>,
}

impl Histogram {
    /// Creates a histogram with `stripes` independent recording lanes
    /// (rounded up to a power of two, minimum 1).
    pub fn new(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        Self {
            stripes: (0..n).map(|_| Stripe::new()).collect(),
        }
    }

    /// Records one value on this thread's stripe.
    #[inline]
    pub fn record(&self, v: u64) {
        let mask = self.stripes.len() - 1;
        self.stripes[thread_stripe() & mask].record(v);
    }

    /// Records one value on the stripe selected by `hint` (e.g. a shard
    /// index), avoiding contention when recorders are already partitioned.
    #[inline]
    pub fn record_at(&self, hint: usize, v: u64) {
        let mask = self.stripes.len() - 1;
        self.stripes[hint & mask].record(v);
    }

    /// Sums all stripes into an immutable point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        for stripe in self.stripes.iter() {
            for (acc, b) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            count += stripe.count.load(Ordering::Relaxed);
            sum = sum.wrapping_add(stripe.sum.load(Ordering::Relaxed));
            max = max.max(stripe.max.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max,
        }
    }
}

/// An immutable summed view of a [`Histogram`]: supports percentile readout
/// and lossless merging with other snapshots.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at quantile `q` in `[0.0, 1.0]`: the inclusive upper bound of
    /// the bucket containing the q-th ranked sample, clamped to the observed
    /// maximum (so percentiles never exceed `max()` and are monotone in `q`).
    /// Returns 0 for an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self`; the result is identical to a snapshot of
    /// a histogram that recorded both underlying streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            let i = bucket_of(v);
            assert_eq!(bucket_bounds(i), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_cover_value() {
        for v in [
            0u64,
            1,
            7,
            8,
            9,
            100,
            1_000,
            65_535,
            65_536,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi, "v={v} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn buckets_tile_the_line() {
        // Adjacent buckets are contiguous and non-overlapping.
        let mut prev_hi: Option<u64> = None;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap/overlap at bucket {i}");
            }
            assert!(lo <= hi);
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
    }

    #[test]
    fn relative_error_bounded() {
        for v in [100u64, 12_345, 1 << 30, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            // Width is at most lo/8, i.e. 12.5% relative error.
            assert!((hi - lo) as f64 <= lo as f64 / 8.0 + 1.0);
        }
    }

    #[test]
    fn percentiles_basic() {
        let h = Histogram::new(1);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1000);
        let p50 = s.percentile(0.5);
        assert!((450..=560).contains(&p50), "p50={p50}");
        let p99 = s.percentile(0.99);
        assert!((980..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.percentile(1.0), 1000);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new(2).snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn striped_recording_sums() {
        let h = Histogram::new(8);
        for shard in 0..8usize {
            for _ in 0..10 {
                h.record_at(shard, 42);
            }
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 80);
        assert_eq!(s.sum(), 80 * 42);
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new(1);
        let b = Histogram::new(1);
        let all = Histogram::new(1);
        for v in [3u64, 9, 81, 6561] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 25, 625] {
            b.record(v);
            all.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        let u = all.snapshot();
        assert_eq!(m.count(), u.count());
        assert_eq!(m.sum(), u.sum());
        assert_eq!(m.max(), u.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(m.percentile(q), u.percentile(q));
        }
    }
}
