//! Named metric registry with Prometheus-style text exposition.
//!
//! Registration is get-or-create by name: registering the same name twice
//! returns the *same* handle, which is what lets a restored store keep
//! recording into the registry its predecessor used.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};

/// The unit a metric's raw `u64` values are measured in; controls how
/// [`MetricsRegistry::render_text`] scales them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Nanoseconds; rendered as fractional seconds.
    Nanos,
    /// Bytes; rendered as-is.
    Bytes,
    /// Dimensionless count; rendered as-is.
    Count,
}

impl Unit {
    fn render(self, v: u64, out: &mut String) {
        match self {
            Unit::Nanos => {
                let _ = write!(out, "{:.9}", v as f64 / 1e9);
            }
            Unit::Bytes | Unit::Count => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone)]
struct Entry {
    help: String,
    unit: Unit,
    metric: Metric,
}

/// A registry of named counters, gauges, and histograms.
///
/// Handles are `Arc`s: cheap to clone, safe to record on from any thread
/// with no lock held. The registry lock is only taken at registration and
/// exposition time, never on the record path.
///
/// ```
/// use dyndex_obs::{MetricsRegistry, Unit};
/// let reg = MetricsRegistry::new();
/// let hits = reg.counter("cache_hits", "cache hit count", Unit::Count);
/// hits.add(3);
/// // Same name -> same handle: counts accumulate across re-registration.
/// reg.counter("cache_hits", "cache hit count", Unit::Count).inc();
/// assert_eq!(hits.get(), 4);
/// assert!(reg.render_text().contains("cache_hits 4"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it if absent.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str, unit: Unit) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            unit,
            metric: Metric::Counter(Arc::new(Counter::new())),
        });
        match &entry.metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the gauge named `name`, creating it if absent.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str, unit: Unit) -> Arc<Gauge> {
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            unit,
            metric: Metric::Gauge(Arc::new(Gauge::new())),
        });
        match &entry.metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the histogram named `name`, creating it with `stripes`
    /// recording lanes if absent (an existing histogram keeps its stripes).
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str, unit: Unit, stripes: usize) -> Arc<Histogram> {
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            unit,
            metric: Metric::Histogram(Arc::new(Histogram::new(stripes))),
        });
        match &entry.metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Looks up an existing histogram by name without creating one.
    pub fn find_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        let entries = self.entries.lock().unwrap();
        match entries.get(name).map(|e| &e.metric) {
            Some(Metric::Histogram(h)) => Some(Arc::clone(h)),
            _ => None,
        }
    }

    /// Looks up an existing counter by name without creating one.
    pub fn find_counter(&self, name: &str) -> Option<Arc<Counter>> {
        let entries = self.entries.lock().unwrap();
        match entries.get(name).map(|e| &e.metric) {
            Some(Metric::Counter(c)) => Some(Arc::clone(c)),
            _ => None,
        }
    }

    /// Renders every metric in Prometheus text exposition style, sorted by
    /// name. Counters and gauges emit one sample; histograms emit a summary
    /// (`quantile` 0.5/0.9/0.99/0.999 plus `_sum`, `_count`, `_max`).
    /// `Nanos` metrics are scaled to seconds.
    pub fn render_text(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        for (name, entry) in entries.iter() {
            let _ = writeln!(out, "# HELP {name} {}", entry.help);
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = write!(out, "{name} ");
                    entry.unit.render(c.get(), &mut out);
                    out.push('\n');
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = write!(out, "{name} ");
                    entry.unit.render(g.get(), &mut out);
                    out.push('\n');
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    let snap = h.snapshot();
                    for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)]
                    {
                        let _ = write!(out, "{name}{{quantile=\"{label}\"}} ");
                        entry.unit.render(snap.percentile(q), &mut out);
                        out.push('\n');
                    }
                    let _ = write!(out, "{name}_sum ");
                    entry.unit.render(snap.sum(), &mut out);
                    out.push('\n');
                    let _ = writeln!(out, "{name}_count {}", snap.count());
                    let _ = write!(out, "{name}_max ");
                    entry.unit.render(snap.max(), &mut out);
                    out.push('\n');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_handle() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", "help", Unit::Count);
        let b = reg.counter("x", "other help ignored", Unit::Count);
        a.add(5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", "h", Unit::Count);
        reg.gauge("x", "h", Unit::Count);
    }

    #[test]
    fn render_scales_nanos_to_seconds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency", Unit::Nanos, 1);
        h.record(1_500_000_000);
        let text = reg.render_text();
        assert!(text.contains("# TYPE lat summary"), "{text}");
        assert!(text.contains("lat_count 1"), "{text}");
        assert!(text.contains("lat_max 1.5"), "{text}");
    }

    #[test]
    fn render_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.gauge("b_gauge", "g", Unit::Count).set(2);
        reg.counter("a_counter", "c", Unit::Count).inc();
        let text = reg.render_text();
        let a = text.find("a_counter").unwrap();
        let b = text.find("b_gauge").unwrap();
        assert!(a < b);
        assert!(text.contains("# TYPE a_counter counter"));
        assert!(text.contains("# TYPE b_gauge gauge"));
    }

    #[test]
    fn find_histogram_does_not_create() {
        let reg = MetricsRegistry::new();
        assert!(reg.find_histogram("missing").is_none());
        reg.histogram("present", "h", Unit::Nanos, 2);
        assert!(reg.find_histogram("present").is_some());
    }

    #[test]
    fn find_counter_does_not_create() {
        let reg = MetricsRegistry::new();
        assert!(reg.find_counter("missing").is_none());
        reg.counter("present", "h", Unit::Count).add(2);
        assert_eq!(reg.find_counter("present").unwrap().get(), 2);
        // A histogram under the same name is not a counter.
        reg.histogram("hist", "h", Unit::Nanos, 1);
        assert!(reg.find_counter("hist").is_none());
    }
}
