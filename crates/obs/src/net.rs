//! Deadline-bounded socket reads, shared by every TCP surface in the
//! workspace: the admin endpoint here and the wire-protocol server in
//! `dyndex-serve`.
//!
//! `TcpStream::set_read_timeout` bounds one `read` *call*, not one
//! logical unit of work. A slow-loris client that trickles a byte just
//! before each per-call timeout expires therefore keeps a connection
//! thread alive indefinitely — every successful read resets the clock.
//! [`DeadlineReader`] fixes the class: it pins an **absolute** deadline
//! when the unit of work (an HTTP head, a wire-protocol frame) starts
//! and clamps every subsequent read timeout to the time remaining, so
//! the whole unit either arrives by the deadline or the read fails with
//! [`std::io::ErrorKind::TimedOut`].

use std::io::{self, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Reads from a [`TcpStream`] under an absolute deadline.
///
/// Construction records the deadline; every read call re-derives the
/// remaining budget and sets the socket's read timeout to it, so no
/// sequence of partial reads can extend a connection's welcome past the
/// deadline. The socket's read-timeout option is left at the last
/// remaining-budget value when the reader is dropped — callers that keep
/// using the stream afterwards should reset it.
///
/// # Examples
///
/// ```
/// use dyndex_obs::DeadlineReader;
/// use std::io::Write;
/// use std::net::{TcpListener, TcpStream};
/// use std::time::Duration;
///
/// let listener = TcpListener::bind("127.0.0.1:0").unwrap();
/// let mut sender = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
/// let (conn, _) = listener.accept().unwrap();
///
/// sender.write_all(b"hello").unwrap();
/// let mut reader = DeadlineReader::new(&conn, Duration::from_secs(2)).unwrap();
/// let mut buf = [0u8; 5];
/// reader.read_exact(&mut buf).unwrap();
/// assert_eq!(&buf, b"hello");
///
/// // The peer sends nothing more: the read fails at the deadline
/// // instead of blocking forever.
/// drop(reader);
/// let mut reader = DeadlineReader::new(&conn, Duration::from_millis(50)).unwrap();
/// let err = reader.read_exact(&mut buf).unwrap_err();
/// assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
/// ```
#[derive(Debug)]
pub struct DeadlineReader<'a> {
    conn: &'a TcpStream,
    deadline: Instant,
}

impl<'a> DeadlineReader<'a> {
    /// Pins the deadline `budget` from now.
    ///
    /// # Errors
    /// Propagates the socket's `set_read_timeout` failure (the initial
    /// timeout is installed eagerly so a zero-budget reader fails fast).
    pub fn new(conn: &'a TcpStream, budget: Duration) -> io::Result<Self> {
        Self::until(conn, Instant::now() + budget)
    }

    /// Pins an explicit absolute `deadline` (e.g. one shared across the
    /// header and payload of a single frame).
    ///
    /// # Errors
    /// Propagates the socket's `set_read_timeout` failure.
    pub fn until(conn: &'a TcpStream, deadline: Instant) -> io::Result<Self> {
        let reader = DeadlineReader { conn, deadline };
        reader.arm()?;
        Ok(reader)
    }

    /// Installs the remaining budget as the socket read timeout.
    /// `set_read_timeout(Some(ZERO))` is an error by contract, so the
    /// remaining budget is floored at one millisecond; the deadline check
    /// in [`DeadlineReader::read_some`] still fires exactly.
    fn arm(&self) -> io::Result<()> {
        let remaining = self
            .deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        self.conn.set_read_timeout(Some(remaining))
    }

    /// One bounded read: up to `buf.len()` bytes, `Ok(0)` on clean EOF.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::TimedOut`] once the deadline has passed
    /// (spurious early wakeups re-arm and retry); any other socket error
    /// is passed through.
    pub fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if Instant::now() >= self.deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "read deadline exceeded",
                ));
            }
            self.arm()?;
            match (&mut &*self.conn as &mut dyn Read).read(buf) {
                Ok(n) => return Ok(n),
                // WouldBlock/TimedOut: the per-call timeout fired — loop
                // to re-check the absolute deadline (platforms differ on
                // which kind a socket timeout reports).
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Fills `buf` completely or fails: [`std::io::ErrorKind::TimedOut`]
    /// at the deadline, [`std::io::ErrorKind::UnexpectedEof`] if the peer
    /// hangs up mid-buffer.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.read_some(&mut buf[filled..])? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-read",
                    ))
                }
                n => filled += n,
            }
        }
        Ok(())
    }

    /// Time left until the deadline (zero once it has passed).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }
}

/// [`Read`] under the deadline, so deadline-bounded sockets slot into
/// generic frame decoders. Each call maps to [`DeadlineReader::read_some`];
/// the deadline surfaces as [`std::io::ErrorKind::TimedOut`].
impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.read_some(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let sender = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (receiver, _) = listener.accept().unwrap();
        (sender, receiver)
    }

    #[test]
    fn reads_complete_data_within_deadline() {
        let (mut sender, receiver) = pair();
        sender.write_all(b"abcdef").unwrap();
        let mut reader = DeadlineReader::new(&receiver, Duration::from_secs(5)).unwrap();
        let mut buf = [0u8; 6];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn trickled_bytes_do_not_extend_the_deadline() {
        // The slow-loris shape: a byte arrives well within each per-call
        // timeout, but the *total* transfer can never finish in budget.
        let (mut sender, receiver) = pair();
        let feeder = std::thread::spawn(move || {
            for _ in 0..20 {
                if sender.write_all(b"x").is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        });
        let start = Instant::now();
        let mut reader = DeadlineReader::new(&receiver, Duration::from_millis(200)).unwrap();
        let mut buf = [0u8; 64];
        let err = reader.read_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "deadline must bound the whole read, took {elapsed:?}"
        );
        drop(receiver);
        feeder.join().unwrap();
    }

    #[test]
    fn eof_mid_buffer_is_unexpected_eof() {
        let (mut sender, receiver) = pair();
        sender.write_all(b"ab").unwrap();
        drop(sender);
        let mut reader = DeadlineReader::new(&receiver, Duration::from_secs(5)).unwrap();
        let mut buf = [0u8; 8];
        let err = reader.read_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn clean_eof_reads_zero() {
        let (sender, receiver) = pair();
        drop(sender);
        let mut reader = DeadlineReader::new(&receiver, Duration::from_secs(5)).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(reader.read_some(&mut buf).unwrap(), 0);
    }
}
