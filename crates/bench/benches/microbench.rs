//! Criterion micro-benchmarks for the core data structures.
//!
//! One group per experiment family (see DESIGN.md §3); kept small so
//! `cargo bench --workspace` completes quickly — the table binaries in
//! `src/bin/` are the heavyweight harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use dyndex_baseline::DynFmBaseline;
use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;
use dyndex_relations::DynamicGraph;
use dyndex_succinct::{BitVec, OneBitReporter, RankSelect, WaveletMatrix};
use dyndex_text::{FmIndexCompressed, SuffixTree};
use std::hint::black_box;

fn bench_succinct(c: &mut Criterion) {
    let mut g = c.benchmark_group("succinct");
    g.sample_size(20);
    let bits = BitVec::from_bits((0..1_000_000).map(|i| i % 3 == 0));
    let rs = RankSelect::new(bits);
    g.bench_function("rank_select/rank1", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 1_000_000;
            black_box(rs.rank1(i))
        })
    });
    g.bench_function("rank_select/select1", |b| {
        let ones = rs.count_ones();
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 7919) % ones;
            black_box(rs.select1(k))
        })
    });
    // Lemma 3 reporter: sparse survivors (E-L3).
    let mut v = OneBitReporter::new_all_ones(1_000_000);
    for i in 0..1_000_000 {
        if i % 1024 != 0 {
            v.zero(i);
        }
    }
    g.bench_function("one_bit/report_sparse_range", |b| {
        b.iter(|| black_box(v.report_vec(0, 999_999).len()))
    });
    let seq: Vec<u32> = (0..200_000u64)
        .map(|i| (i.wrapping_mul(2654435761) % 64) as u32)
        .collect();
    let wm = WaveletMatrix::new(&seq, 64);
    g.bench_function("wavelet/rank", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 200_000;
            black_box(wm.rank((i % 64) as u32, i))
        })
    });
    g.finish();
}

fn bench_static_fm(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_fm");
    g.sample_size(15);
    let mut r = rng(101);
    let text = markov_text(&mut r, 1 << 18, 26, 3);
    let docs = split_documents(&mut r, &text, 256, 1024, 0);
    let doc_refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
    let pats = planted_patterns(&mut r, &docs, 8, 16);
    let fm = FmIndexCompressed::build(&doc_refs, 8);
    g.bench_function("count_p8", |b| {
        b.iter(|| pats.iter().map(|p| black_box(fm.count(p))).sum::<usize>())
    });
    g.bench_function("locate_p8", |b| {
        b.iter(|| {
            pats.iter()
                .map(|p| black_box(fm.locate(p).len()))
                .sum::<usize>()
        })
    });
    g.bench_function("extract_64", |b| b.iter(|| black_box(fm.extract(0, 0, 64))));
    g.finish();
}

fn bench_gst(c: &mut Criterion) {
    let mut g = c.benchmark_group("gst");
    g.sample_size(15);
    let mut r = rng(202);
    let text = markov_text(&mut r, 1 << 14, 26, 2);
    let docs = split_documents(&mut r, &text, 64, 256, 0);
    g.bench_function("insert_delete_cycle", |b| {
        let mut st = SuffixTree::new();
        for (id, d) in &docs {
            st.insert(*id, d);
        }
        let mut next = 10_000u64;
        b.iter(|| {
            st.insert(next, b"ephemeral document contents here");
            st.delete(next);
            next += 1;
        })
    });
    let mut st = SuffixTree::new();
    for (id, d) in &docs {
        st.insert(*id, d);
    }
    let pats = planted_patterns(&mut r, &docs, 6, 8);
    g.bench_function("find_p6", |b| {
        b.iter(|| {
            pats.iter()
                .map(|p| black_box(st.find(p).len()))
                .sum::<usize>()
        })
    });
    g.finish();
}

fn bench_dynamic_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamic_index");
    g.sample_size(10);
    let mut r = rng(303);
    let text = markov_text(&mut r, 1 << 17, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 512, 0);
    let pats = planted_patterns(&mut r, &docs, 8, 8);

    let mut t1: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 8 }, DynOptions::default());
    for (id, d) in &docs {
        t1.insert(*id, d);
    }
    g.bench_function("transform1/count", |b| {
        b.iter(|| pats.iter().map(|p| black_box(t1.count(p))).sum::<usize>())
    });

    let mut base = DynFmBaseline::new();
    for (id, d) in &docs {
        base.insert(*id, d);
    }
    g.bench_function("dyn_rank_baseline/count", |b| {
        b.iter(|| pats.iter().map(|p| black_box(base.count(p))).sum::<usize>())
    });
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    g.sample_size(15);
    let mut r = rng(404);
    let mut graph = DynamicGraph::new(DynOptions::default());
    for (u, v) in edge_stream(&mut r, 2_000, 30_000) {
        graph.add_edge(u, v);
    }
    g.bench_function("out_neighbors", |b| {
        let mut u = 0u64;
        b.iter(|| {
            u = (u + 13) % 2_000;
            black_box(graph.out_neighbors(u).len())
        })
    });
    g.bench_function("has_edge", |b| {
        let mut u = 0u64;
        b.iter(|| {
            u = (u + 13) % 2_000;
            black_box(graph.has_edge(u, (u * 7) % 2_000))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_succinct,
    bench_static_fm,
    bench_gst,
    bench_dynamic_index,
    bench_graph
);
criterion_main!(benches);
