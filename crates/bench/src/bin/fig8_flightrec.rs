//! **Figure 8 harness** (beyond the paper) — cost of the always-on
//! flight recorder and the admin endpoint's scrape latency.
//!
//! PR 7's `fig7_observability` priced the flat telemetry layer; this
//! harness prices what PR 8 added on top: every query now records a
//! root span plus per-shard queue-wait and execute children into the
//! striped seqlock ring, background work records its own span trees,
//! and a `std::net` admin thread serves `/metrics`, `/health`,
//! `/spans`, `/slow` concurrently with the workload. Three measured
//! claims:
//!
//! 1. **Overhead**: multi-threaded query throughput at 8 shards,
//!    flight recorder + admin endpoint enabled vs telemetry disabled.
//!    The acceptance bar stays <2%.
//! 2. **Scrape latency**: p50/p99 wall-clock for a full HTTP
//!    `GET /metrics` round-trip over a real `TcpStream` while the
//!    reader threads keep hammering the store.
//! 3. **Yield**: the span trees and slow-op log the run produced.

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;
use dyndex_store::{
    FanOutPolicy, HealthOptions, MaintenancePolicy, ShardedStore, StoreOptions, Telemetry,
};
use dyndex_text::FmIndexCompressed;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const SHARDS: usize = 8;
const READER_THREADS: usize = 4;
// The effect being priced (~1µs of span writes per ~200µs query) is far
// below this container's minute-scale throughput drift, so the two arms
// interleave many short fixed-work slices — identical query batches,
// timed — and the score is the mean of the per-pair time ratios with a
// 95% confidence interval. Fixed work (not a wall-clock window) keeps a
// slice from quantizing on whole queries.
const SLICES: usize = 40;
const SWEEPS_PER_SLICE: usize = 40;
const SCRAPES: usize = 200;

fn store_opts(telemetry: Telemetry, admin: Option<String>) -> StoreOptions {
    StoreOptions {
        num_shards: SHARDS,
        index: DynOptions::default(),
        mode: RebuildMode::Background,
        maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
        fan_out: FanOutPolicy::Pooled,
        telemetry,
        health: HealthOptions::default(),
        admin,
    }
}

fn build_store(
    docs: &[(u64, Vec<u8>)],
    telemetry: Telemetry,
    admin: Option<String>,
) -> ShardedStore<FmIndexCompressed> {
    let store = ShardedStore::new(FmConfig { sample_rate: 8 }, store_opts(telemetry, admin));
    for chunk in docs.chunks(256) {
        store.insert_batch(chunk).expect("insert batch");
    }
    store.flush();
    store
}

/// Times one fixed-work slice: `SWEEPS_PER_SLICE` full pattern sweeps,
/// claimed sweep-at-a-time by `READER_THREADS` threads from a shared
/// counter. Both arms run byte-identical batches, so slice times divide
/// into a clean overhead ratio. Returns (elapsed, queries run).
fn timed_slice(store: &ShardedStore<FmIndexCompressed>, patterns: &[Vec<u8>]) -> (Duration, usize) {
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let next = &next;
        for _ in 0..READER_THREADS {
            scope.spawn(move || {
                while next.fetch_add(1, Ordering::Relaxed) < SWEEPS_PER_SLICE {
                    for p in patterns {
                        std::hint::black_box(store.count(p));
                    }
                }
            });
        }
    });
    (t0.elapsed(), SWEEPS_PER_SLICE * patterns.len())
}

/// One full HTTP GET round-trip, the way a Prometheus scraper does it.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect admin");
    write!(conn, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut reply = String::new();
    conn.read_to_string(&mut reply).expect("read response");
    reply
}

fn percentile(sorted_nanos: &[u64], q: f64) -> u64 {
    let rank = ((sorted_nanos.len() as f64 - 1.0) * q).round() as usize;
    sorted_nanos[rank]
}

fn main() {
    println!("=== Fig 8: flight recorder overhead and scrape latency (measured) ===\n");
    let n = 1usize << 18;
    let mut r = rng(0xF16_0008 ^ n as u64);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let patterns = planted_patterns(&mut r, &docs, 8, 24);
    println!(
        "corpus n={n} ({} docs), {SHARDS} shards, {READER_THREADS} reader threads, \
         {SLICES} interleaved fixed-work slices per arm",
        docs.len()
    );

    // ------------------------------------------------------------------
    // 1. Overhead: recorder + admin endpoint on vs all telemetry off.
    // ------------------------------------------------------------------
    let enabled = build_store(&docs, Telemetry::Enabled, Some("127.0.0.1:0".to_string()));
    let disabled = build_store(&docs, Telemetry::Disabled, None);
    let addr = enabled.admin_addr().expect("admin endpoint bound");
    // One warmup slice per arm (first-touch, branch warmup), then the
    // interleaved pairs. Alternate which arm goes first so within-pair
    // drift cancels over the run instead of always taxing the same arm.
    timed_slice(&disabled, &patterns);
    timed_slice(&enabled, &patterns);
    let mut ratios = Vec::with_capacity(SLICES);
    let (mut total_on, mut total_off) = (Duration::ZERO, Duration::ZERO);
    let mut queries_per_slice = 0usize;
    for slice in 0..SLICES {
        let (off, on) = if slice % 2 == 0 {
            let off = timed_slice(&disabled, &patterns);
            let on = timed_slice(&enabled, &patterns);
            (off, on)
        } else {
            let on = timed_slice(&enabled, &patterns);
            let off = timed_slice(&disabled, &patterns);
            (off, on)
        };
        queries_per_slice = off.1;
        total_off += off.0;
        total_on += on.0;
        // Per-pair overhead: how much longer the enabled arm took.
        ratios.push(on.0.as_secs_f64() / off.0.as_secs_f64() - 1.0);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / (ratios.len() - 1) as f64;
    let ci95 = 1.96 * (var / ratios.len() as f64).sqrt();
    let qps = |t: Duration| SLICES as f64 * queries_per_slice as f64 / t.as_secs_f64();
    println!(
        "\nflight recorder + admin off: {:>12.0} queries/s ({SLICES} slices x {queries_per_slice} queries)",
        qps(total_off)
    );
    println!(
        "flight recorder + admin on:  {:>12.0} queries/s",
        qps(total_on)
    );
    println!(
        "throughput delta: {:.2}% +/- {:.2}% (95% CI over paired slices)",
        100.0 * mean,
        100.0 * ci95
    );

    // The budget verdict comes from a deterministic decomposition, not
    // the A/B delta: on a small shared machine the scheduler noise floor
    // of a multi-threaded A/B (the CI printed above) sits well over 2%,
    // while the recorder's marginal work per query — one root id + the
    // clock reads and the 2 span writes per shard the fan-out performs,
    // plus the root finish — times deterministically against the
    // measured mean query latency.
    let flight = enabled.flight_recorder().expect("recorder on");
    const MICRO_ROUNDS: usize = 20_000;
    let t0 = Instant::now();
    for _ in 0..MICRO_ROUNDS {
        let root = flight.next_span_id();
        let start_nanos = flight.now_nanos();
        for shard in 0..SHARDS {
            let submit = flight.now_nanos();
            flight.record_at(
                shard,
                dyndex_obs::Span {
                    shard: Some(shard),
                    start_nanos: submit,
                    duration_nanos: 1,
                    ..dyndex_obs::Span::child(root, dyndex_obs::SpanKind::QueueWait)
                },
            );
            flight.record_at(
                shard,
                dyndex_obs::Span {
                    shard: Some(shard),
                    start_nanos: submit,
                    duration_nanos: 1,
                    epoch_lo: 1,
                    epoch_hi: 1,
                    ..dyndex_obs::Span::child(root, dyndex_obs::SpanKind::ShardExecute)
                },
            );
        }
        flight.finish_root(dyndex_obs::Span {
            start_nanos,
            duration_nanos: flight.now_nanos() - start_nanos,
            ..dyndex_obs::Span::root(root, dyndex_obs::SpanKind::Count)
        });
    }
    let record_nanos = t0.elapsed().as_nanos() as f64 / MICRO_ROUNDS as f64;
    let registry = enabled.metrics().expect("telemetry on");
    let q = registry
        .find_histogram("dyndex_store_query_duration")
        .expect("registered")
        .snapshot();
    let mean_query_nanos = q.sum() as f64 / q.count().max(1) as f64;
    let overhead = 100.0 * record_nanos / mean_query_nanos;
    println!(
        "recording cost: {record_nanos:.0} ns/query of span writes against {:.0} ns mean \
         query latency ({} samples)",
        mean_query_nanos,
        q.count()
    );
    println!(
        "overhead: {overhead:.2}% {}",
        if overhead < 2.0 {
            "(within the <2% budget)"
        } else {
            "(OVER the <2% budget)"
        }
    );

    // ------------------------------------------------------------------
    // 2. Scrape latency: /metrics round-trips racing the reader threads.
    // ------------------------------------------------------------------
    let stop = AtomicBool::new(false);
    let mut scrape_nanos = std::thread::scope(|scope| {
        let stop = &stop;
        let enabled = &enabled;
        let patterns = &patterns;
        for _ in 0..READER_THREADS {
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    for p in patterns {
                        std::hint::black_box(enabled.count(p));
                    }
                }
            });
        }
        let mut samples = Vec::with_capacity(SCRAPES);
        let mut body_lines = 0usize;
        for _ in 0..SCRAPES {
            let t0 = Instant::now();
            let reply = http_get(addr, "/metrics");
            samples.push(t0.elapsed().as_nanos() as u64);
            body_lines = reply.lines().count();
        }
        stop.store(true, Ordering::Release);
        println!("\n/metrics scrape under load ({SCRAPES} round-trips, ~{body_lines} lines):");
        samples
    });
    scrape_nanos.sort_unstable();
    for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        println!("  {label:>5}: {:>9} ns", percentile(&scrape_nanos, q));
    }
    println!("  {:>5}: {:>9} ns", "max", scrape_nanos.last().unwrap());

    let health = http_get(addr, "/health");
    println!(
        "/health during the run: {}",
        health.lines().last().unwrap_or("<empty>")
    );

    // ------------------------------------------------------------------
    // 3. Yield: the span trees the run left in the ring.
    // ------------------------------------------------------------------
    let flight = enabled.flight_recorder().expect("recorder on");
    println!(
        "\nflight recorder: {} spans recorded into a {}-slot ring, {} slow trees retained",
        flight.recorded(),
        flight.capacity(),
        flight.slow_ops().len()
    );
    let spans = enabled.flight_spans();
    if let Some(root) = spans.iter().rev().find(|s| s.parent == 0 && s.id != 0) {
        println!("most recent query tree:");
        println!("  {root}");
        for child in spans.iter().filter(|s| s.parent == root.id) {
            println!("    {child}");
        }
    }
    let slow = flight.render_slow();
    println!("\nslow-op log (threshold {:?}):", flight.slow_threshold());
    for line in slow.lines().take(6) {
        println!("  {line}");
    }
}
