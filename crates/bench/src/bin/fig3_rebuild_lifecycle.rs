//! **Figure 3 harness** — the background-rebuild lifecycle (a → b → c).
//!
//! The paper's Figure 3 illustrates how an insertion that overflows `C_j`
//! locks it (`L_j`), parks the new document in `Temp_{j+1}`, builds
//! `N_{j+1}` in the background, and atomically swaps it in. The measurable
//! consequence is the **per-update latency profile**: Transformation 1
//! pays for whole rebuilds inside unlucky insertions (amortized bound,
//! spiky tail), while Transformation 2 with real background threads keeps
//! the foreground's worst case orders of magnitude lower.
//!
//! We insert the same document stream into both and print the latency
//! distribution (mean / p90 / p99 / max) plus T2's job ledger.

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;

fn main() {
    println!("=== Figure 3: rebuild lifecycle / update latency (measured) ===\n");
    let mut r = rng(0xF16003);
    let text = markov_text(&mut r, 1 << 19, 26, 3);
    let docs = split_documents(&mut r, &text, 64, 512, 0);
    println!("stream: {} docs, {} symbols\n", docs.len(), text.len());

    // Transformation 1: synchronous cascades.
    let mut lat1 = Vec::with_capacity(docs.len());
    {
        let mut idx: Transform1Index<FmIndexCompressed> =
            Transform1Index::new(FmConfig { sample_rate: 8 }, DynOptions::default());
        for (id, d) in &docs {
            let t = std::time::Instant::now();
            idx.insert(*id, d);
            lat1.push(t.elapsed().as_nanos() as f64);
        }
        println!(
            "transform1: {} rebuilds, {} global, max single-op build {} symbols",
            idx.work().rebuilds,
            idx.work().global_rebuilds,
            idx.work().max_op_symbols
        );
    }
    // Transformation 2 with real background threads.
    let mut lat2 = Vec::with_capacity(docs.len());
    {
        let mut idx: Transform2Index<FmIndexCompressed> = Transform2Index::new(
            FmConfig { sample_rate: 8 },
            DynOptions::default(),
            RebuildMode::Background,
        );
        for (id, d) in &docs {
            let t = std::time::Instant::now();
            idx.insert(*id, d);
            lat2.push(t.elapsed().as_nanos() as f64);
        }
        idx.finish_background_work();
        idx.check_invariants();
        println!(
            "transform2: {} jobs started, {} completed, {} forced waits, max foreground build {} symbols",
            idx.work().jobs_started,
            idx.work().jobs_completed,
            idx.work().forced_waits,
            idx.work().max_op_symbols
        );
    }

    println!("\nper-insert latency:");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12}",
        "index", "mean", "p90", "p99", "max"
    );
    report("transform1", &mut lat1);
    report("transform2", &mut lat2);
    println!("\nfigure-shape: T2's tail (p99/max) sits far below T1's rebuild");
    println!("spikes; both have similar means (same amortized work).");
}

fn report(name: &str, lat: &mut [f64]) {
    lat.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mean = lat.iter().sum::<f64>() / lat.len() as f64;
    let p = |q: f64| lat[((lat.len() as f64 * q) as usize).min(lat.len() - 1)];
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12}",
        name,
        fmt_ns(mean),
        fmt_ns(p(0.90)),
        fmt_ns(p(0.99)),
        fmt_ns(lat[lat.len() - 1])
    );
}
