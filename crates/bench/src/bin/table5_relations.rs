//! **Theorem 2 harness** — dynamic binary relations.
//!
//! Claims: reporting objects-of-label / labels-of-object in
//! O(log log σl · log log n)-class time per datum, existence similar,
//! counting O(log n), updates O(log^ε n); space dominated by `nH0(S)`.
//! We measure against the hash-set reference and report space next to the
//! entropy of the label sequence.

use dyndex_bench::workloads::*;
use dyndex_core::DynOptions;
use dyndex_relations::{DynamicRelation, NaiveRelation};
use dyndex_succinct::{entropy, SpaceUsage};

fn main() {
    println!("=== Theorem 2: dynamic binary relation (measured) ===\n");
    for &pairs in &[20_000usize, 100_000] {
        run(pairs);
    }
    println!("shape checks: report/existence ~flat in n; counting cheap;");
    println!("updates polylog; space tracks nH0(S) + per-label overhead.");
}

fn run(pair_target: usize) {
    let mut r = rng(0x7AB1E005 ^ pair_target as u64);
    let nodes = (pair_target as u64 / 10).max(100);
    let edges = edge_stream(&mut r, nodes, pair_target);

    let mut dynr = DynamicRelation::new(DynOptions::default());
    let mut naive = NaiveRelation::new();
    for &(o, l) in &edges {
        if dynr.insert(o, l) {
            naive.insert(o, l);
        }
    }
    let n = dynr.len();
    // Entropy of the label multiset (the paper's H for S).
    let labels: Vec<u64> = edges.iter().map(|&(_, l)| l).collect();
    let h0 = entropy::h0(&labels);

    // Probe sets.
    let probes: Vec<u64> = (0..64).map(|_| zipf(&mut r, nodes)).collect();

    let t_report_lab = measure_ns(7, || {
        probes
            .iter()
            .map(|&o| dynr.labels_of(o).len())
            .sum::<usize>()
    });
    let reported: usize = probes.iter().map(|&o| dynr.labels_of(o).len()).sum();
    let t_report_obj = measure_ns(7, || {
        probes
            .iter()
            .map(|&l| dynr.objects_of(l).len())
            .sum::<usize>()
    });
    let t_exist = measure_ns(9, || {
        probes
            .iter()
            .zip(probes.iter().rev())
            .filter(|&(&o, &l)| dynr.related(o, l))
            .count()
    }) / probes.len() as f64;
    let t_count = measure_ns(9, || {
        probes.iter().map(|&o| dynr.count_labels(o)).sum::<usize>()
    }) / probes.len() as f64;

    // Update cost: fresh pairs in/out.
    let fresh: Vec<(u64, u64)> = (0..2_000)
        .map(|i| (nodes + 1 + i as u64, nodes + 1 + (i / 3) as u64))
        .collect();
    let t0 = std::time::Instant::now();
    for &(o, l) in &fresh {
        dynr.insert(o, l);
    }
    let ins = t0.elapsed().as_nanos() as f64 / fresh.len() as f64;
    let t1 = std::time::Instant::now();
    for &(o, l) in &fresh {
        dynr.delete(o, l);
    }
    let del = t1.elapsed().as_nanos() as f64 / fresh.len() as f64;
    dynr.check_invariants();

    // Sanity vs reference.
    for &o in probes.iter().take(8) {
        assert_eq!(dynr.labels_of(o), naive.labels_of(o));
        assert_eq!(dynr.count_objects(o), naive.count_objects(o));
    }

    println!(
        "n = {n} pairs, {} objects, {} labels, H0(S) = {h0:.2} bits/pair",
        dynr.num_objects(),
        dynr.num_labels()
    );
    println!(
        "  report labels-of  {:>10}/datum  ({} reported)",
        fmt_ns(t_report_lab / reported.max(1) as f64),
        reported
    );
    println!(
        "  report objects-of {:>10}/datum",
        fmt_ns(t_report_obj / reported.max(1) as f64)
    );
    println!("  existence         {:>10}/query", fmt_ns(t_exist));
    println!("  count             {:>10}/query", fmt_ns(t_count));
    println!("  insert            {:>10}/pair", fmt_ns(ins));
    println!("  delete            {:>10}/pair", fmt_ns(del));
    println!(
        "  space             {:>10.2} bits/pair (entropy floor {h0:.2})\n",
        dynr.heap_bytes() as f64 * 8.0 / n.max(1) as f64
    );
}
