//! **Figure 4 harness** (beyond the paper) — shard-count scaling of the
//! `dyndex-store` layer, pooled vs spawn-per-query fan-out.
//!
//! The transformations bound *per-operation* cost; the store layer is
//! about *throughput*: hash-routed shards take writes in parallel, queries
//! fan out across shards, and resident workers keep rebuild installs off
//! the query path. This harness measures, at a fixed corpus, a growing
//! shard count, and both [`FanOutPolicy`] execution models:
//!
//! * bulk-load throughput (batched inserts, one writer thread per shard),
//! * single-query fan-out latency (count and find),
//! * multi-threaded query throughput (4 reader threads),
//! * mixed churn throughput (batch deletes + inserts with background
//!   maintenance running; fan-out-policy-independent, reported once per
//!   shard count on the pooled row),
//! * readers-under-sustained-writes: reader throughput measured twice —
//!   idle writers vs a thread streaming batched inserts — proving the
//!   epoch-published view read path keeps readers off the shard locks
//!   (the retained fraction is the table's last column).
//!
//! Expected shape: bulk-load and churn scale up with shards (smaller
//! per-shard rebuilds, parallel writers). Under `ScopedSpawn`, single-query
//! latency *rises* with shards: a thread spawn costs more than a µs-scale
//! per-shard query, so the spawn tax dominates. `Pooled` replaces the
//! spawn with a channel send to the shard's resident worker, cutting most
//! of the per-query fan-out overhead — the headline ratio this harness
//! prints last.

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;
use dyndex_store::{FanOutPolicy, MaintenancePolicy, ShardedStore, StoreOptions};
use dyndex_text::FmIndexCompressed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const READER_THREADS: usize = 4;

struct Row {
    shards: usize,
    policy: FanOutPolicy,
    count_ns: f64,
    find_ns: f64,
    queries_per_s: f64,
}

fn main() {
    println!("=== Fig 4: sharded-store scaling, pooled vs spawn fan-out (measured) ===\n");
    let n = 1usize << 19;
    let mut r = rng(0xF16_0004 ^ n as u64);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let patterns = planted_patterns(&mut r, &docs, 8, 24);
    let churn = {
        let churn_text = markov_text(&mut r, n / 8, 26, 3);
        split_documents(&mut r, &churn_text, 128, 1024, 1_000_000)
    };
    println!(
        "corpus n={n} ({} docs), churn batch {} docs, {READER_THREADS} reader threads",
        docs.len(),
        churn.len()
    );
    println!(
        "{:<8} {:<8} {:>14} {:>12} {:>12} {:>14} {:>14}",
        "shards", "fan-out", "bulk-load", "count", "find", "queries/s", "churn MB/s"
    );
    let mut rows: Vec<Row> = Vec::new();
    // A 1-shard store has no fan-out: both policies take the identical
    // direct-read path, so measure it once as the baseline row.
    rows.push(run_config(
        1,
        FanOutPolicy::Pooled,
        &docs,
        &patterns,
        &churn,
    ));
    for &shards in &[2usize, 4, 8] {
        for policy in [FanOutPolicy::Pooled, FanOutPolicy::ScopedSpawn] {
            rows.push(run_config(shards, policy, &docs, &patterns, &churn));
        }
    }
    println!();
    summarize(&rows);
    println!();
    readers_under_writes(&docs, &patterns, &churn);
}

/// Readers-under-sustained-writes: quantifies the lock-free read path.
/// For each shard count, reader throughput is measured over the same
/// wall-clock window twice — once with writers idle, once while a writer
/// thread streams batched inserts into the same shards. Queries answer
/// from each shard's epoch-published view (never the shard `RwLock`), so
/// the sustained-writes column must retain most of the idle throughput
/// instead of collapsing to writer-release pacing.
fn readers_under_writes(docs: &[(u64, Vec<u8>)], patterns: &[Vec<u8>], churn: &[(u64, Vec<u8>)]) {
    println!("readers under sustained writes (pooled fan-out, {READER_THREADS} reader threads):");
    println!(
        "{:<8} {:>16} {:>16} {:>10}",
        "shards", "idle queries/s", "write queries/s", "retained"
    );
    for &shards in &[1usize, 2, 4, 8] {
        let store: ShardedStore<FmIndexCompressed> = ShardedStore::new(
            FmConfig { sample_rate: 8 },
            StoreOptions {
                num_shards: shards,
                index: DynOptions::default(),
                mode: RebuildMode::Background,
                maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
                fan_out: FanOutPolicy::Pooled,
                ..StoreOptions::default()
            },
        );
        for chunk in docs.chunks(256) {
            store.insert_batch(chunk).expect("insert batch");
        }
        store.flush();

        let window = Duration::from_millis(150);
        let measure_readers = |write: bool| -> f64 {
            let done = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let (store, done) = (&store, &done);
                let t0 = Instant::now();
                for _ in 0..READER_THREADS {
                    scope.spawn(move || {
                        while t0.elapsed() < window {
                            for p in patterns {
                                std::hint::black_box(store.count(p));
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
                if write {
                    scope.spawn(move || {
                        // Sustained writer: stream churn batches (fresh
                        // ids per round) until the window closes, holding
                        // shard write locks for real rebuild work.
                        let mut round = 0u64;
                        while t0.elapsed() < window {
                            let rebased: Vec<(u64, Vec<u8>)> = churn
                                .iter()
                                .map(|(id, d)| (id + 10_000_000 * (round + 1), d.clone()))
                                .collect();
                            for chunk in rebased.chunks(64) {
                                store.insert_batch(chunk).expect("sustained insert");
                                if t0.elapsed() >= window {
                                    break;
                                }
                            }
                            round += 1;
                        }
                    });
                }
            });
            done.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
        };

        let idle = measure_readers(false);
        let under_writes = measure_readers(true);
        println!(
            "{:<8} {:>16.0} {:>16.0} {:>9.0}%",
            shards,
            idle,
            under_writes,
            100.0 * under_writes / idle
        );
    }
    println!();
    println!("shape check: readers never stall on the writer's lock — they load the");
    println!("shard's published view with one atomic op — so the retained fraction");
    println!("reflects CPU/memory-bandwidth sharing with the writer threads, not");
    println!("lock waits: reader progress is continuous even mid-install, where the");
    println!("lock-based read path serialized readers behind every rebuild install.");
}

fn policy_name(shards: usize, policy: FanOutPolicy) -> &'static str {
    match policy {
        _ if shards == 1 => "direct",
        FanOutPolicy::Pooled => "pooled",
        FanOutPolicy::ScopedSpawn => "spawn",
    }
}

fn run_config(
    shards: usize,
    policy: FanOutPolicy,
    docs: &[(u64, Vec<u8>)],
    patterns: &[Vec<u8>],
    churn: &[(u64, Vec<u8>)],
) -> Row {
    let store: ShardedStore<FmIndexCompressed> = ShardedStore::new(
        FmConfig { sample_rate: 8 },
        StoreOptions {
            num_shards: shards,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
            fan_out: policy,
            ..StoreOptions::default()
        },
    );

    // Bulk load: batched inserts, writers parallel across shards.
    let bytes: usize = docs.iter().map(|(_, d)| d.len()).sum();
    let t0 = Instant::now();
    for chunk in docs.chunks(256) {
        store.insert_batch(chunk).expect("insert batch");
    }
    store.finish_background_work();
    let load_mbs = bytes as f64 / t0.elapsed().as_secs_f64() / 1e6;

    // Single-query fan-out latency.
    let count_ns = measure_ns(7, || patterns.iter().map(|p| store.count(p)).sum::<usize>())
        / patterns.len() as f64;
    let find_ns = measure_ns(3, || {
        patterns.iter().map(|p| store.find(p).len()).sum::<usize>()
    }) / patterns.len() as f64;

    // Parallel reader throughput: fixed wall-clock window, count queries.
    let done = AtomicUsize::new(0);
    let window = Duration::from_millis(150);
    let qps = std::thread::scope(|scope| {
        let (store, done) = (&store, &done);
        let t0 = Instant::now();
        for _ in 0..READER_THREADS {
            scope.spawn(move || {
                while t0.elapsed() < window {
                    for p in patterns {
                        std::hint::black_box(store.count(p));
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        t0
    })
    .elapsed()
    .as_secs_f64();
    let queries_per_s = done.load(Ordering::Relaxed) as f64 / qps;

    // Mixed churn: write-path work, identical under either fan-out
    // policy — measure it once per shard count (on the pooled pass).
    let churn_cell = if policy == FanOutPolicy::Pooled {
        let doomed: Vec<u64> = (0..docs.len() as u64).filter(|id| id % 4 == 0).collect();
        let churn_bytes: usize = churn.iter().map(|(_, d)| d.len()).sum::<usize>()
            + doomed
                .iter()
                .map(|&id| docs[id as usize].1.len())
                .sum::<usize>();
        let t1 = Instant::now();
        store.delete_batch(&doomed).expect("delete batch");
        for chunk in churn.chunks(256) {
            store.insert_batch(chunk).expect("insert churn");
        }
        store.finish_background_work();
        format!(
            "{:.1}",
            churn_bytes as f64 / t1.elapsed().as_secs_f64() / 1e6
        )
    } else {
        "-".to_string()
    };

    println!(
        "{:<8} {:<8} {:>11.1} MB/s {:>12} {:>12} {:>14.0} {:>14}",
        shards,
        policy_name(shards, policy),
        load_mbs,
        fmt_ns(count_ns),
        fmt_ns(find_ns),
        queries_per_s,
        churn_cell
    );
    Row {
        shards,
        policy,
        count_ns,
        find_ns,
        queries_per_s,
    }
}

/// The headline: pooled-over-spawn ratios per shard count.
fn summarize(rows: &[Row]) {
    println!("pooled-vs-spawn (same shard count; >1.0 = pooled wins):");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "shards", "count", "find", "queries/s"
    );
    for shards in [2usize, 4, 8] {
        let get = |policy: FanOutPolicy| {
            rows.iter()
                .find(|r| r.shards == shards && r.policy == policy)
                .expect("both policies measured")
        };
        let pooled = get(FanOutPolicy::Pooled);
        let spawn = get(FanOutPolicy::ScopedSpawn);
        println!(
            "{:<8} {:>11.2}x {:>11.2}x {:>11.2}x",
            shards,
            spawn.count_ns / pooled.count_ns,
            spawn.find_ns / pooled.find_ns,
            pooled.queries_per_s / spawn.queries_per_s,
        );
    }
    println!();
    println!("shape checks: bulk-load and churn MB/s rise with shards (parallel");
    println!("writers, smaller rebuilds). Under spawn fan-out, count/find latency");
    println!("pays one thread spawn per shard per query, which dominates µs-scale");
    println!("queries; pooled fan-out replaces the spawn with a channel send to the");
    println!("shard's resident worker, so small-pattern queries keep most of the");
    println!("single-shard latency while retaining the write-path scaling.");
}
