//! **Figure 4 harness** (beyond the paper) — shard-count scaling of the
//! `dyndex-store` layer.
//!
//! The transformations bound *per-operation* cost; the store layer is
//! about *throughput*: hash-routed shards take writes in parallel, queries
//! fan out across shards on scoped threads, and a scheduler thread keeps
//! rebuild installs off the query path. This harness measures, at a fixed
//! corpus and a growing shard count:
//!
//! * bulk-load throughput (batched inserts, one writer thread per shard),
//! * single-query fan-out latency (count and find; fan-out adds O(shards)
//!   work, so modest growth is the expected price of sharding),
//! * multi-threaded query throughput (4 reader threads),
//! * mixed churn throughput (batch deletes + inserts with background
//!   maintenance running).
//!
//! Expected shape: bulk-load and churn scale up with shards (smaller
//! per-shard rebuilds, parallel writers). Single-query latency *rises*
//! with shards at this corpus size: fan-out spawns a scoped thread per
//! shard, and a thread spawn costs more than a µs-scale per-shard query —
//! the query-side win only appears once per-shard work dwarfs spawn cost
//! (a persistent worker pool is a ROADMAP follow-on).

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;
use dyndex_store::{MaintenancePolicy, ShardedStore, StoreOptions};
use dyndex_text::FmIndexCompressed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const READER_THREADS: usize = 4;

fn main() {
    println!("=== Fig 4: sharded-store scaling (measured) ===\n");
    let n = 1usize << 19;
    let mut r = rng(0xF16_0004 ^ n as u64);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let patterns = planted_patterns(&mut r, &docs, 8, 24);
    let churn = {
        let churn_text = markov_text(&mut r, n / 8, 26, 3);
        split_documents(&mut r, &churn_text, 128, 1024, 1_000_000)
    };
    println!(
        "corpus n={n} ({} docs), churn batch {} docs, {READER_THREADS} reader threads",
        docs.len(),
        churn.len()
    );
    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>14} {:>14}",
        "shards", "bulk-load", "count", "find", "queries/s", "churn MB/s"
    );
    for &shards in &[1usize, 2, 4, 8] {
        run_shards(shards, &docs, &patterns, &churn);
    }
    println!();
    println!("shape checks: bulk-load and churn MB/s rise with shards (parallel");
    println!("writers, smaller rebuilds); count/find latency and queries/s pay the");
    println!("fan-out tax — one scoped-thread spawn per shard dominates µs-scale");
    println!("queries at this corpus size, so sharding wins on the write path here");
    println!("and on reads only once per-shard query work dwarfs spawn cost.");
}

fn run_shards(
    shards: usize,
    docs: &[(u64, Vec<u8>)],
    patterns: &[Vec<u8>],
    churn: &[(u64, Vec<u8>)],
) {
    let store: ShardedStore<FmIndexCompressed> = ShardedStore::new(
        FmConfig { sample_rate: 8 },
        StoreOptions {
            num_shards: shards,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
        },
    );

    // Bulk load: batched inserts, writers parallel across shards.
    let bytes: usize = docs.iter().map(|(_, d)| d.len()).sum();
    let t0 = Instant::now();
    for chunk in docs.chunks(256) {
        store.insert_batch(chunk);
    }
    store.finish_background_work();
    let load_mbs = bytes as f64 / t0.elapsed().as_secs_f64() / 1e6;

    // Single-query fan-out latency.
    let count_ns = measure_ns(7, || patterns.iter().map(|p| store.count(p)).sum::<usize>())
        / patterns.len() as f64;
    let find_ns = measure_ns(3, || {
        patterns.iter().map(|p| store.find(p).len()).sum::<usize>()
    }) / patterns.len() as f64;

    // Parallel reader throughput: fixed wall-clock window, count queries.
    let done = AtomicUsize::new(0);
    let window = Duration::from_millis(150);
    let qps = std::thread::scope(|scope| {
        let (store, done) = (&store, &done);
        let t0 = Instant::now();
        for _ in 0..READER_THREADS {
            scope.spawn(move || {
                while t0.elapsed() < window {
                    for p in patterns {
                        std::hint::black_box(store.count(p));
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        t0
    })
    .elapsed()
    .as_secs_f64();
    let queries_per_s = done.load(Ordering::Relaxed) as f64 / qps;

    // Mixed churn: delete a slice of the corpus, insert the churn batch,
    // background maintenance running throughout.
    let doomed: Vec<u64> = (0..docs.len() as u64).filter(|id| id % 4 == 0).collect();
    let churn_bytes: usize = churn.iter().map(|(_, d)| d.len()).sum::<usize>()
        + doomed
            .iter()
            .map(|&id| docs[id as usize].1.len())
            .sum::<usize>();
    let t1 = Instant::now();
    store.delete_batch(&doomed);
    for chunk in churn.chunks(256) {
        store.insert_batch(chunk);
    }
    store.finish_background_work();
    let churn_mbs = churn_bytes as f64 / t1.elapsed().as_secs_f64() / 1e6;

    println!(
        "{:<8} {:>11.1} MB/s {:>12} {:>12} {:>14.0} {:>14.1}",
        shards,
        load_mbs,
        fmt_ns(count_ns),
        fmt_ns(find_ns),
        queries_per_s,
        churn_mbs
    );
}
