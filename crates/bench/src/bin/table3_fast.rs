//! **Table 3 harness** — O(n log σ)-bit fast indexes.
//!
//! Table 3's claim: plugging a fast, less-compressed static index
//! (Grossi–Vitter; our classical suffix-array stand-in) into the
//! transformations yields the first *dynamic* index whose locate is
//! essentially free (O(log^ε n) → O(1) here) instead of ∝ s, at the cost
//! of more space. We measure the same dynamic workload with
//! `Transform2<SaIndex>` vs `Transform2<FmIndexCompressed>` and the shape
//! to check is the locate gap at comparable update cost.

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;
use dyndex_succinct::SpaceUsage;

fn main() {
    println!("=== Table 3: O(n log sigma)-bit dynamic indexes (measured) ===\n");
    for &n in &[1usize << 16, 1 << 18, 1 << 20] {
        run_size(n);
    }
    println!("shape checks: sa-index locate/occ ~constant and 5x+ faster than");
    println!("fm at s=8; fm wins on space (bits/sym); update costs comparable.");
}

fn run_size(n: usize) {
    let mut r = rng(0x7AB1E003 ^ n as u64);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let patterns = planted_patterns(&mut r, &docs, 4, 24);
    let extra = {
        let t = markov_text(&mut r, n / 8, 26, 3);
        split_documents(&mut r, &t, 128, 1024, 1_000_000)
    };
    println!("corpus n={n} ({} docs)", docs.len());
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>12}",
        "index", "count(|P|=4)", "find(+locate)", "insert/sym", "bits/sym"
    );

    let opts = DynOptions::default();

    // Fast regime: classical suffix-array index inside Transformation 2.
    {
        let mut idx: Transform2Index<SaIndex> = Transform2Index::new((), opts, RebuildMode::Inline);
        for (id, d) in &docs {
            idx.insert(*id, d);
        }
        let count_ns = measure_ns(7, || patterns.iter().map(|p| idx.count(p)).sum::<usize>())
            / patterns.len() as f64;
        let find_ns = measure_ns(5, || {
            patterns.iter().map(|p| idx.find(p).len()).sum::<usize>()
        }) / patterns.len() as f64;
        let symbols: usize = extra.iter().map(|(_, d)| d.len()).sum();
        let t0 = std::time::Instant::now();
        for (id, d) in &extra {
            idx.insert(*id, d);
        }
        let ins = t0.elapsed().as_nanos() as f64 / symbols as f64;
        let bits = idx.heap_bytes() as f64 * 8.0 / idx.symbol_count() as f64;
        row("t2 + sa-index", count_ns, find_ns, ins, bits);
    }
    // Compressed regime for contrast.
    {
        let mut idx: Transform2Index<FmIndexCompressed> =
            Transform2Index::new(FmConfig { sample_rate: 8 }, opts, RebuildMode::Inline);
        for (id, d) in &docs {
            idx.insert(*id, d);
        }
        let count_ns = measure_ns(7, || patterns.iter().map(|p| idx.count(p)).sum::<usize>())
            / patterns.len() as f64;
        let find_ns = measure_ns(5, || {
            patterns.iter().map(|p| idx.find(p).len()).sum::<usize>()
        }) / patterns.len() as f64;
        let symbols: usize = extra.iter().map(|(_, d)| d.len()).sum();
        let t0 = std::time::Instant::now();
        for (id, d) in &extra {
            idx.insert(1_000_000 + id, d);
        }
        let ins = t0.elapsed().as_nanos() as f64 / symbols as f64;
        let bits = idx.heap_bytes() as f64 * 8.0 / idx.symbol_count() as f64;
        row("t2 + fm (s=8)", count_ns, find_ns, ins, bits);
    }
    println!();
}

fn row(name: &str, count: f64, find: f64, ins: f64, bits: f64) {
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>12.2}",
        name,
        fmt_ns(count),
        fmt_ns(find),
        fmt_ns(ins),
        bits
    );
}
