//! **Table 1 harness** — static compressed indexes.
//!
//! The paper's Table 1 lists static indexes with space `nHk + o(n log σ) +
//! O(n log n / s)` whose query costs split into `trange` (∝ |P|),
//! `tlocate` (∝ s per occurrence) and `textract` (∝ s + ℓ). We measure the
//! FM-index in both regimes (Huffman-compressed ≈ rows \[3\]/\[7\]; plain
//! wavelet ≈ the O(n log σ) regime) across the `s` sweep and report the
//! *shapes*: query time flat in n at fixed |P|, locate cost linear in s,
//! space falling as s grows toward the entropy bound.

use dyndex_bench::workloads::*;
use dyndex_succinct::{entropy, SpaceUsage};
use dyndex_text::{FmIndexCompressed, FmIndexPlain};

fn main() {
    println!("=== Table 1: static indexes (measured) ===\n");
    let mut r = rng(0x7AB1E001);
    for &n in &[1usize << 18, 1 << 20] {
        let text = markov_text(&mut r, n, 26, 3);
        let h0 = entropy::h0(&text);
        let h2 = entropy::hk(&text, 2);
        let docs = split_documents(&mut r, &text, 256, 2048, 0);
        let doc_refs: Vec<(u64, &[u8])> = docs.iter().map(|(id, d)| (*id, d.as_slice())).collect();
        let patterns = planted_patterns(&mut r, &docs, 8, 32);
        println!(
            "corpus n={n} ({} docs)  H0={h0:.2}  H2={h2:.2} bits/sym",
            docs.len()
        );
        println!(
            "{:<10} {:>4} {:>12} {:>14} {:>14} {:>12}",
            "index", "s", "trange(|P|=8)", "tlocate/occ", "textract/64B", "bits/sym"
        );
        for &s in &[4usize, 8, 16, 32, 64] {
            let fm = FmIndexCompressed::build(&doc_refs, s);
            report_row(
                "fm-huff",
                s,
                &fm_metrics(&fm, &patterns),
                fm.heap_bytes(),
                n,
            );
            let fmp = FmIndexPlain::build(&doc_refs, s);
            report_row(
                "fm-plain",
                s,
                &fm_metrics_plain(&fmp, &patterns),
                fmp.heap_bytes(),
                n,
            );
        }
        println!();
    }
    println!("shape checks: trange ~ flat in s; tlocate ~ linear in s;");
    println!("space(fm-huff) -> nH-ish as s grows; fm-plain ~ log sigma bits/sym + samples.");
}

struct Metrics {
    trange_ns: f64,
    tlocate_ns: f64,
    textract_ns: f64,
}

fn fm_metrics(fm: &FmIndexCompressed, patterns: &[Vec<u8>]) -> Metrics {
    metrics_impl(
        patterns,
        |p| fm.find_range(p),
        |p| fm.locate(p).len(),
        || fm.extract(0, 0, 64),
    )
}

fn fm_metrics_plain(fm: &FmIndexPlain, patterns: &[Vec<u8>]) -> Metrics {
    metrics_impl(
        patterns,
        |p| fm.find_range(p),
        |p| fm.locate(p).len(),
        || fm.extract(0, 0, 64),
    )
}

fn metrics_impl(
    patterns: &[Vec<u8>],
    mut range: impl FnMut(&[u8]) -> Option<(usize, usize)>,
    mut locate: impl FnMut(&[u8]) -> usize,
    mut extract: impl FnMut() -> Vec<u8>,
) -> Metrics {
    let trange = measure_ns(9, || {
        patterns
            .iter()
            .map(|p| range(p).map_or(0, |(l, r)| r - l))
            .sum::<usize>()
    }) / patterns.len() as f64;
    // Per-occurrence locate: total locate time minus range time, per occ.
    let occs: usize = patterns.iter().map(|p| locate(p)).sum();
    let tlocate_total = measure_ns(5, || patterns.iter().map(|p| locate(p)).sum::<usize>());
    let tlocate = if occs > 0 {
        (tlocate_total - trange * patterns.len() as f64).max(0.0) / occs as f64
    } else {
        0.0
    };
    let textract = measure_ns(9, &mut extract);
    Metrics {
        trange_ns: trange,
        tlocate_ns: tlocate,
        textract_ns: textract,
    }
}

fn report_row(name: &str, s: usize, m: &Metrics, heap_bytes: usize, n: usize) {
    println!(
        "{:<10} {:>4} {:>12} {:>14} {:>14} {:>12.2}",
        name,
        s,
        fmt_ns(m.trange_ns),
        fmt_ns(m.tlocate_ns),
        fmt_ns(m.textract_ns),
        heap_bytes as f64 * 8.0 / n as f64
    );
}
