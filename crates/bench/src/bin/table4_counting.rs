//! **Table 4 harness** — counting queries (Theorem 1).
//!
//! Claim: with the rank structure over `B`, counting costs
//! `trange + O(log n)`-ish *additively* — independent of `occ` — while
//! counting by enumeration costs `trange + occ · tlocate`. Updates grow by
//! an additive per-symbol term when counting is maintained. We measure
//! count-vs-enumerate across occurrence counts, and update cost with
//! counting on/off.

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;

fn main() {
    println!("=== Table 4: counting queries (measured) ===\n");
    let n = 1usize << 19;
    let mut r = rng(0x7AB1E004);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let fm = FmConfig { sample_rate: 8 };

    // Patterns binned by occurrence count (shorter pattern => more occs).
    let mut idx: Transform1Index<FmIndexCompressed> = Transform1Index::new(
        fm,
        DynOptions {
            counting: true,
            ..DynOptions::default()
        },
    );
    for (id, d) in &docs {
        idx.insert(*id, d);
    }
    println!("corpus n={n} ({} docs)\n", docs.len());
    println!(
        "{:<10} {:>8} {:>14} {:>18}",
        "|P|", "occ", "tcount", "tenum (find.len)"
    );
    for plen in [3usize, 5, 8, 12] {
        let pats = planted_patterns(&mut r, &docs, plen, 12);
        let occ: usize = pats.iter().map(|p| idx.count(p)).sum::<usize>() / pats.len().max(1);
        let tcount =
            measure_ns(9, || pats.iter().map(|p| idx.count(p)).sum::<usize>()) / pats.len() as f64;
        let tenum = measure_ns(5, || pats.iter().map(|p| idx.find(p).len()).sum::<usize>())
            / pats.len() as f64;
        println!(
            "{:<10} {:>8} {:>14} {:>18}",
            plen,
            occ,
            fmt_ns(tcount),
            fmt_ns(tenum)
        );
    }

    // Update overhead of maintaining the counting structure.
    println!("\nupdate cost with counting on/off (same batch):");
    let extra = {
        let t = markov_text(&mut r, n / 8, 26, 3);
        split_documents(&mut r, &t, 128, 1024, 1_000_000)
    };
    let symbols: usize = extra.iter().map(|(_, d)| d.len()).sum();
    for counting in [true, false] {
        let mut idx: Transform1Index<FmIndexCompressed> = Transform1Index::new(
            fm,
            DynOptions {
                counting,
                ..DynOptions::default()
            },
        );
        for (id, d) in &docs {
            idx.insert(*id, d);
        }
        let t0 = std::time::Instant::now();
        for (id, d) in &extra {
            idx.insert(*id, d);
        }
        let ins = t0.elapsed().as_nanos() as f64 / symbols as f64;
        let t1 = std::time::Instant::now();
        for (id, _) in &extra {
            idx.delete(*id);
        }
        let del = t1.elapsed().as_nanos() as f64 / symbols as f64;
        println!(
            "  counting={:<5}  insert/sym {:>10}  delete/sym {:>10}",
            counting,
            fmt_ns(ins),
            fmt_ns(del)
        );
    }
    println!("\nshape checks: tcount ~flat in occ (additive log-term), tenum grows");
    println!("with occ; counting adds a modest additive update overhead.");
}
