//! **Theorem 3 harness** — dynamic directed graphs.
//!
//! A directed graph is the relation "u → v" between nodes. Claims mirror
//! Theorem 2: adjacency O(log log σl · log log n)-class, neighbor /
//! reverse-neighbor reporting per-datum, counting O(log n), updates
//! O(log^ε n). Workload: a power-law digraph under edge churn (the RDF /
//! web-graph regime the paper's introduction motivates).

use dyndex_bench::workloads::*;
use dyndex_core::DynOptions;
use dyndex_relations::DynamicGraph;
use dyndex_succinct::SpaceUsage;

fn main() {
    println!("=== Theorem 3: dynamic directed graph (measured) ===\n");
    for &edges in &[20_000usize, 100_000] {
        run(edges);
    }
    println!("shape checks: neighbor reporting ~flat per datum; adjacency and");
    println!("degree queries cheap; edge updates polylog; reverse-neighbor cost");
    println!("symmetric to forward (the point of the S+N encoding).");
}

fn run(edge_target: usize) {
    let mut r = rng(0x7AB1E006 ^ edge_target as u64);
    let nodes = (edge_target as u64 / 8).max(64);
    let mut g = DynamicGraph::new(DynOptions::default());
    let stream = edge_stream(&mut r, nodes, edge_target);
    let t0 = std::time::Instant::now();
    let mut inserted = 0usize;
    for &(u, v) in &stream {
        if g.add_edge(u, v) {
            inserted += 1;
        }
    }
    let ins = t0.elapsed().as_nanos() as f64 / inserted.max(1) as f64;

    let probes: Vec<u64> = (0..64).map(|_| zipf(&mut r, nodes)).collect();
    let out_total: usize = probes.iter().map(|&u| g.out_neighbors(u).len()).sum();
    let t_out = measure_ns(7, || {
        probes
            .iter()
            .map(|&u| g.out_neighbors(u).len())
            .sum::<usize>()
    });
    let t_in = measure_ns(7, || {
        probes
            .iter()
            .map(|&v| g.in_neighbors(v).len())
            .sum::<usize>()
    });
    let t_adj = measure_ns(9, || {
        probes
            .iter()
            .zip(probes.iter().rev())
            .filter(|&(&u, &v)| g.has_edge(u, v))
            .count()
    }) / probes.len() as f64;
    let t_deg = measure_ns(9, || probes.iter().map(|&u| g.out_degree(u)).sum::<usize>())
        / probes.len() as f64;

    // Churn: delete a slice of edges, re-insert.
    let victims: Vec<(u64, u64)> = stream.iter().step_by(13).copied().collect();
    let t1 = std::time::Instant::now();
    let mut removed = 0usize;
    for &(u, v) in &victims {
        if g.remove_edge(u, v) {
            removed += 1;
        }
    }
    let del = t1.elapsed().as_nanos() as f64 / removed.max(1) as f64;
    g.check_invariants();

    println!(
        "graph: {} nodes, {} edges after dedup",
        nodes,
        g.num_edges() + removed
    );
    println!("  add-edge          {:>10}/edge", fmt_ns(ins));
    println!("  remove-edge       {:>10}/edge", fmt_ns(del));
    println!(
        "  out-neighbors     {:>10}/datum  ({} reported)",
        fmt_ns(t_out / out_total.max(1) as f64),
        out_total
    );
    println!(
        "  in-neighbors      {:>10}/datum",
        fmt_ns(t_in / out_total.max(1) as f64)
    );
    println!("  adjacency         {:>10}/query", fmt_ns(t_adj));
    println!("  out-degree        {:>10}/query", fmt_ns(t_deg));
    println!(
        "  space             {:>10.2} bits/edge\n",
        g.heap_bytes() as f64 * 8.0 / g.num_edges().max(1) as f64
    );
}
