//! **Figure 9 harness** (beyond the paper) — the bulk-ingestion fast
//! path: `ShardedStore::ingest` (stream → SA-IS-built static levels,
//! installed through the normal epoch path) vs insert-at-a-time through
//! the logarithmic-method cascade, across corpus sizes and shard counts.
//!
//! Insert-at-a-time pays for every document once in `C0` and again at
//! each merge on its way down the level cascade — the amortized
//! `O(log n)` rebuild passes Transformation 2 charges for *incremental*
//! updates. An initial load needs none of that: the paper's static
//! substructures build directly from the corpus in linear time, so
//! `ingest` cuts the stream into chunk-sized batches, SA-IS-builds each
//! on the resident worker pool, and installs the finished levels as
//! tops. The gap is the whole point of the fast path.
//!
//! Also measured: **re-shard** — restore a snapshot taken at one shard
//! count, then stream the documents into a store with a different shard
//! count via `ingest` (the migration story: extract + bulk-build instead
//! of replaying the insert history).

use dyndex_bench::workloads::*;
use dyndex_core::{DynOptions, FmConfig, RebuildMode};
use dyndex_persist::{DurableStore, RestoreOptions};
use dyndex_store::{FanOutPolicy, MaintenancePolicy, ShardedStore, StoreOptions};
use dyndex_text::FmIndexCompressed;

type Store = ShardedStore<FmIndexCompressed>;
type Durable = DurableStore<FmIndexCompressed>;

fn store_opts(shards: usize) -> StoreOptions {
    StoreOptions {
        num_shards: shards,
        index: DynOptions::default(),
        mode: RebuildMode::Background,
        maintenance: MaintenancePolicy::Manual,
        fan_out: FanOutPolicy::Pooled,
        ..StoreOptions::default()
    }
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn mb_per_sec(bytes: usize, ns: f64) -> f64 {
    mb(bytes) / (ns / 1_000_000_000.0).max(1e-9)
}

fn main() {
    println!("=== Fig 9: bulk ingestion — ingest() vs insert-at-a-time ===\n");
    println!(
        "{:<10} {:>7} {:>7} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "bytes", "docs", "shards", "insert", "ingest", "ins MB/s", "ing MB/s", "speedup"
    );
    for &n in &[1usize << 16, 1 << 18, 1 << 20, 1 << 22] {
        // One measured run for the big corpora: the serial baseline's
        // cascade rebuilds dominate wall-clock, and the gap we are
        // measuring is orders of magnitude, not noise-sized.
        let runs = if n >= 1 << 20 { 1 } else { 2 };
        for &shards in &[1usize, 4, 8] {
            let mut r = rng(DEFAULT_SEED ^ (n as u64) ^ ((shards as u64) << 40));
            let text = markov_text(&mut r, n, 26, 3);
            let docs = split_documents(&mut r, &text, 128, 1024, 0);
            let patterns = planted_patterns(&mut r, &docs, 8, 4);
            let expected = {
                // Reference answer from a serially-built store, reused to
                // check both measured builds below.
                let store = Store::new(FmConfig::default(), store_opts(shards));
                store.insert_batch(&docs).expect("reference insert");
                store.flush();
                store.count(&patterns[0])
            };

            // Baseline: one document at a time through the dynamic
            // buffer and the logarithmic-method cascade.
            let insert_ns = measure_ns(runs, || {
                let store = Store::new(FmConfig::default(), store_opts(shards));
                for (id, bytes) in &docs {
                    store.insert(*id, bytes).expect("insert");
                }
                store.flush();
                assert_eq!(store.count(&patterns[0]), expected);
                store.num_docs()
            });

            // Fast path: stream → chunked SA-IS builds on the pool →
            // levels installed as tops through the epoch path.
            let ingest_ns = measure_ns(runs, || {
                let store = Store::new(FmConfig::default(), store_opts(shards));
                let stats = store.ingest(docs.iter().cloned()).expect("ingest");
                assert_eq!(stats.docs as usize, docs.len());
                assert_eq!(store.count(&patterns[0]), expected);
                stats.levels
            });

            println!(
                "{:<10} {:>7} {:>7} {:>12} {:>12} {:>10.1} {:>10.1} {:>8.1}x",
                n,
                docs.len(),
                shards,
                fmt_ns(insert_ns),
                fmt_ns(ingest_ns),
                mb_per_sec(n, insert_ns),
                mb_per_sec(n, ingest_ns),
                insert_ns / ingest_ns.max(1.0),
            );
        }
    }

    reshard();

    println!("\nshape checks: ingest beats insert-at-a-time everywhere and the gap");
    println!("widens with corpus size (the cascade pays O(log n) rebuild passes the");
    println!("static construction skips); extra shards help both paths but ingest");
    println!("more (chunk builds are embarrassingly parallel across the pool).");
    println!("Re-shard = restore + extract + ingest, priced like a bulk load.");
}

/// Re-shard: snapshot a 4-shard durable store, restore it, and stream
/// its documents into a fresh 8-shard store through `ingest`.
fn reshard() {
    println!("\n--- re-shard: restore 4-shard snapshot, ingest into 8 shards ---");
    let n = 1usize << 20;
    let mut r = rng(DEFAULT_SEED ^ 0xF16_0009);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let patterns = planted_patterns(&mut r, &docs, 8, 4);

    let dir = std::env::temp_dir().join(format!("dyndex-fig9-reshard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let live = Durable::create(&dir, FmConfig::default(), store_opts(4)).expect("create");
    live.ingest(docs.iter().cloned()).expect("seed ingest");
    live.snapshot().expect("snapshot");
    let expected = live.count(&patterns[0]);
    drop(live);

    let restore = RestoreOptions {
        mode: RebuildMode::Background,
        maintenance: MaintenancePolicy::Manual,
        ..RestoreOptions::default()
    };
    let t0 = std::time::Instant::now();
    let source = Durable::open(&dir, restore).expect("open");
    let restore_ns = t0.elapsed().as_nanos() as f64;

    let target = Store::new(FmConfig::default(), store_opts(8));
    let t0 = std::time::Instant::now();
    let stats = target
        .ingest(docs.iter().map(|(id, d)| {
            let bytes = source.extract(*id, 0, d.len()).expect("extract");
            (*id, bytes)
        }))
        .expect("re-shard ingest");
    let ingest_ns = t0.elapsed().as_nanos() as f64;
    assert_eq!(target.count(&patterns[0]), expected);

    println!(
        "restore(4): {:>10}   extract+ingest(8): {:>10} ({:.1} MB/s, {} levels)   total: {}",
        fmt_ns(restore_ns),
        fmt_ns(ingest_ns),
        mb_per_sec(stats.bytes as usize, ingest_ns),
        stats.levels,
        fmt_ns(restore_ns + ingest_ns),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
