//! **Figure 6 harness** (beyond the paper) — the network serving layer
//! under load: closed-loop and open-loop generators against a live
//! `dyndex-serve` TCP server, plus a backpressure demonstration.
//!
//! Three sections:
//!
//! * **Closed loop** — N clients issue count/find requests back-to-back
//!   (each waits for its reply before sending the next). Throughput and
//!   latency percentiles vs client count show how far the resident
//!   worker pool scales before connection handling saturates.
//! * **Open loop** — requests are issued on a fixed arrival schedule
//!   regardless of completions, and latency is measured from the
//!   *scheduled* arrival time (coordination-omission-free). As offered
//!   load approaches capacity, p99 inflates long before p50 does.
//! * **Shedding** — one shard's worker is wedged for a fixed window
//!   while a client keeps querying. With the shed threshold engaged,
//!   fan-out requests get typed `Busy` replies immediately and the
//!   *accepted* requests keep near-idle latency; with shedding disabled
//!   the same requests queue behind the wedged worker and p99 blows up
//!   to the wedge duration. The shape check is the acceptance bar:
//!   shedding must hold accepted-request p99 under 10x the idle
//!   baseline where the no-shed configuration exceeds it.
//!
//! The server is real (`std::net` TCP over loopback), the clients are
//! real blocking [`Client`] handles, and every latency includes framing,
//! checksumming, and the kernel loopback round trip.

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;
use dyndex_serve::{Client, ClientError, ServeOptions, Server};
use dyndex_store::{FanOutPolicy, MaintenancePolicy, ShardedStore, StoreOptions, Telemetry};
use dyndex_text::FmIndexCompressed;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

const SHARDS: usize = 4;

fn main() {
    println!("=== Fig 6: serving layer under load (measured) ===\n");
    let n = 1usize << 17;
    let mut r = rng(DEFAULT_SEED ^ 0xF16_0006);
    let text = markov_text(&mut r, n, 26, 2);
    let docs = split_documents(&mut r, &text, 128, 512, 0);
    let patterns = planted_patterns(&mut r, &docs, 8, 16);

    let server = server(&docs, ServeOptions::default());
    println!(
        "corpus n={n} ({} docs, {SHARDS} shards), {} patterns, server {}",
        docs.len(),
        patterns.len(),
        server.addr()
    );

    closed_loop(&server, &patterns);
    open_loop(&server, &patterns);
    drop(server);
    shedding(&docs, &patterns);
}

fn server(docs: &[(u64, Vec<u8>)], serve: ServeOptions) -> Server<FmIndexCompressed> {
    let store: ShardedStore<FmIndexCompressed> = ShardedStore::new(
        FmConfig { sample_rate: 8 },
        StoreOptions {
            num_shards: SHARDS,
            index: DynOptions::default(),
            mode: RebuildMode::Inline,
            maintenance: MaintenancePolicy::Periodic(Duration::from_secs(3600)),
            fan_out: FanOutPolicy::Pooled,
            telemetry: Telemetry::Enabled,
            ..StoreOptions::default()
        },
    );
    for chunk in docs.chunks(256) {
        store.insert_batch(chunk).expect("bulk load");
    }
    store.flush();
    Server::over(Arc::new(store), serve).expect("bind loopback server")
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize] as f64
}

/// Closed loop: `clients` threads, each its own connection, each request
/// waits for its reply. Returns (requests/s, sorted latencies ns).
fn run_closed(
    addr: SocketAddr,
    patterns: &[Vec<u8>],
    clients: usize,
    window: Duration,
) -> (f64, Vec<u64>) {
    let all = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let all = &all;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat = Vec::new();
                let mut i = c; // stagger pattern phase across clients
                while t0.elapsed() < window {
                    let pattern = &patterns[i % patterns.len()];
                    let sent = Instant::now();
                    // 1-in-4 requests locate occurrences, the rest count.
                    if i % 4 == 0 {
                        std::hint::black_box(client.find_limit(pattern, 16).expect("find"));
                    } else {
                        std::hint::black_box(client.count(pattern).expect("count"));
                    }
                    lat.push(sent.elapsed().as_nanos() as u64);
                    i += 1;
                }
                all.lock().unwrap().extend(lat);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut lat = all.into_inner().unwrap();
    lat.sort_unstable();
    (lat.len() as f64 / elapsed, lat)
}

fn closed_loop(server: &Server<FmIndexCompressed>, patterns: &[Vec<u8>]) {
    println!("\nclosed loop (each client waits for its reply; window 400ms):");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10}",
        "clients", "requests/s", "p50", "p99", "max"
    );
    for clients in [1usize, 2, 4, 8] {
        let (rps, lat) = run_closed(server.addr(), patterns, clients, Duration::from_millis(400));
        println!(
            "{:<8} {:>12.0} {:>10} {:>10} {:>10}",
            clients,
            rps,
            fmt_ns(percentile(&lat, 0.50)),
            fmt_ns(percentile(&lat, 0.99)),
            fmt_ns(*lat.last().unwrap() as f64),
        );
    }
    println!("shape check: throughput rises with clients while p50 stays flat until");
    println!("the pool saturates; past that, added clients only deepen the queues.");
}

/// Open loop: requests arrive on a fixed schedule split across threads;
/// latency runs from the scheduled arrival, so a stalled client charges
/// its queue wait to every request behind it (no coordination omission).
fn run_open(
    addr: SocketAddr,
    patterns: &[Vec<u8>],
    clients: usize,
    offered_rps: u64,
    window: Duration,
) -> (f64, Vec<u64>) {
    let interval = Duration::from_nanos(1_000_000_000 / offered_rps);
    let completed = AtomicU64::new(0);
    let all = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (all, completed) = (&all, &completed);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat = Vec::new();
                // Thread c serves arrivals c, c+clients, c+2*clients, ...
                let mut j = c as u32;
                loop {
                    let scheduled = t0 + interval * j;
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    if t0.elapsed() >= window {
                        break;
                    }
                    let pattern = &patterns[j as usize % patterns.len()];
                    std::hint::black_box(client.count(pattern).expect("count"));
                    lat.push((Instant::now() - scheduled).as_nanos() as u64);
                    completed.fetch_add(1, Ordering::Relaxed);
                    j += clients as u32;
                }
                all.lock().unwrap().extend(lat);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut lat = all.into_inner().unwrap();
    lat.sort_unstable();
    (completed.load(Ordering::Relaxed) as f64 / elapsed, lat)
}

fn open_loop(server: &Server<FmIndexCompressed>, patterns: &[Vec<u8>]) {
    // Calibrate capacity from a closed-loop burst, then offer fractions
    // of it so the figure is meaningful on any machine.
    let (capacity, _) = run_closed(server.addr(), patterns, 4, Duration::from_millis(250));
    println!("\nopen loop (fixed arrival schedule, 4 clients; latency from scheduled");
    println!("arrival time; closed-loop capacity ~{capacity:.0} requests/s):");
    println!(
        "{:<14} {:>12} {:>10} {:>10}",
        "offered", "achieved/s", "p50", "p99"
    );
    for fraction in [0.25f64, 0.5, 0.8] {
        let offered = ((capacity * fraction) as u64).max(100);
        let (achieved, lat) = run_open(
            server.addr(),
            patterns,
            4,
            offered,
            Duration::from_millis(400),
        );
        println!(
            "{:<14} {:>12.0} {:>10} {:>10}",
            format!("{offered}/s ({:.0}%)", fraction * 100.0),
            achieved,
            fmt_ns(percentile(&lat, 0.50)),
            fmt_ns(percentile(&lat, 0.99)),
        );
    }
    println!("shape check: at low offered load p99 tracks the closed-loop service");
    println!("time; approaching capacity, arrivals outpace completions in bursts and");
    println!("p99 inflates first — the open loop charges that wait, a closed loop");
    println!("would silently slow its own arrivals instead.");
}

/// Wedges shard 0's resident worker (a job parked on a channel plus a few
/// queued no-ops), runs a querying client through the wedge window, and
/// reports accepted-request latency plus typed-`Busy` counts.
fn run_wedged(
    docs: &[(u64, Vec<u8>)],
    patterns: &[Vec<u8>],
    shed_queue_depth: usize,
) -> (Vec<u64>, u64, u64) {
    let wedge = Duration::from_millis(250);
    let server = server(
        docs,
        ServeOptions {
            shed_queue_depth,
            ..ServeOptions::default()
        },
    );
    let (release, parked) = mpsc::channel::<()>();
    assert!(server.store().submit_background_job(
        0,
        Box::new(move || {
            let _ = parked.recv();
        })
    ));
    for _ in 0..4 {
        assert!(server.store().submit_background_job(0, Box::new(|| {})));
    }
    while server.store().shard_queue_depth(0) < 4 {
        std::thread::yield_now();
    }

    // The wedge lifts mid-window from a timer thread: without it, a
    // no-shed configuration would deadlock the client (its request sits
    // behind the parked worker, and the release would never run).
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(wedge);
        drop(release);
    });

    let mut client = Client::connect(server.addr()).expect("connect");
    let mut accepted = Vec::new();
    let mut busy = 0u64;
    let window = wedge * 2;
    let t0 = Instant::now();
    let mut i = 0usize;
    while t0.elapsed() < window {
        let sent = Instant::now();
        match client.count(&patterns[i % patterns.len()]) {
            Ok(_) => accepted.push(sent.elapsed().as_nanos() as u64),
            Err(ClientError::Busy { .. }) => busy += 1,
            Err(other) => panic!("unexpected client error: {other}"),
        }
        i += 1;
    }
    releaser.join().expect("releaser");
    server.store().flush();
    let shed_total = server
        .store()
        .metrics()
        .expect("telemetry enabled")
        .find_counter("dyndex_serve_shed_total")
        .expect("shed counter")
        .get();
    accepted.sort_unstable();
    (accepted, busy, shed_total)
}

fn shedding(docs: &[(u64, Vec<u8>)], patterns: &[Vec<u8>]) {
    // Idle baseline: one client, no wedge, generous shed threshold.
    let baseline_server = server(docs, ServeOptions::default());
    let (_, idle_lat) = run_closed(
        baseline_server.addr(),
        patterns,
        1,
        Duration::from_millis(250),
    );
    drop(baseline_server);
    let idle_p99 = percentile(&idle_lat, 0.99);

    println!("\nshedding (shard 0 wedged for the first 250ms of a 500ms window");
    println!(
        "while one client queries; idle p99 baseline {}):",
        fmt_ns(idle_p99)
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "shed", "accepted", "busy", "p99", "p99/idle", "max", ">10x idle"
    );
    let mut ratios = Vec::new();
    for (label, depth) in [("on (2)", 2usize), ("off (1<<30)", 1usize << 30)] {
        let (accepted, busy, shed_total) = run_wedged(docs, patterns, depth);
        let p99 = percentile(&accepted, 0.99);
        let stalled = accepted
            .iter()
            .filter(|&&ns| ns as f64 > 10.0 * idle_p99)
            .count();
        ratios.push(p99 / idle_p99);
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>11.1}x {:>10} {:>10}",
            label,
            accepted.len(),
            busy,
            fmt_ns(p99),
            p99 / idle_p99,
            fmt_ns(percentile(&accepted, 1.0)),
            stalled
        );
        if depth == 2 {
            assert!(shed_total >= busy, "every Busy reply is counted as a shed");
        }
    }
    println!("shape check: with shedding on, fan-out requests that would queue");
    println!("behind the wedged worker get an immediate typed Busy (counted by");
    println!("dyndex_serve_shed_total == the busy column) and every accepted");
    println!("request stays within 10x of the idle p99; with shedding off a");
    println!("request rides out the wedge instead — its latency climbs toward the");
    println!("full 250ms wedge (the max column) and the >10x-idle stall count is");
    println!("nonzero, which is exactly what the shed threshold prevents.");
    if ratios[0] >= 10.0 {
        println!(
            "WARNING: shed-on p99 ratio {:.1}x breached the 10x bound",
            ratios[0]
        );
    }
}
