//! **Table 2 harness** — dynamic indexing: our transformations vs the
//! dynamic-rank prior art.
//!
//! The paper's Table 2 claim: previous dynamic indexes pay a ~log n
//! factor on *every* query symbol (dynamic rank, Fredman–Saks), while the
//! transformations keep queries at the static index's speed (× log log n)
//! and amortize updates. We measure, at growing collection sizes:
//! count-query time, report (find) time, insert time/symbol, and delete
//! time/symbol for Transformation 1, Transformation 2 (inline installs),
//! Transformation 3, the dynamic-BWT baseline, and rebuild-all.

use dyndex_baseline::{DynFmBaseline, RebuildAllIndex};
use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;
use dyndex_core::transform3::transform3_options;
use dyndex_store::{MaintenancePolicy, ShardedStore, StoreOptions};

fn main() {
    println!("=== Table 2: dynamic indexing (measured) ===\n");
    for &n in &[1usize << 16, 1 << 18, 1 << 20] {
        run_size(n);
    }
    println!("shape checks: our query times ~flat vs n and close to rebuild-all's;");
    println!("baseline count grows ~log n per symbol; our updates ~polylog/symbol,");
    println!("far below rebuild-all's O(n)/update.");
}

fn run_size(n: usize) {
    let mut r = rng(0x7AB1E002 ^ n as u64);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let patterns = planted_patterns(&mut r, &docs, 8, 24);
    let extra = {
        let extra_text = markov_text(&mut r, n / 8, 26, 3);
        split_documents(&mut r, &extra_text, 128, 1024, 1_000_000)
    };
    println!(
        "corpus n={n} ({} docs), update batch {} docs",
        docs.len(),
        extra.len()
    );
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        "index", "count", "find", "insert/sym", "delete/sym"
    );

    let opts = DynOptions::default();
    let fm = FmConfig { sample_rate: 8 };

    // Transformation 1.
    {
        let mut idx: Transform1Index<FmIndexCompressed> = Transform1Index::new(fm, opts);
        for (id, d) in &docs {
            idx.insert(*id, d);
        }
        let count_ns = measure_ns(7, || patterns.iter().map(|p| idx.count(p)).sum::<usize>())
            / patterns.len() as f64;
        let find_ns = measure_ns(3, || {
            patterns.iter().map(|p| idx.find(p).len()).sum::<usize>()
        }) / patterns.len() as f64;
        let ins = time_inserts(&extra, |id, d| idx.insert(id, d));
        let del = time_deletes(&extra, |id| {
            idx.delete(id);
        });
        row("transform1", count_ns, find_ns, ins, del);
    }
    // Transformation 2 (inline installs: deterministic foreground costs).
    {
        let mut idx: Transform2Index<FmIndexCompressed> =
            Transform2Index::new(fm, opts, RebuildMode::Inline);
        for (id, d) in &docs {
            idx.insert(*id, d);
        }
        let count_ns = measure_ns(7, || patterns.iter().map(|p| idx.count(p)).sum::<usize>())
            / patterns.len() as f64;
        let find_ns = measure_ns(3, || {
            patterns.iter().map(|p| idx.find(p).len()).sum::<usize>()
        }) / patterns.len() as f64;
        let ins = time_inserts(&extra, |id, d| idx.insert(id, d));
        let del = time_deletes(&extra, |id| {
            idx.delete(id);
        });
        row("transform2", count_ns, find_ns, ins, del);
    }
    // Transformation 3.
    {
        let mut idx: Transform3Index<FmIndexCompressed> =
            new_transform3(fm, transform3_options(opts));
        for (id, d) in &docs {
            idx.insert(*id, d);
        }
        let count_ns = measure_ns(7, || patterns.iter().map(|p| idx.count(p)).sum::<usize>())
            / patterns.len() as f64;
        let find_ns = measure_ns(3, || {
            patterns.iter().map(|p| idx.find(p).len()).sum::<usize>()
        }) / patterns.len() as f64;
        let ins = time_inserts(&extra, |id, d| idx.insert(id, d));
        let del = time_deletes(&extra, |id| {
            idx.delete(id);
        });
        row("transform3", count_ns, find_ns, ins, del);
    }
    // Sharded store over Transformation 2: 4 shards, pooled fan-out,
    // background rebuilds installed by the resident workers.
    {
        let store: ShardedStore<FmIndexCompressed> = ShardedStore::new(
            fm,
            StoreOptions {
                num_shards: 4,
                index: opts,
                mode: RebuildMode::Background,
                maintenance: MaintenancePolicy::Periodic(std::time::Duration::from_micros(500)),
                ..StoreOptions::default()
            },
        );
        store.insert_batch(&docs).expect("insert batch");
        store.finish_background_work();
        let count_ns = measure_ns(7, || patterns.iter().map(|p| store.count(p)).sum::<usize>())
            / patterns.len() as f64;
        let find_ns = measure_ns(3, || {
            patterns.iter().map(|p| store.find(p).len()).sum::<usize>()
        }) / patterns.len() as f64;
        let ins = time_inserts(&extra, |id, d| store.insert(id, d).expect("insert"));
        let del = time_deletes(&extra, |id| {
            store.delete(id).expect("delete");
        });
        row("sharded x4", count_ns, find_ns, ins, del);
    }
    // Prior-art dynamic-rank baseline.
    {
        let mut idx = DynFmBaseline::new();
        for (id, d) in &docs {
            idx.insert(*id, d);
        }
        let count_ns = measure_ns(7, || patterns.iter().map(|p| idx.count(p)).sum::<usize>())
            / patterns.len() as f64;
        let ins = time_inserts(&extra, |id, d| idx.insert(id, d));
        let del = time_deletes(&extra, |id| {
            idx.delete(id);
        });
        row("dyn-rank [35]", count_ns, f64::NAN, ins, del);
    }
    // Rebuild-all baseline (update batch shrunk: it is O(n) per update).
    {
        let mut idx: RebuildAllIndex<FmIndexCompressed> = RebuildAllIndex::new(fm, true);
        for (id, d) in &docs {
            idx.docs_push(*id, d);
        }
        idx.force_rebuild();
        let count_ns = measure_ns(7, || patterns.iter().map(|p| idx.count(p)).sum::<usize>())
            / patterns.len() as f64;
        let find_ns = measure_ns(3, || {
            patterns.iter().map(|p| idx.find(p).len()).sum::<usize>()
        }) / patterns.len() as f64;
        let few: Vec<(u64, Vec<u8>)> = extra.iter().take(3).cloned().collect();
        let ins = time_inserts(&few, |id, d| idx.insert(id, d));
        let del = time_deletes(&few, |id| {
            idx.delete(id);
        });
        row("rebuild-all", count_ns, find_ns, ins, del);
    }
    println!();
}

/// Times insertion of all docs in `batch`, per symbol.
fn time_inserts(batch: &[(u64, Vec<u8>)], mut ins: impl FnMut(u64, &[u8])) -> f64 {
    let symbols: usize = batch.iter().map(|(_, d)| d.len()).sum::<usize>().max(1);
    let t0 = std::time::Instant::now();
    for (id, d) in batch {
        ins(*id, d);
    }
    t0.elapsed().as_nanos() as f64 / symbols as f64
}

/// Times deletion of all docs in `batch`, per symbol.
fn time_deletes(batch: &[(u64, Vec<u8>)], mut del: impl FnMut(u64)) -> f64 {
    let symbols: usize = batch.iter().map(|(_, d)| d.len()).sum::<usize>().max(1);
    let t1 = std::time::Instant::now();
    for (id, _) in batch {
        del(*id);
    }
    t1.elapsed().as_nanos() as f64 / symbols as f64
}

fn row(name: &str, count: f64, find: f64, ins: f64, del: f64) {
    let finds = if find.is_nan() {
        "n/a".to_string()
    } else {
        fmt_ns(find)
    };
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        name,
        fmt_ns(count),
        finds,
        fmt_ns(ins),
        fmt_ns(del)
    );
}

/// Small extension trait avoided: direct helpers for the rebuild-all
/// baseline's bulk-load (inserting doc-by-doc would be O(n²)).
trait BulkLoad {
    fn docs_push(&mut self, id: u64, bytes: &[u8]);
    fn force_rebuild(&mut self);
}

impl<I: dyndex_core::StaticIndex> BulkLoad for RebuildAllIndex<I> {
    fn docs_push(&mut self, id: u64, bytes: &[u8]) {
        self.push_without_rebuild(id, bytes);
    }
    fn force_rebuild(&mut self) {
        self.rebuild_now();
    }
}
