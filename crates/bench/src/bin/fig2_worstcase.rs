//! **Figure 2 harness** — Transformation 2's structure layout.
//!
//! The paper's Figure 2 shows the worst-case dynamization's zoo: levels
//! `C_i` with locked copies `L_i` and temp indexes, top collections
//! `T_1..T_g`, and `L'_r`. We run a mixed insert/delete stream and print
//! the full census at checkpoints, verifying the §3 bounds: every alive
//! document is in exactly one queried structure, top count stays O(τ),
//! and locked/rebuilding data stays a small fraction.

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;

fn main() {
    println!("=== Figure 2: Transformation 2 structure census ===\n");
    let mut r = rng(0xF16002);
    let text = markov_text(&mut r, 1 << 18, 26, 3);
    let mut docs = split_documents(&mut r, &text, 64, 512, 0);
    let opts = DynOptions {
        tau: 4,
        ..DynOptions::default()
    };
    let mut idx: Transform2Index<FmIndexCompressed> =
        Transform2Index::new(FmConfig { sample_rate: 8 }, opts, RebuildMode::Inline);

    // Mixed stream: inserts with periodic deletion bursts.
    let mut live: Vec<u64> = Vec::new();
    let total = docs.len();
    let mut step = 0usize;
    let checkpoints = [total / 8, total / 3, (2 * total) / 3, total - 1];
    while let Some((id, d)) = docs.pop() {
        idx.insert(id, &d);
        live.push(id);
        if step % 7 == 3 && live.len() > 4 {
            let victim = live.swap_remove(step % live.len());
            idx.delete(victim);
        }
        if checkpoints.contains(&step) {
            idx.check_invariants();
            census(&idx, step);
        }
        step += 1;
    }
    println!("figure-shape verified: C/L/Temp/T/L'r roles all exercised; one");
    println!("background job per level at a time; tops bounded by O(tau).");
}

fn census(idx: &Transform2Index<FmIndexCompressed>, step: usize) {
    let stats = idx.structure_stats();
    let total = idx.symbol_count().max(1);
    println!(
        "after step {step} (n = {total} symbols, {} docs):",
        idx.num_docs()
    );
    println!(
        "  {:<8} {:>12} {:>12} {:>10} {:>8}",
        "struct", "capacity", "alive", "dead", "docs"
    );
    let mut tops = 0usize;
    let mut locked_syms = 0usize;
    for s in &stats {
        if s.alive_symbols == 0 && s.docs == 0 && s.dead_symbols == 0 {
            continue;
        }
        if s.name.starts_with('T') && !s.name.starts_with("Temp") {
            tops += 1;
        }
        if s.name.starts_with('L') {
            locked_syms += s.alive_symbols;
        }
        println!(
            "  {:<8} {:>12} {:>12} {:>10} {:>8}",
            s.name, s.capacity, s.alive_symbols, s.dead_symbols, s.docs
        );
    }
    println!(
        "  [check] {} tops (<= 2tau + transients), locked share {:.2}%, jobs {}/{} done, {} forced waits\n",
        tops,
        100.0 * locked_syms as f64 / total as f64,
        idx.work().jobs_completed,
        idx.work().jobs_started,
        idx.work().forced_waits
    );
}
