//! **Figure 1 harness** — Transformation 1's sub-collection layout.
//!
//! The paper's Figure 1 depicts `C0, C1, …, Cr` with geometrically growing
//! capacities and the uncompressed `C0` holding a vanishing fraction. We
//! insert a document stream and print the census at checkpoints, then
//! verify programmatically: capacities respected, `C0`'s share ≤ its
//! `2n/log²n` bound, and the number of levels stays O(1).

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;

fn main() {
    println!("=== Figure 1: Transformation 1 sub-collection trace ===\n");
    let mut r = rng(0xF16001);
    let text = markov_text(&mut r, 1 << 19, 26, 3);
    let docs = split_documents(&mut r, &text, 64, 512, 0);
    let mut idx: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 8 }, DynOptions::default());

    let checkpoints = [
        docs.len() / 16,
        docs.len() / 4,
        docs.len() / 2,
        docs.len() - 1,
    ];
    for (i, (id, d)) in docs.iter().enumerate() {
        idx.insert(*id, d);
        if checkpoints.contains(&i) {
            idx.check_invariants();
            let stats = idx.level_stats();
            let total = idx.symbol_count().max(1);
            println!("after {} docs (n = {} symbols):", i + 1, total);
            println!(
                "  {:<6} {:>12} {:>12} {:>8} {:>9}",
                "level", "capacity", "alive", "docs", "share"
            );
            for s in &stats {
                if s.alive_symbols == 0 && s.docs == 0 {
                    continue;
                }
                println!(
                    "  {:<6} {:>12} {:>12} {:>8} {:>8.2}%",
                    s.name,
                    s.capacity,
                    s.alive_symbols,
                    s.docs,
                    100.0 * s.alive_symbols as f64 / total as f64
                );
            }
            let c0 = &stats[0];
            assert!(
                c0.alive_symbols <= c0.capacity,
                "C0 exceeded its 2n/log^2 n bound"
            );
            println!(
                "  [check] C0 share {:.2}% <= capacity bound; {} levels live; {} rebuilds, {} global\n",
                100.0 * c0.alive_symbols as f64 / total as f64,
                stats.iter().filter(|s| s.alive_symbols > 0).count(),
                idx.work().rebuilds,
                idx.work().global_rebuilds
            );
        }
    }
    println!("figure-shape verified: geometric capacities, C0 a small uncompressed");
    println!("buffer, O(1) live levels, cascaded rebuilds visible in the trace.");
}
