//! **Ablation harness** — the framework's tunables.
//!
//! DESIGN.md calls out three design choices worth ablating:
//! * **τ** (purge threshold): trades deleted-data space overhead
//!   (O(n/τ)) against update cost (O(u(n)·τ) deletion amortization and
//!   ×O(τ) T2 query overhead);
//! * **ε** (level growth): trades insertion amortization (O(u·log^ε n))
//!   against the number of levels queried;
//! * **growth profile** (polylog vs doubling = Transformation 1 vs 3).
//!
//! One workload, one knob varied at a time.

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;

fn main() {
    println!("=== Ablations: tau, eps, growth profile ===\n");
    let mut r = rng(0xAB1A7E);
    let text = markov_text(&mut r, 1 << 18, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let patterns = planted_patterns(&mut r, &docs, 8, 16);
    let churn: Vec<(u64, Vec<u8>)> = {
        let t = markov_text(&mut r, 1 << 15, 26, 3);
        split_documents(&mut r, &t, 128, 1024, 1_000_000)
    };

    println!("-- tau sweep (Transformation 1, eps = 0.5) --");
    println!(
        "{:>4} {:>12} {:>14} {:>14} {:>12}",
        "tau", "count", "insert/sym", "delete/sym", "bits/sym"
    );
    for tau in [2usize, 4, 8, 16, 32] {
        let opts = DynOptions {
            tau,
            ..DynOptions::default()
        };
        run_case(format!("{tau}"), opts, &docs, &patterns, &churn);
    }

    println!("\n-- eps sweep (Transformation 1, tau = 8) --");
    println!(
        "{:>4} {:>12} {:>14} {:>14} {:>12}",
        "eps", "count", "insert/sym", "delete/sym", "bits/sym"
    );
    for eps in [0.25f64, 0.5, 0.75, 1.0] {
        let opts = DynOptions {
            growth: Growth::PolyLog { eps },
            ..DynOptions::default()
        };
        run_case(format!("{eps}"), opts, &docs, &patterns, &churn);
    }

    println!("\n-- growth profile (tau = 8) --");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "profile", "count", "insert/sym", "delete/sym", "bits/sym"
    );
    for (name, growth) in [
        ("polylog", Growth::PolyLog { eps: 0.5 }),
        ("doubling", Growth::Doubling),
    ] {
        let opts = DynOptions {
            growth,
            ..DynOptions::default()
        };
        run_case_named(name, opts, &docs, &patterns, &churn);
    }
    println!("\nshapes: larger tau => purge at smaller dead fraction: costlier");
    println!("deletes, O(n/tau) less retained dead data;");
    println!("larger eps => fewer levels (faster queries), costlier cascades;");
    println!("doubling (T3) => cheapest inserts, more levels queried.");
}

fn run_case(
    label: String,
    opts: DynOptions,
    docs: &[(u64, Vec<u8>)],
    patterns: &[Vec<u8>],
    churn: &[(u64, Vec<u8>)],
) {
    run_case_impl(&label, 4, opts, docs, patterns, churn);
}

fn run_case_named(
    label: &str,
    opts: DynOptions,
    docs: &[(u64, Vec<u8>)],
    patterns: &[Vec<u8>],
    churn: &[(u64, Vec<u8>)],
) {
    run_case_impl(label, 8, opts, docs, patterns, churn);
}

fn run_case_impl(
    label: &str,
    width: usize,
    opts: DynOptions,
    docs: &[(u64, Vec<u8>)],
    patterns: &[Vec<u8>],
    churn: &[(u64, Vec<u8>)],
) {
    use dyndex_succinct::SpaceUsage;
    let mut idx: Transform1Index<FmIndexCompressed> =
        Transform1Index::new(FmConfig { sample_rate: 8 }, opts);
    for (id, d) in docs {
        idx.insert(*id, d);
    }
    let count_ns = measure_ns(7, || patterns.iter().map(|p| idx.count(p)).sum::<usize>())
        / patterns.len() as f64;
    let symbols: usize = churn.iter().map(|(_, d)| d.len()).sum();
    let t0 = std::time::Instant::now();
    for (id, d) in churn {
        idx.insert(*id, d);
    }
    let ins = t0.elapsed().as_nanos() as f64 / symbols as f64;
    let t1 = std::time::Instant::now();
    for (id, _) in churn {
        idx.delete(*id);
    }
    let del = t1.elapsed().as_nanos() as f64 / symbols as f64;
    let bits = idx.heap_bytes() as f64 * 8.0 / idx.symbol_count().max(1) as f64;
    println!(
        "{:>w$} {:>12} {:>14} {:>14} {:>12.2}",
        label,
        fmt_ns(count_ns),
        fmt_ns(ins),
        fmt_ns(del),
        bits,
        w = width
    );
}
