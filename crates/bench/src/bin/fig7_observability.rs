//! **Figure 7 harness** (beyond the paper) — cost and yield of the
//! `dyndex-obs` telemetry layer.
//!
//! The store records every hot-path event by default: per-shard
//! queue-wait and execute histograms on the fan-out, end-to-end query
//! latency, write latencies, WAL append/fsync, snapshot generations, and
//! a bounded ring of query spans. The design rule is *one branch when
//! disabled* — a `Telemetry::Disabled` store holds no handles and pays
//! no clock reads — and *wait-free recording when enabled* (striped
//! atomic histograms, `try_lock` tracer). This harness measures both
//! claims:
//!
//! 1. **Overhead**: multi-threaded query throughput at 8 shards,
//!    telemetry enabled vs disabled. The acceptance bar is <2% cost.
//! 2. **Yield**: the percentile dashboard, span breakdown, and text
//!    exposition the enabled store produced while being measured.
//! 3. **Continuity**: a `DurableStore` snapshotted, dropped, and
//!    reopened with `Telemetry::Shared` keeps accumulating into the
//!    same registry — counters continue across the restart.

use dyndex_bench::workloads::*;
use dyndex_core::prelude::*;
use dyndex_persist::{DurableStore, RestoreOptions};
use dyndex_store::{
    FanOutPolicy, MaintenancePolicy, MetricsRegistry, ShardedStore, StoreOptions, Telemetry,
};
use dyndex_text::FmIndexCompressed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 8;
const READER_THREADS: usize = 4;
const ROUNDS: usize = 3;

fn store_opts(telemetry: Telemetry) -> StoreOptions {
    StoreOptions {
        num_shards: SHARDS,
        index: DynOptions::default(),
        mode: RebuildMode::Background,
        maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
        fan_out: FanOutPolicy::Pooled,
        telemetry,
        ..StoreOptions::default()
    }
}

fn build_store(docs: &[(u64, Vec<u8>)], telemetry: Telemetry) -> ShardedStore<FmIndexCompressed> {
    let store = ShardedStore::new(FmConfig { sample_rate: 8 }, store_opts(telemetry));
    for chunk in docs.chunks(256) {
        store.insert_batch(chunk).expect("insert batch");
    }
    store.flush();
    store
}

/// Multi-threaded query throughput over a fixed wall-clock window.
fn measure_queries_per_s(store: &ShardedStore<FmIndexCompressed>, patterns: &[Vec<u8>]) -> f64 {
    let window = Duration::from_millis(200);
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let done = &done;
        let t0 = Instant::now();
        for _ in 0..READER_THREADS {
            scope.spawn(move || {
                while t0.elapsed() < window {
                    for p in patterns {
                        std::hint::black_box(store.count(p));
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    done.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
}

fn main() {
    println!("=== Fig 7: telemetry overhead and yield (measured) ===\n");
    let n = 1usize << 18;
    let mut r = rng(0xF16_0007 ^ n as u64);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let patterns = planted_patterns(&mut r, &docs, 8, 24);
    println!(
        "corpus n={n} ({} docs), {SHARDS} shards, {READER_THREADS} reader threads, \
         best of {ROUNDS} rounds",
        docs.len()
    );

    // ------------------------------------------------------------------
    // 1. Overhead: enabled vs disabled throughput.
    // ------------------------------------------------------------------
    let enabled = build_store(&docs, Telemetry::Enabled);
    let disabled = build_store(&docs, Telemetry::Disabled);
    // Interleave rounds so drift (thermal, page cache) hits both arms;
    // keep each arm's best round, the usual bench convention.
    let (mut best_on, mut best_off) = (0f64, 0f64);
    for _ in 0..ROUNDS {
        best_off = best_off.max(measure_queries_per_s(&disabled, &patterns));
        best_on = best_on.max(measure_queries_per_s(&enabled, &patterns));
    }
    let overhead = 100.0 * (1.0 - best_on / best_off);
    println!("\ntelemetry disabled: {best_off:>12.0} queries/s");
    println!("telemetry enabled:  {best_on:>12.0} queries/s");
    println!(
        "overhead: {overhead:.2}% {}",
        if overhead < 2.0 {
            "(within the <2% budget)"
        } else {
            "(OVER the <2% budget)"
        }
    );

    // ------------------------------------------------------------------
    // 2. Yield: what the enabled store recorded while being measured.
    // ------------------------------------------------------------------
    let registry = enabled.metrics().expect("telemetry on");
    let q = registry
        .find_histogram("dyndex_store_query_duration")
        .expect("registered")
        .snapshot();
    println!("\nquery latency (end-to-end, {} samples):", q.count());
    for (label, quantile) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
        println!("  {label:>5}: {:>9} ns", q.percentile(quantile));
    }
    println!("  {:>5}: {:>9} ns", "max", q.max());

    println!("\nmost recent query spans (route / queue / execute / merge):");
    for span in enabled.recent_spans().iter().rev().take(4) {
        println!("  {span}");
    }

    let stats = enabled.stats();
    println!("\ndashboard: {stats}");

    // ------------------------------------------------------------------
    // 3. Continuity: a reopened DurableStore keeps the same series.
    // ------------------------------------------------------------------
    println!("\ndurable continuity (snapshot -> drop -> reopen, shared registry):");
    let dir = std::env::temp_dir().join(format!("dyndex-fig7-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shared = Arc::new(MetricsRegistry::new());
    let durable: DurableStore<FmIndexCompressed> = DurableStore::create(
        &dir,
        FmConfig { sample_rate: 8 },
        store_opts(Telemetry::Shared(Arc::clone(&shared))),
    )
    .expect("create durable store");
    for chunk in docs[..docs.len() / 4].chunks(256) {
        durable.insert_batch(chunk).expect("insert");
    }
    durable.flush();
    durable.snapshot().expect("snapshot");
    let counts = |r: &MetricsRegistry| {
        r.find_histogram("dyndex_store_insert_duration")
            .map_or(0, |h| h.snapshot().count())
    };
    let first_life = counts(&shared);
    drop(durable);
    let reopened: DurableStore<FmIndexCompressed> = DurableStore::open(
        &dir,
        RestoreOptions {
            telemetry: Telemetry::Shared(Arc::clone(&shared)),
            ..RestoreOptions::default()
        },
    )
    .expect("reopen");
    for chunk in docs[docs.len() / 4..docs.len() / 2].chunks(256) {
        reopened.insert_batch(chunk).expect("insert after reopen");
    }
    let second_life = counts(&shared);
    println!("  insert observations before restart: {first_life}");
    println!("  insert observations after restart:  {second_life}");
    assert!(
        second_life > first_life,
        "reopened store must accumulate into the same registry"
    );
    println!("  same series kept counting across the restart");

    let fsync = shared
        .find_histogram("dyndex_wal_fsync_duration")
        .expect("wal series registered")
        .snapshot();
    println!("  wal fsyncs recorded: {}", fsync.count());

    println!("\nexposition sample (first lines of render_text):");
    let text = reopened.render_metrics().expect("telemetry on");
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
