//! **Figure 5 harness** (beyond the paper) — cold-start cost: restoring
//! a sharded store from a `dyndex-persist` snapshot vs rebuilding it
//! from raw documents, across collection sizes.
//!
//! A full rebuild pays suffix sorting (SA-IS) plus wavelet construction
//! over every byte; a restore pays file reads plus linear directory
//! re-derivation. The gap is the whole point of the persistence
//! subsystem: restart without replaying the indexing work that
//! Transformation 2 exists to amortize.
//!
//! Also measured: snapshot write cost and bytes on disk (the space price
//! of durability); restore with a WAL tail (snapshot + logged mutations
//! replayed through the normal dynamic-buffer path); **delta snapshots**
//! (a second snapshot after mutating a minority of shards writes only
//! the changed levels); and **concurrent-reader stall** — queries served
//! while a snapshot runs, `SnapshotMode::Background` (per-shard freeze +
//! worker-pool serialization) vs `SnapshotMode::StopTheWorld` (all shard
//! locks held across serialization).

use dyndex_bench::workloads::*;
use dyndex_core::{DynOptions, FmConfig, RebuildMode};
use dyndex_persist::{DurableStore, RestoreOptions, SnapshotMode, StorePersist};
use dyndex_store::{FanOutPolicy, MaintenancePolicy, ShardedStore, StoreOptions};
use dyndex_text::FmIndexCompressed;
use std::sync::atomic::{AtomicBool, Ordering};

type Store = ShardedStore<FmIndexCompressed>;
type Durable = DurableStore<FmIndexCompressed>;

const SHARDS: usize = 4;

fn store_opts() -> StoreOptions {
    StoreOptions {
        num_shards: SHARDS,
        index: DynOptions::default(),
        mode: RebuildMode::Background,
        maintenance: MaintenancePolicy::Manual,
        ..StoreOptions::default()
    }
}

fn restore_opts() -> RestoreOptions {
    RestoreOptions {
        mode: RebuildMode::Background,
        maintenance: MaintenancePolicy::Manual,
        ..RestoreOptions::default()
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dyndex-fig5-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    println!("=== Fig 5: cold start — restore vs full rebuild ({SHARDS} shards) ===\n");
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>10} {:>14} {:>12}",
        "bytes", "docs", "rebuild", "restore", "speedup", "snapshot-wr", "disk"
    );
    for &n in &[1usize << 16, 1 << 18, 1 << 20] {
        let mut r = rng(0xF16_0005 ^ n as u64);
        let text = markov_text(&mut r, n, 26, 3);
        let docs = split_documents(&mut r, &text, 128, 1024, 0);
        let patterns = planted_patterns(&mut r, &docs, 8, 4);

        // Cold start A: full rebuild from raw documents.
        let rebuild_ns = measure_ns(3, || {
            let store = Store::new(FmConfig::default(), store_opts());
            for chunk in docs.chunks(256) {
                store.insert_batch(chunk).expect("insert batch");
            }
            store.flush();
            store.count(&patterns[0])
        });

        // Write the snapshot once (and measure the write itself).
        let store = Store::new(FmConfig::default(), store_opts());
        for chunk in docs.chunks(256) {
            store.insert_batch(chunk).expect("insert batch");
        }
        let dir = scratch_dir(&format!("plain-{n}"));
        let mut disk_bytes = 0u64;
        let snapshot_ns = measure_ns(3, || {
            // Wipe between runs so every measured snapshot is a *full*
            // write — otherwise generations 2+ are near-free deltas
            // (measured separately below).
            let _ = std::fs::remove_dir_all(&dir);
            let stats = store.snapshot(&dir).expect("snapshot");
            disk_bytes = stats.bytes_on_disk;
            stats.generation
        });

        // Cold start B: restore from the snapshot.
        let expected = store.count(&patterns[0]);
        let restore_ns = measure_ns(3, || {
            let restored = Store::restore(&dir, restore_opts()).expect("restore");
            let got = restored.count(&patterns[0]);
            assert_eq!(got, expected, "restored store must answer identically");
            got
        });

        println!(
            "{:<10} {:>8} {:>14} {:>14} {:>9.1}x {:>14} {:>11.1}K",
            n,
            docs.len(),
            fmt_ns(rebuild_ns),
            fmt_ns(restore_ns),
            rebuild_ns / restore_ns.max(1.0),
            fmt_ns(snapshot_ns),
            disk_bytes as f64 / 1024.0,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Restore with a WAL tail: snapshot mid-load, log the rest, reopen.
    println!("\n--- durable store: restore = snapshot + WAL-tail replay ---");
    let n = 1usize << 18;
    let mut r = rng(0xF16_0006);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let dir = scratch_dir("wal");
    let live = Durable::create(&dir, FmConfig::default(), store_opts()).expect("create");
    let half = docs.len() / 2;
    for chunk in docs[..half].chunks(256) {
        live.insert_batch(chunk).expect("insert");
    }
    live.snapshot().expect("snapshot");
    for chunk in docs[half..].chunks(256) {
        live.insert_batch(chunk).expect("insert tail");
    }
    live.flush();
    let expected_docs = live.num_docs();
    let open_ns = measure_ns(3, || {
        let reopened = Durable::open(&dir, restore_opts()).expect("open");
        assert_eq!(reopened.num_docs(), expected_docs);
        reopened.num_docs()
    });
    println!("open (50% of corpus in the WAL tail): {}", fmt_ns(open_ns));
    println!("stats: {}", live.stats());
    let _ = std::fs::remove_dir_all(&dir);

    delta_snapshots();
    reader_stall();

    println!("\nshape checks: restore beats rebuild and the gap widens with n;");
    println!("(rebuild pays SA-IS + wavelet construction; restore pays file reads");
    println!("plus linear rank-directory re-derivation). WAL-tail opens sit between");
    println!("pure restore and pure rebuild, scaling with the logged fraction.");
    println!("Delta snapshots write a small fraction of the full snapshot after a");
    println!("minority-of-shards mutation; Background-mode snapshots serve queries");
    println!("throughout while StopTheWorld stalls them for the whole write.");
}

/// Delta vs full: snapshot, mutate only documents routed to shard 0,
/// snapshot again — the second generation reuses every untouched level.
fn delta_snapshots() {
    println!("\n--- delta snapshots: re-snapshot after mutating 1 of {SHARDS} shards ---");
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "bytes", "full-write", "delta-write", "reused", "savings", "delta-t"
    );
    for &n in &[1usize << 16, 1 << 18] {
        let mut r = rng(0xF16_0007 ^ n as u64);
        let text = markov_text(&mut r, n, 26, 3);
        let docs = split_documents(&mut r, &text, 128, 1024, 0);
        let store = Store::new(FmConfig::default(), store_opts());
        for chunk in docs.chunks(256) {
            store.insert_batch(chunk).expect("insert batch");
        }
        store.flush();
        let dir = scratch_dir(&format!("delta-{n}"));
        let first = store.snapshot(&dir).expect("first snapshot");

        // Mutate a minority of shards: delete a handful of shard-0 docs.
        // One measured run — a repeat would be a *zero*-change snapshot
        // (nothing mutated since), not the advertised one-shard delta.
        let doomed: Vec<u64> = docs
            .iter()
            .map(|(id, _)| *id)
            .filter(|&id| store.shard_of(id) == 0)
            .take(8)
            .collect();
        store.delete_batch(&doomed).expect("delete batch");
        store.flush();
        let t0 = std::time::Instant::now();
        let second = store.snapshot(&dir).expect("delta snapshot");
        let delta_ns = t0.elapsed().as_nanos() as f64;
        let total = second.bytes_written + second.bytes_reused;
        println!(
            "{:<10} {:>13.1}K {:>13.1}K {:>11.1}K {:>11.0}% {:>10}",
            n,
            first.bytes_written as f64 / 1024.0,
            second.bytes_written as f64 / 1024.0,
            second.bytes_reused as f64 / 1024.0,
            100.0 * second.bytes_reused as f64 / total.max(1) as f64,
            fmt_ns(delta_ns),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Reader stall: queries served (and worst query latency seen) while a
/// snapshot of the same store runs, per [`SnapshotMode`].
fn reader_stall() {
    println!("\n--- concurrent-reader stall during one snapshot (pooled store) ---");
    println!(
        "{:<14} {:>14} {:>16} {:>16}",
        "mode", "snapshot", "queries-served", "worst-query"
    );
    let n = 1usize << 20;
    let mut r = rng(0xF16_0008);
    let text = markov_text(&mut r, n, 26, 3);
    let docs = split_documents(&mut r, &text, 128, 1024, 0);
    let patterns = planted_patterns(&mut r, &docs, 8, 4);
    let store = Store::new(
        FmConfig::default(),
        StoreOptions {
            fan_out: FanOutPolicy::Pooled,
            maintenance: MaintenancePolicy::Periodic(std::time::Duration::from_millis(1)),
            ..store_opts()
        },
    );
    for chunk in docs.chunks(256) {
        store.insert_batch(chunk).expect("insert batch");
    }
    store.flush();
    for (mode, tag) in [
        (SnapshotMode::Background, "background"),
        (SnapshotMode::StopTheWorld, "stop-the-world"),
    ] {
        // A fresh directory per mode: every level is written, so both
        // modes pay the same serialization volume.
        let dir = scratch_dir(&format!("stall-{tag}"));
        let done = AtomicBool::new(false);
        let mut served = 0u64;
        let mut worst_ns = 0.0f64;
        let mut snap_ns = 0.0f64;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let t0 = std::time::Instant::now();
                store.snapshot_with(&dir, mode).expect("snapshot");
                snap_ns = t0.elapsed().as_nanos() as f64;
                done.store(true, Ordering::Release);
            });
            let mut i = 0usize;
            while !done.load(Ordering::Acquire) {
                let t0 = std::time::Instant::now();
                std::hint::black_box(store.count(&patterns[i % patterns.len()]));
                worst_ns = worst_ns.max(t0.elapsed().as_nanos() as f64);
                served += 1;
                i += 1;
            }
        });
        println!(
            "{:<14} {:>14} {:>16} {:>16}",
            tag,
            fmt_ns(snap_ns),
            served,
            fmt_ns(worst_ns),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
