//! # dyndex-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for recorded results).
//!
//! Binaries (run with `cargo run -p dyndex-bench --release --bin <name>`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1_static` | Table 1 — static compressed indexes |
//! | `table2_dynamic` | Table 2 — dynamic indexing vs prior art |
//! | `table3_fast` | Table 3 — O(n log σ)-bit fast indexes |
//! | `table4_counting` | Table 4 — counting queries |
//! | `table5_relations` | Theorem 2 — dynamic binary relations |
//! | `table6_graph` | Theorem 3 — dynamic graphs |
//! | `fig1_subcollections` | Figure 1 — Transformation 1 layout |
//! | `fig2_worstcase` | Figure 2 — Transformation 2 layout |
//! | `fig3_rebuild_lifecycle` | Figure 3 — background rebuild lifecycle |
//! | `fig4_sharding` | beyond the paper — `dyndex-store` shard-count scaling |

pub mod workloads;
