//! Deterministic workload generators for the benchmark harness.
//!
//! Everything is seeded (`rand_chacha`) so EXPERIMENTS.md numbers are
//! reproducible run-to-run and machine-to-machine.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Default seed for ad-hoc workloads and tests. The bench binaries use
/// their own fixed per-experiment constants (grep `rng(0x` under
/// `src/bin/`) — every stream in this crate is seeded by a compile-time
/// constant, never entropy, so recorded numbers are comparable across
/// runs and machines.
pub const DEFAULT_SEED: u64 = 0xD15C_0DE5_EED0_0001;

/// A seeded RNG for a named experiment.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Generates order-`k` Markov text over `sigma` symbols: each context
/// prefers a small set of successors, yielding `Hk << log σ` like natural
/// language (the regime the paper's `nHk` bounds target).
pub fn markov_text(rng: &mut ChaCha8Rng, len: usize, sigma: u8, k: usize) -> Vec<u8> {
    assert!(sigma >= 2);
    let mut out = Vec::with_capacity(len);
    // Deterministic per-context successor tables, derived by hashing the
    // context; each context allows ~sigma/4 successors with skewed odds.
    let mut ctx_hash: u64 = 0xcbf29ce484222325;
    let refresh = |h: u64, b: u8| (h ^ b as u64).wrapping_mul(0x100000001b3);
    for _ in 0..len {
        let choices = (sigma / 4).max(2);
        let skew: f64 = rng.random();
        // Skewed pick: successor j with probability ~ 2^-j.
        let mut j = 0u8;
        let mut acc = 0.5f64;
        while j + 1 < choices && skew > acc {
            j += 1;
            acc += (1.0 - acc) / 2.0;
        }
        let b = ((ctx_hash >> 17) as u8).wrapping_add(j.wrapping_mul(31)) % sigma;
        out.push(b'a'.wrapping_add(b % 26).min(b'z'));
        ctx_hash = refresh(ctx_hash, *out.last().expect("just pushed"));
        if k == 0 {
            ctx_hash = rng.random();
        }
    }
    out
}

/// Splits `text` into documents with lengths uniform in
/// `[min_len, max_len]`, assigning sequential ids starting at `base_id`.
pub fn split_documents(
    rng: &mut ChaCha8Rng,
    text: &[u8],
    min_len: usize,
    max_len: usize,
    base_id: u64,
) -> Vec<(u64, Vec<u8>)> {
    let mut docs = Vec::new();
    let mut pos = 0usize;
    let mut id = base_id;
    while pos < text.len() {
        let len = rng.random_range(min_len..=max_len).min(text.len() - pos);
        docs.push((id, text[pos..pos + len].to_vec()));
        pos += len;
        id += 1;
    }
    docs
}

/// Extracts `count` patterns of length `plen` that *occur* in the corpus
/// (planted patterns — every query has hits), plus a few absent ones.
pub fn planted_patterns(
    rng: &mut ChaCha8Rng,
    docs: &[(u64, Vec<u8>)],
    plen: usize,
    count: usize,
) -> Vec<Vec<u8>> {
    let mut pats = Vec::with_capacity(count);
    let eligible: Vec<&Vec<u8>> = docs
        .iter()
        .map(|(_, d)| d)
        .filter(|d| d.len() >= plen)
        .collect();
    if eligible.is_empty() {
        return pats;
    }
    for _ in 0..count {
        let d = eligible[rng.random_range(0..eligible.len())];
        let start = rng.random_range(0..=d.len() - plen);
        pats.push(d[start..start + plen].to_vec());
    }
    pats
}

/// Zipf-ish samples over `[0, universe)`: item `i` with weight `1/(i+1)`.
pub fn zipf(rng: &mut ChaCha8Rng, universe: u64) -> u64 {
    // Inverse-CDF approximation for the harmonic distribution.
    let h = (universe as f64).ln().max(1.0);
    let u: f64 = rng.random::<f64>() * h;
    (u.exp() - 1.0).min(universe as f64 - 1.0).max(0.0) as u64
}

/// A stream of relation/graph edges with Zipf-skewed endpoints.
pub fn edge_stream(rng: &mut ChaCha8Rng, nodes: u64, count: usize) -> Vec<(u64, u64)> {
    (0..count)
        .map(|_| (zipf(rng, nodes), zipf(rng, nodes)))
        .collect()
}

/// Simple wall-clock measurement: median over `runs` of `f`'s duration,
/// in nanoseconds. `f` must return something observable to defeat DCE.
pub fn measure_ns<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(runs >= 1);
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = std::time::Instant::now();
        let out = f();
        let dt = start.elapsed().as_nanos() as f64;
        std::hint::black_box(out);
        samples.push(dt);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// Pretty time formatting.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_is_deterministic_and_compressible() {
        let mut r1 = rng(42);
        let mut r2 = rng(42);
        let t1 = markov_text(&mut r1, 5000, 26, 2);
        let t2 = markov_text(&mut r2, 5000, 26, 2);
        assert_eq!(t1, t2, "seeded generators must agree");
        let h0 = dyndex_succinct::entropy::h0(&t1);
        assert!(h0 < 5.0, "skewed text must be compressible, h0 = {h0}");
    }

    #[test]
    fn split_covers_everything() {
        let mut r = rng(7);
        let text: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let docs = split_documents(&mut r, &text, 10, 50, 100);
        let total: usize = docs.iter().map(|(_, d)| d.len()).sum();
        assert_eq!(total, 1000);
        let ids: Vec<u64> = docs.iter().map(|(id, _)| *id).collect();
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn planted_patterns_occur() {
        let mut r = rng(9);
        let text = markov_text(&mut r, 2000, 8, 1);
        let docs = split_documents(&mut r, &text, 50, 100, 0);
        for p in planted_patterns(&mut r, &docs, 5, 20) {
            assert!(
                docs.iter()
                    .any(|(_, d)| d.windows(p.len()).any(|w| w == p.as_slice())),
                "pattern must occur"
            );
        }
    }

    /// Locks seed-threading through the whole generator pipeline: two
    /// identically-seeded runs must agree value-for-value on every
    /// workload artifact (text, document split, patterns, edges).
    #[test]
    fn full_pipeline_is_deterministic() {
        let run = |seed: u64| {
            let mut r = rng(seed);
            let text = markov_text(&mut r, 3000, 16, 2);
            let docs = split_documents(&mut r, &text, 20, 80, 0);
            let pats = planted_patterns(&mut r, &docs, 6, 10);
            let edges = edge_stream(&mut r, 500, 200);
            (text, docs, pats, edges)
        };
        assert_eq!(run(DEFAULT_SEED), run(DEFAULT_SEED));
        assert_ne!(
            run(DEFAULT_SEED).0,
            run(DEFAULT_SEED ^ 1).0,
            "distinct seeds must give distinct streams"
        );
    }

    #[test]
    fn zipf_is_skewed() {
        let mut r = rng(3);
        let samples: Vec<u64> = (0..5000).map(|_| zipf(&mut r, 1000)).collect();
        let small = samples.iter().filter(|&&x| x < 10).count();
        let large = samples.iter().filter(|&&x| x >= 500).count();
        assert!(
            small > large * 2,
            "small ids must dominate: {small} vs {large}"
        );
        assert!(samples.iter().all(|&x| x < 1000));
    }
}
