//! Property tests for the wire protocol (satellite: every message
//! round-trips encode→frame→decode, and arbitrary byte mutations of a
//! valid frame yield a typed [`ProtoError`] — never a panic, never a
//! silently-accepted corrupt message).

use dyndex_serve::proto::{read_frame, DEFAULT_MAX_FRAME};
use dyndex_serve::{ProtoError, RemoteHealth, RemoteStats, Request, Response, WireError};
use proptest::prelude::*;

/// Builds one of every request shape from fuzz inputs.
fn request_from(pick: u8, doc_id: u64, bytes: Vec<u8>, limit: u64) -> Request {
    match pick % 7 {
        0 => Request::Insert { doc_id, bytes },
        1 => Request::Delete { doc_id },
        2 => Request::Count { pattern: bytes },
        3 => Request::Find { pattern: bytes },
        4 => Request::FindLimit {
            pattern: bytes,
            limit,
        },
        5 => Request::Stats,
        _ => Request::Health,
    }
}

/// Builds one of every response shape from fuzz inputs.
fn response_from(pick: u8, a: u64, b: u64, bytes: Vec<u8>) -> Response {
    match pick % 10 {
        0 => Response::Inserted,
        1 => Response::Deleted {
            previous: a.is_multiple_of(2).then_some(bytes),
        },
        2 => Response::Count(a),
        3 => Response::Occurrences(
            bytes
                .iter()
                .map(|&x| (a.wrapping_add(x as u64), b.wrapping_mul(x as u64)))
                .collect(),
        ),
        4 => Response::Stats(RemoteStats {
            docs: a,
            symbols: b,
            shards: (a % 1024) as u32,
            pending_jobs: b.rotate_left(7),
            queued_requests: a ^ b,
            busy_workers: (b % 64) as u32,
        }),
        5 => Response::Health {
            status: match a % 3 {
                0 => RemoteHealth::Ok,
                1 => RemoteHealth::Degraded,
                _ => RemoteHealth::Unhealthy,
            },
            detail: String::from_utf8_lossy(&bytes).into_owned(),
        },
        6 => Response::Busy {
            shard: a.is_multiple_of(2).then_some((a % 4096) as u32),
            queued: b,
        },
        7 => Response::Error(WireError::ShardPoisoned {
            shard: (a % 4096) as u32,
        }),
        8 => Response::Error(WireError::Malformed {
            detail: String::from_utf8_lossy(&bytes).into_owned(),
        }),
        _ => Response::Error(WireError::Internal {
            detail: format!("case {a}/{b}"),
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request shape round-trips through encode→frame→decode.
    #[test]
    fn requests_roundtrip(
        pick in any::<u8>(),
        doc_id in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        limit in any::<u64>(),
    ) {
        let request = request_from(pick, doc_id, bytes, limit);
        let mut wire = Vec::new();
        request.write_frame(&mut wire, DEFAULT_MAX_FRAME).unwrap();
        let (opcode, payload) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME)
            .unwrap()
            .expect("one frame was written");
        prop_assert_eq!(Request::decode(opcode, &payload).unwrap(), request);
    }

    /// Every response shape round-trips through encode→frame→decode.
    #[test]
    fn responses_roundtrip(
        pick in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let response = response_from(pick, a, b, bytes);
        let mut wire = Vec::new();
        response.write_frame(&mut wire, DEFAULT_MAX_FRAME).unwrap();
        let (opcode, payload) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME)
            .unwrap()
            .expect("one frame was written");
        prop_assert_eq!(Response::decode(opcode, &payload).unwrap(), response);
    }

    /// Mutating any byte of a valid request frame either still decodes
    /// (the mutation may cancel out in ignored space — there is none,
    /// but the property allows it) or fails with a *typed* error. The
    /// real assertion is implicit: no code path panics.
    #[test]
    fn mutated_frames_never_panic(
        pick in any::<u8>(),
        doc_id in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        limit in any::<u64>(),
        flip_index in any::<proptest::sample::Index>(),
        flip_mask in any::<u8>(),
    ) {
        let request = request_from(pick, doc_id, bytes, limit);
        let mut wire = Vec::new();
        request.write_frame(&mut wire, DEFAULT_MAX_FRAME).unwrap();

        let mut mutated = wire.clone();
        let at = flip_index.index(mutated.len());
        mutated[at] ^= flip_mask;

        match read_frame(&mut mutated.as_slice(), DEFAULT_MAX_FRAME) {
            Ok(Some((opcode, payload))) => {
                // An unflipped frame (mask 0) must still carry the
                // original request; CRC-32 guarantees any single-byte
                // change in the payload region is caught, and header
                // mutations change opcode/len in ways decode handles.
                if flip_mask == 0 {
                    prop_assert_eq!(Request::decode(opcode, &payload).unwrap(), request);
                } else {
                    // Header-byte mutation that still framed: decode
                    // must answer with a value or a typed error.
                    let _ = Request::decode(opcode, &payload);
                }
            }
            Ok(None) => prop_assert!(false, "a written frame cannot read as clean EOF"),
            Err(
                ProtoError::Io(_)
                | ProtoError::Timeout
                | ProtoError::BadMagic(_)
                | ProtoError::UnsupportedVersion { .. }
                | ProtoError::FrameTooLarge { .. }
                | ProtoError::ChecksumMismatch
                | ProtoError::Malformed(_),
            ) => {} // typed, as required
        }
    }

    /// Truncating a valid frame at any point yields a typed error (or,
    /// cut exactly at a frame boundary of zero bytes, a clean EOF) —
    /// never a panic and never a successfully decoded short frame.
    #[test]
    fn truncated_frames_never_panic(
        pick in any::<u8>(),
        doc_id in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        limit in any::<u64>(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let request = request_from(pick, doc_id, bytes, limit);
        let mut wire = Vec::new();
        request.write_frame(&mut wire, DEFAULT_MAX_FRAME).unwrap();
        let cut = cut.index(wire.len()); // 0..len: always strictly short
        match read_frame(&mut wire[..cut].as_ref(), DEFAULT_MAX_FRAME) {
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded whole"),
            Ok(None) => prop_assert!(cut == 0, "clean EOF only before any byte"),
            Err(_) => {} // typed error, as required
        }
    }

    /// Random garbage (not produced by the encoder) never panics the
    /// frame reader.
    #[test]
    fn garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_frame(&mut garbage.as_slice(), DEFAULT_MAX_FRAME);
    }
}
