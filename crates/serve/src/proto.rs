//! The wire protocol: length-prefixed, versioned, checksummed binary
//! frames over TCP, one request or response per frame.
//!
//! ## Frame layout
//!
//! ```text
//! magic "DYXS" | version u16 | opcode u16 | payload_len u32
//! payload bytes…                          | crc32(payload) u32
//! ```
//!
//! The 12-byte header is fixed-width, so a reader always knows how much
//! to expect next; the payload is decoded only after its CRC verifies.
//! This is the `dyndex-persist` frame discipline applied to a socket —
//! the primitive encoders/decoders and the CRC are literally the persist
//! codec's ([`dyndex_persist::codec`]), with two deltas for a network
//! peer instead of a trusted file: the length prefix is a `u32` checked
//! against a configurable cap *before* any payload byte is read, and
//! every failure is a typed [`ProtoError`] that the server answers or
//! closes on — never a panic.

use dyndex_persist::codec::{
    crc32, read_bytes, read_str, read_u16, read_u32, read_u64, read_u8, write_bytes, write_str,
    write_u16, write_u32, write_u64, write_u8,
};
use dyndex_persist::PersistError;
use std::io::{Read, Write};

/// Magic bytes opening every frame ("DYndex eXchange/Serve").
pub const MAGIC: [u8; 4] = *b"DYXS";
/// Protocol version this build speaks (and the only one it accepts).
pub const VERSION: u16 = 1;
/// Fixed frame header length: magic + version + opcode + payload_len.
pub const HEADER_LEN: usize = 12;
/// Default cap on a frame's payload length.
pub const DEFAULT_MAX_FRAME: u32 = 16 << 20;

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Everything that can go wrong reading or writing a frame. Malformed
/// input from a peer always lands in one of these variants — framing
/// code never panics on untrusted bytes.
#[derive(Debug)]
pub enum ProtoError {
    /// An underlying socket failure (reset, EPIPE, unexpected EOF).
    Io(std::io::Error),
    /// The peer's read or write did not complete within its deadline.
    Timeout,
    /// The frame does not start with [`MAGIC`] — the peer is not
    /// speaking this protocol, or framing sync was lost.
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u16,
        /// Version this build speaks.
        expected: u16,
    },
    /// The frame's payload length exceeds the reader's cap.
    FrameTooLarge {
        /// Length declared in the header.
        len: u32,
        /// The reader's configured cap.
        max: u32,
    },
    /// The payload bytes do not match the frame's CRC.
    ChecksumMismatch,
    /// The frame checksums but its payload does not decode as the
    /// opcode's message (or the opcode is unknown).
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "socket error: {e}"),
            ProtoError::Timeout => write!(f, "frame deadline exceeded"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::UnsupportedVersion { found, expected } => {
                write!(f, "protocol version {found} (this build speaks {expected})")
            }
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame payload {len} bytes exceeds cap {max}")
            }
            ProtoError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ProtoError::Malformed(detail) => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ProtoError::Timeout,
            _ => ProtoError::Io(e),
        }
    }
}

impl From<PersistError> for ProtoError {
    fn from(e: PersistError) -> Self {
        match e {
            // Primitive reads off an in-memory payload only fail on
            // truncation/invalid bytes — all decode problems here.
            PersistError::Io(io) => ProtoError::Malformed(format!("payload truncated: {io}")),
            other => ProtoError::Malformed(other.to_string()),
        }
    }
}

/// A typed failure the server reports *to the client* inside an
/// [`Response::Error`] frame. Unlike [`ProtoError`] (a local framing
/// failure), these travel over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The write targeted a shard whose writer previously panicked;
    /// reads keep serving, writes are refused.
    ShardPoisoned {
        /// The poisoned shard.
        shard: u32,
    },
    /// An insert reused a live document id.
    DuplicateDocument {
        /// The id already present in the store.
        doc_id: u64,
    },
    /// The request frame checksummed but did not decode (bad payload or
    /// unknown request opcode); echoes the decoder's detail.
    Malformed {
        /// What failed to decode.
        detail: String,
    },
    /// The opcode is recognized as a *response* opcode, or reserved —
    /// not something a client may send.
    Unsupported {
        /// The offending opcode.
        opcode: u16,
    },
    /// The request panicked or failed inside the store; the server
    /// survived and the connection stays usable.
    Internal {
        /// Human-readable failure description.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::ShardPoisoned { shard } => write!(f, "shard {shard} poisoned"),
            WireError::DuplicateDocument { doc_id } => {
                write!(f, "document {doc_id} already exists")
            }
            WireError::Malformed { detail } => write!(f, "malformed request: {detail}"),
            WireError::Unsupported { opcode } => write!(f, "unsupported opcode {opcode:#06x}"),
            WireError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Messages.
// ---------------------------------------------------------------------

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Insert a document; duplicate ids are refused with
    /// [`WireError::DuplicateDocument`].
    Insert {
        /// Caller-assigned document id.
        doc_id: u64,
        /// Document bytes.
        bytes: Vec<u8>,
    },
    /// Delete a document by id.
    Delete {
        /// The id to delete.
        doc_id: u64,
    },
    /// Count occurrences of `pattern` across all alive documents.
    Count {
        /// The pattern bytes.
        pattern: Vec<u8>,
    },
    /// Locate every occurrence of `pattern`, sorted by `(doc, offset)`.
    Find {
        /// The pattern bytes.
        pattern: Vec<u8>,
    },
    /// Locate at most `limit` occurrences of `pattern`.
    FindLimit {
        /// The pattern bytes.
        pattern: Vec<u8>,
        /// Maximum occurrences to return.
        limit: u64,
    },
    /// A whole-store census.
    Stats,
    /// The store's health verdict.
    Health,
}

impl Request {
    /// This request's wire opcode.
    pub fn opcode(&self) -> u16 {
        match self {
            Request::Insert { .. } => 0x01,
            Request::Delete { .. } => 0x02,
            Request::Count { .. } => 0x03,
            Request::Find { .. } => 0x04,
            Request::FindLimit { .. } => 0x05,
            Request::Stats => 0x06,
            Request::Health => 0x07,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // Writes into a Vec cannot fail.
        match self {
            Request::Insert { doc_id, bytes } => {
                write_u64(&mut out, *doc_id).unwrap();
                write_bytes(&mut out, bytes).unwrap();
            }
            Request::Delete { doc_id } => write_u64(&mut out, *doc_id).unwrap(),
            Request::Count { pattern } | Request::Find { pattern } => {
                write_bytes(&mut out, pattern).unwrap();
            }
            Request::FindLimit { pattern, limit } => {
                write_bytes(&mut out, pattern).unwrap();
                write_u64(&mut out, *limit).unwrap();
            }
            Request::Stats | Request::Health => {}
        }
        out
    }

    /// Decodes a request from a verified frame.
    pub fn decode(opcode: u16, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut r = std::io::Cursor::new(payload);
        let request = match opcode {
            0x01 => Request::Insert {
                doc_id: read_u64(&mut r)?,
                bytes: read_bytes(&mut r)?,
            },
            0x02 => Request::Delete {
                doc_id: read_u64(&mut r)?,
            },
            0x03 => Request::Count {
                pattern: read_bytes(&mut r)?,
            },
            0x04 => Request::Find {
                pattern: read_bytes(&mut r)?,
            },
            0x05 => Request::FindLimit {
                pattern: read_bytes(&mut r)?,
                limit: read_u64(&mut r)?,
            },
            0x06 => Request::Stats,
            0x07 => Request::Health,
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unknown request opcode {other:#06x}"
                )))
            }
        };
        expect_consumed(&r)?;
        Ok(request)
    }

    /// Frames this request into `w`.
    ///
    /// # Errors
    /// [`ProtoError::FrameTooLarge`] when the encoded payload exceeds
    /// `max_frame`; otherwise only socket failures.
    pub fn write_frame<W: Write>(&self, w: &mut W, max_frame: u32) -> Result<(), ProtoError> {
        write_frame(w, self.opcode(), &self.payload(), max_frame)
    }
}

/// The store's health verdict, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteHealth {
    /// Every detector passed.
    Ok,
    /// Serving continues but something needs attention.
    Degraded,
    /// Part of the store cannot make progress.
    Unhealthy,
}

impl RemoteHealth {
    fn code(self) -> u8 {
        match self {
            RemoteHealth::Ok => 0,
            RemoteHealth::Degraded => 1,
            RemoteHealth::Unhealthy => 2,
        }
    }

    fn from_code(code: u8) -> Result<RemoteHealth, ProtoError> {
        match code {
            0 => Ok(RemoteHealth::Ok),
            1 => Ok(RemoteHealth::Degraded),
            2 => Ok(RemoteHealth::Unhealthy),
            other => Err(ProtoError::Malformed(format!(
                "bad health status byte {other:#04x}"
            ))),
        }
    }
}

/// A whole-store census, as carried on the wire — the remote projection
/// of [`dyndex_store::StoreStats`]'s aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteStats {
    /// Alive documents across all shards.
    pub docs: u64,
    /// Alive bytes across all shards.
    pub symbols: u64,
    /// Number of shards.
    pub shards: u32,
    /// In-flight background jobs across all shards.
    pub pending_jobs: u64,
    /// Requests waiting across all worker queues.
    pub queued_requests: u64,
    /// Workers executing a request at census time.
    pub busy_workers: u32,
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The insert succeeded.
    Inserted,
    /// The delete completed; carries the deleted document's bytes when
    /// the id was alive.
    Deleted {
        /// The removed document, `None` if the id was not present.
        previous: Option<Vec<u8>>,
    },
    /// Occurrence count for a [`Request::Count`].
    Count(u64),
    /// Occurrences as `(doc, offset)` pairs, sorted ascending — the
    /// answer to [`Request::Find`] / [`Request::FindLimit`].
    Occurrences(Vec<(u64, u64)>),
    /// The census for a [`Request::Stats`].
    Stats(RemoteStats),
    /// The verdict for a [`Request::Health`].
    Health {
        /// Folded health status.
        status: RemoteHealth,
        /// The full rendered report (status plus findings).
        detail: String,
    },
    /// The server shed this request under load; retry later.
    Busy {
        /// The overloaded shard, `None` when the whole store's fan-out
        /// path is saturated.
        shard: Option<u32>,
        /// Queue depth observed at the shed decision.
        queued: u64,
    },
    /// The request failed with a typed error; the connection remains
    /// usable.
    Error(WireError),
}

/// Sentinel for [`Response::Busy`] with no specific shard.
const NO_SHARD: u32 = u32::MAX;

impl Response {
    /// This response's wire opcode.
    pub fn opcode(&self) -> u16 {
        match self {
            Response::Inserted => 0x81,
            Response::Deleted { .. } => 0x82,
            Response::Count(_) => 0x83,
            Response::Occurrences(_) => 0x84,
            Response::Stats(_) => 0x86,
            Response::Health { .. } => 0x87,
            Response::Busy { .. } => 0x90,
            Response::Error(_) => 0x91,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Inserted => {}
            Response::Deleted { previous } => {
                write_u8(&mut out, previous.is_some() as u8).unwrap();
                if let Some(bytes) = previous {
                    write_bytes(&mut out, bytes).unwrap();
                }
            }
            Response::Count(n) => write_u64(&mut out, *n).unwrap(),
            Response::Occurrences(hits) => {
                write_u64(&mut out, hits.len() as u64).unwrap();
                for (doc, offset) in hits {
                    write_u64(&mut out, *doc).unwrap();
                    write_u64(&mut out, *offset).unwrap();
                }
            }
            Response::Stats(stats) => {
                write_u64(&mut out, stats.docs).unwrap();
                write_u64(&mut out, stats.symbols).unwrap();
                write_u32(&mut out, stats.shards).unwrap();
                write_u64(&mut out, stats.pending_jobs).unwrap();
                write_u64(&mut out, stats.queued_requests).unwrap();
                write_u32(&mut out, stats.busy_workers).unwrap();
            }
            Response::Health { status, detail } => {
                write_u8(&mut out, status.code()).unwrap();
                write_str(&mut out, detail).unwrap();
            }
            Response::Busy { shard, queued } => {
                write_u32(&mut out, shard.unwrap_or(NO_SHARD)).unwrap();
                write_u64(&mut out, *queued).unwrap();
            }
            Response::Error(err) => encode_wire_error(&mut out, err),
        }
        out
    }

    /// Decodes a response from a verified frame.
    pub fn decode(opcode: u16, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut r = std::io::Cursor::new(payload);
        let response = match opcode {
            0x81 => Response::Inserted,
            0x82 => Response::Deleted {
                previous: match read_u8(&mut r)? {
                    0 => None,
                    1 => Some(read_bytes(&mut r)?),
                    b => {
                        return Err(ProtoError::Malformed(format!(
                            "bad option byte {b:#04x} in delete response"
                        )))
                    }
                },
            },
            0x83 => Response::Count(read_u64(&mut r)?),
            0x84 => {
                let count = read_u64(&mut r)?;
                // Each pair is 16 payload bytes; an honest count can
                // never exceed what the (already bounded) payload holds.
                let remaining = (payload.len() as u64).saturating_sub(8);
                if count > remaining / 16 {
                    return Err(ProtoError::Malformed(format!(
                        "occurrence count {count} exceeds payload"
                    )));
                }
                let mut hits = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    hits.push((read_u64(&mut r)?, read_u64(&mut r)?));
                }
                Response::Occurrences(hits)
            }
            0x86 => Response::Stats(RemoteStats {
                docs: read_u64(&mut r)?,
                symbols: read_u64(&mut r)?,
                shards: read_u32(&mut r)?,
                pending_jobs: read_u64(&mut r)?,
                queued_requests: read_u64(&mut r)?,
                busy_workers: read_u32(&mut r)?,
            }),
            0x87 => Response::Health {
                status: RemoteHealth::from_code(read_u8(&mut r)?)?,
                detail: read_str(&mut r)?,
            },
            0x90 => Response::Busy {
                shard: match read_u32(&mut r)? {
                    NO_SHARD => None,
                    shard => Some(shard),
                },
                queued: read_u64(&mut r)?,
            },
            0x91 => Response::Error(decode_wire_error(&mut r)?),
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unknown response opcode {other:#06x}"
                )))
            }
        };
        expect_consumed(&r)?;
        Ok(response)
    }

    /// Frames this response into `w` (see [`Request::write_frame`]).
    ///
    /// # Errors
    /// [`ProtoError::FrameTooLarge`] when the encoded payload exceeds
    /// `max_frame`; otherwise only socket failures.
    pub fn write_frame<W: Write>(&self, w: &mut W, max_frame: u32) -> Result<(), ProtoError> {
        write_frame(w, self.opcode(), &self.payload(), max_frame)
    }
}

fn encode_wire_error(out: &mut Vec<u8>, err: &WireError) {
    match err {
        WireError::ShardPoisoned { shard } => {
            write_u8(out, 1).unwrap();
            write_u32(out, *shard).unwrap();
        }
        WireError::DuplicateDocument { doc_id } => {
            write_u8(out, 2).unwrap();
            write_u64(out, *doc_id).unwrap();
        }
        WireError::Malformed { detail } => {
            write_u8(out, 3).unwrap();
            write_str(out, detail).unwrap();
        }
        WireError::Unsupported { opcode } => {
            write_u8(out, 4).unwrap();
            write_u16(out, *opcode).unwrap();
        }
        WireError::Internal { detail } => {
            write_u8(out, 5).unwrap();
            write_str(out, detail).unwrap();
        }
    }
}

fn decode_wire_error<R: Read>(r: &mut R) -> Result<WireError, ProtoError> {
    Ok(match read_u8(r)? {
        1 => WireError::ShardPoisoned {
            shard: read_u32(r)?,
        },
        2 => WireError::DuplicateDocument {
            doc_id: read_u64(r)?,
        },
        3 => WireError::Malformed {
            detail: read_str(r)?,
        },
        4 => WireError::Unsupported {
            opcode: read_u16(r)?,
        },
        5 => WireError::Internal {
            detail: read_str(r)?,
        },
        tag => {
            return Err(ProtoError::Malformed(format!(
                "bad wire-error tag {tag:#04x}"
            )))
        }
    })
}

fn expect_consumed(r: &std::io::Cursor<&[u8]>) -> Result<(), ProtoError> {
    if r.position() != r.get_ref().len() as u64 {
        return Err(ProtoError::Malformed(format!(
            "{} trailing bytes after payload",
            r.get_ref().len() as u64 - r.position()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// Writes one frame: header, payload, CRC.
///
/// # Errors
/// [`ProtoError::FrameTooLarge`] when `payload` exceeds `max_frame`
/// (checked before anything touches the socket, so an oversized message
/// never desyncs the stream); socket errors otherwise.
pub fn write_frame<W: Write>(
    w: &mut W,
    opcode: u16,
    payload: &[u8],
    max_frame: u32,
) -> Result<(), ProtoError> {
    if payload.len() as u64 > max_frame as u64 {
        return Err(ProtoError::FrameTooLarge {
            len: payload.len().min(u32::MAX as usize) as u32,
            max: max_frame,
        });
    }
    w.write_all(&MAGIC)?;
    write_u16(w, VERSION)?;
    write_u16(w, opcode)?;
    write_u32(w, payload.len() as u32)?;
    w.write_all(payload)?;
    write_u32(w, crc32(payload))?;
    Ok(())
}

/// Reads one byte — the start of the next frame — distinguishing a
/// clean close (`Ok(None)`: EOF before any byte) from everything else.
/// The serving loop uses this to wait out a connection's idle gap under
/// a different deadline than the frame that follows.
pub fn read_first_byte<R: Read>(r: &mut R) -> Result<Option<u8>, ProtoError> {
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(byte[0])),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Reads the rest of a frame whose first magic byte (`first`) was
/// already consumed; validates magic, version, length cap, and CRC, and
/// returns the authenticated `(opcode, payload)`.
pub fn read_frame_rest<R: Read>(
    first: u8,
    r: &mut R,
    max_frame: u32,
) -> Result<(u16, Vec<u8>), ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    r.read_exact(&mut header[1..])?;
    if header[..4] != MAGIC {
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&header[..4]);
        return Err(ProtoError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(ProtoError::UnsupportedVersion {
            found: version,
            expected: VERSION,
        });
    }
    let opcode = u16::from_le_bytes([header[6], header[7]]);
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > max_frame {
        return Err(ProtoError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc = [0u8; 4];
    r.read_exact(&mut crc)?;
    if u32::from_le_bytes(crc) != crc32(&payload) {
        return Err(ProtoError::ChecksumMismatch);
    }
    Ok((opcode, payload))
}

/// Reads one whole frame; `Ok(None)` on a clean close before any byte.
///
/// # Examples
///
/// ```
/// use dyndex_serve::proto::{read_frame, write_frame, DEFAULT_MAX_FRAME};
///
/// let mut wire = Vec::new();
/// write_frame(&mut wire, 0x03, b"pattern", DEFAULT_MAX_FRAME).unwrap();
/// let (opcode, payload) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME)
///     .unwrap()
///     .expect("a frame was written");
/// assert_eq!((opcode, payload.as_slice()), (0x03, b"pattern".as_slice()));
///
/// // EOF before any byte is a clean close, not an error.
/// assert!(read_frame(&mut [].as_slice(), DEFAULT_MAX_FRAME).unwrap().is_none());
/// ```
pub fn read_frame<R: Read>(
    r: &mut R,
    max_frame: u32,
) -> Result<Option<(u16, Vec<u8>)>, ProtoError> {
    match read_first_byte(r)? {
        None => Ok(None),
        Some(first) => read_frame_rest(first, r, max_frame).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        req.write_frame(&mut wire, DEFAULT_MAX_FRAME).unwrap();
        let (opcode, payload) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(Request::decode(opcode, &payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        resp.write_frame(&mut wire, DEFAULT_MAX_FRAME).unwrap();
        let (opcode, payload) = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(Response::decode(opcode, &payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Insert {
            doc_id: 42,
            bytes: b"document body".to_vec(),
        });
        roundtrip_request(Request::Delete { doc_id: u64::MAX });
        roundtrip_request(Request::Count {
            pattern: b"pat".to_vec(),
        });
        roundtrip_request(Request::Find { pattern: vec![] });
        roundtrip_request(Request::FindLimit {
            pattern: vec![0, 255, 7],
            limit: 10,
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Health);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Inserted);
        roundtrip_response(Response::Deleted { previous: None });
        roundtrip_response(Response::Deleted {
            previous: Some(b"old bytes".to_vec()),
        });
        roundtrip_response(Response::Count(9_000));
        roundtrip_response(Response::Occurrences(vec![]));
        roundtrip_response(Response::Occurrences(vec![(1, 0), (1, 7), (2, 3)]));
        roundtrip_response(Response::Stats(RemoteStats {
            docs: 100,
            symbols: 5_000,
            shards: 4,
            pending_jobs: 2,
            queued_requests: 1,
            busy_workers: 3,
        }));
        roundtrip_response(Response::Health {
            status: RemoteHealth::Degraded,
            detail: "degraded: shard 1 poisoned".to_string(),
        });
        roundtrip_response(Response::Busy {
            shard: Some(3),
            queued: 17,
        });
        roundtrip_response(Response::Busy {
            shard: None,
            queued: 64,
        });
        for err in [
            WireError::ShardPoisoned { shard: 2 },
            WireError::DuplicateDocument { doc_id: 7 },
            WireError::Malformed {
                detail: "short".to_string(),
            },
            WireError::Unsupported { opcode: 0x99 },
            WireError::Internal {
                detail: "panic".to_string(),
            },
        ] {
            roundtrip_response(Response::Error(err));
        }
    }

    #[test]
    fn oversized_frames_are_refused_on_both_sides() {
        let req = Request::Insert {
            doc_id: 1,
            bytes: vec![0u8; 64],
        };
        let mut wire = Vec::new();
        assert!(matches!(
            req.write_frame(&mut wire, 16),
            Err(ProtoError::FrameTooLarge { .. })
        ));
        assert!(wire.is_empty(), "nothing written for a refused frame");

        req.write_frame(&mut wire, DEFAULT_MAX_FRAME).unwrap();
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 16),
            Err(ProtoError::FrameTooLarge { len: _, max: 16 })
        ));
    }

    #[test]
    fn corrupted_frames_yield_typed_errors() {
        let mut wire = Vec::new();
        Request::Count {
            pattern: b"needle".to_vec(),
        }
        .write_frame(&mut wire, DEFAULT_MAX_FRAME)
        .unwrap();

        // Flipped payload byte: checksum catches it.
        let mut bad = wire.clone();
        bad[HEADER_LEN + 9] ^= 0x40;
        assert!(matches!(
            read_frame(&mut bad.as_slice(), DEFAULT_MAX_FRAME),
            Err(ProtoError::ChecksumMismatch)
        ));

        // Wrong magic.
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice(), DEFAULT_MAX_FRAME),
            Err(ProtoError::BadMagic(_))
        ));

        // Foreign version.
        let mut bad = wire.clone();
        bad[4] = 0xEE;
        assert!(matches!(
            read_frame(&mut bad.as_slice(), DEFAULT_MAX_FRAME),
            Err(ProtoError::UnsupportedVersion { found: 0xEE, .. })
        ));

        // Truncation mid-payload.
        let short = &wire[..wire.len() - 6];
        assert!(matches!(
            read_frame(&mut short.to_vec().as_slice(), DEFAULT_MAX_FRAME),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn trailing_bytes_in_a_payload_are_malformed() {
        let mut payload = Vec::new();
        write_u64(&mut payload, 5).unwrap();
        payload.push(0xAB); // one byte too many for a Delete
        assert!(matches!(
            Request::decode(0x02, &payload),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn bogus_occurrence_count_is_malformed_not_oom() {
        let mut payload = Vec::new();
        write_u64(&mut payload, u64::MAX).unwrap(); // claims 2^64-1 pairs
        assert!(matches!(
            Response::decode(0x84, &payload),
            Err(ProtoError::Malformed(_))
        ));
    }
}
