//! The serving loop: a bounded acceptor/handler thread set translating
//! wire-protocol requests into store operations, with queue-depth
//! backpressure and graceful shutdown.
//!
//! ## Life of a remote query
//!
//! 1. The acceptor admits the connection (or sheds it with a best-effort
//!    `Busy` frame when [`ServeOptions::max_connections`] is reached) and
//!    hands it to a handler thread.
//! 2. The handler waits up to [`ServeOptions::idle_timeout`] for the
//!    first byte of a frame, then requires the *whole* frame within
//!    [`ServeOptions::frame_timeout`] — both absolute deadlines via
//!    [`DeadlineReader`], so a trickling client cannot pin the thread.
//! 3. Before executing, the handler reads the store's live worker-queue
//!    gauges: a depth at or past [`ServeOptions::shed_queue_depth`]
//!    answers [`Response::Busy`] instead of queueing more work.
//! 4. The request runs through the store's normal paths — queries fan
//!    out over the resident per-shard worker pool via the existing
//!    closure+reply-channel submission; the handler thread blocks only
//!    on reply channels, never on shard locks.
//! 5. The response is framed back, and a flight-recorder root span plus
//!    request metrics land in the store's telemetry.
//!
//! Malformed frames never panic the server: every failure is a typed
//! [`ProtoError`](crate::ProtoError), answered with a
//! [`WireError::Malformed`] frame when the stream is still in sync, or
//! a close when it is not.

use crate::proto::{
    self, RemoteHealth, RemoteStats, Request, Response, WireError, DEFAULT_MAX_FRAME,
};
use dyndex_core::StaticIndex;
use dyndex_obs::{Counter, DeadlineReader, Gauge, Histogram, Span, SpanKind, Unit};
use dyndex_store::{HealthStatus, ShardedStore, StoreOptions};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-layer knobs. The defaults suit tests and single-host use;
/// production deployments mostly tune `max_connections` and
/// `shed_queue_depth`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub addr: String,
    /// Concurrent connections admitted; excess connections receive a
    /// best-effort `Busy` frame and are closed.
    pub max_connections: usize,
    /// Worker-queue depth at which requests are shed with
    /// [`Response::Busy`] instead of queued (`Stats`/`Health` are never
    /// shed — operators need them most under load).
    pub shed_queue_depth: usize,
    /// How long a connection may sit idle between frames.
    pub idle_timeout: Duration,
    /// Absolute deadline for one frame, first header byte to checksum.
    pub frame_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Cap on any frame's payload length, both directions.
    pub max_frame_len: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            shed_queue_depth: 128,
            idle_timeout: Duration::from_secs(60),
            frame_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME,
        }
    }
}

/// Per-request metrics, registered into the store's registry so one
/// scrape covers both layers.
struct ServeMetrics {
    connections_total: Arc<Counter>,
    connections_open: Arc<Gauge>,
    requests_total: Arc<Counter>,
    shed_total: Arc<Counter>,
    proto_errors_total: Arc<Counter>,
    request_duration: Arc<Histogram>,
}

impl ServeMetrics {
    fn bind(registry: &dyndex_obs::MetricsRegistry) -> ServeMetrics {
        ServeMetrics {
            connections_total: registry.counter(
                "dyndex_serve_connections_total",
                "Connections accepted by the wire-protocol server",
                Unit::Count,
            ),
            connections_open: registry.gauge(
                "dyndex_serve_connections_open",
                "Connections currently open",
                Unit::Count,
            ),
            requests_total: registry.counter(
                "dyndex_serve_requests_total",
                "Requests decoded and answered",
                Unit::Count,
            ),
            shed_total: registry.counter(
                "dyndex_serve_shed_total",
                "Requests and connections shed with a Busy response",
                Unit::Count,
            ),
            proto_errors_total: registry.counter(
                "dyndex_serve_proto_errors_total",
                "Malformed or timed-out frames from clients",
                Unit::Count,
            ),
            request_duration: registry.histogram(
                "dyndex_serve_request_duration",
                "Wall time from decoded request to written response",
                Unit::Nanos,
                8,
            ),
        }
    }
}

/// Shared between the server handle, the acceptor, and every handler.
struct Shared {
    shutdown: AtomicBool,
    /// Live handler connections (admission control + shutdown wait).
    open: AtomicUsize,
    /// Cloned stream handles, so shutdown can cut every live connection
    /// instead of waiting out their idle timeouts.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    metrics: Option<ServeMetrics>,
}

/// A running wire-protocol server over a [`ShardedStore`].
///
/// The server *owns* an `Arc` of the store (mirroring how
/// `DurableStore` wraps one) and derefs to it, so in-process code keeps
/// the whole local API while remote clients connect over TCP. Dropping
/// the server stops the acceptor, cuts live connections, and then drops
/// its store reference — the admin endpoint's graceful-shutdown
/// discipline, extended to data traffic.
///
/// ```
/// use dyndex_core::FmConfig;
/// use dyndex_serve::{Client, ServeOptions, Server};
/// use dyndex_store::StoreOptions;
/// use dyndex_text::FmIndexCompressed;
///
/// let server: Server<FmIndexCompressed> = Server::create(
///     FmConfig { sample_rate: 8 },
///     StoreOptions::default(),
///     ServeOptions::default(),
/// )
/// .unwrap();
///
/// // Local API still available through Deref…
/// server.insert(1, b"served documents").unwrap();
///
/// // …and the same data over TCP.
/// let mut client = Client::connect(server.addr()).unwrap();
/// assert_eq!(client.count(b"served").unwrap(), 1);
/// ```
pub struct Server<I: StaticIndex + Sync> {
    store: Arc<ShardedStore<I>>,
    shared: Arc<Shared>,
    options: ServeOptions,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl<I: StaticIndex + Sync> std::fmt::Debug for Server<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl<I: StaticIndex + Sync> Server<I> {
    /// Builds a fresh store and serves it — the one-call path mirroring
    /// [`ShardedStore::new`].
    ///
    /// # Errors
    /// Propagates the listener bind failure.
    pub fn create(
        config: I::Config,
        store_options: StoreOptions,
        options: ServeOptions,
    ) -> std::io::Result<Server<I>> {
        Server::over(Arc::new(ShardedStore::new(config, store_options)), options)
    }

    /// Serves an existing store. The `Arc` lets callers keep their own
    /// handle (or share the store with a durability layer).
    ///
    /// # Errors
    /// Propagates the listener bind failure.
    pub fn over(store: Arc<ShardedStore<I>>, options: ServeOptions) -> std::io::Result<Server<I>> {
        let listener = TcpListener::bind(parse_addr(&options.addr)?)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            open: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            metrics: store.metrics().map(|r| ServeMetrics::bind(&r)),
        });
        let accept_thread = {
            let store = Arc::clone(&store);
            let shared = Arc::clone(&shared);
            let options = options.clone();
            std::thread::Builder::new()
                .name("dyndex-serve".to_string())
                .spawn(move || accept_loop(&listener, &store, &shared, &options))?
        };
        Ok(Server {
            store,
            shared,
            options,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A fresh handle to the served store.
    pub fn store(&self) -> Arc<ShardedStore<I>> {
        Arc::clone(&self.store)
    }

    /// The options this server runs with.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> usize {
        self.shared.open.load(Ordering::Acquire)
    }
}

impl<I: StaticIndex + Sync> Deref for Server<I> {
    type Target = ShardedStore<I>;

    fn deref(&self) -> &ShardedStore<I> {
        &self.store
    }
}

impl<I: StaticIndex + Sync> Drop for Server<I> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Cut every live connection: handlers blocked in a read observe
        // EOF/reset instead of waiting out their idle timeout.
        if let Ok(conns) = self.shared.conns.lock() {
            for conn in conns.values() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        // Wake the blocked accept and join the acceptor.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Bounded wait for handler threads to drain; they exit promptly
        // once their sockets are shut down.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.open.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// `ToSocketAddrs` resolution with a typed error for an empty result.
fn parse_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("address {addr:?} resolved to nothing"),
        )
    })
}

fn accept_loop<I: StaticIndex + Sync>(
    listener: &TcpListener,
    store: &Arc<ShardedStore<I>>,
    shared: &Arc<Shared>,
    options: &ServeOptions,
) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(conn) = conn else { continue };
        if shared.open.load(Ordering::Acquire) >= options.max_connections {
            // Connection-level shed: tell the peer explicitly (best
            // effort — it may already be gone) rather than silently
            // queueing it behind a full house.
            if let Some(m) = &shared.metrics {
                m.shed_total.inc();
            }
            let _ = conn.set_write_timeout(Some(options.write_timeout));
            let busy = Response::Busy {
                shard: None,
                queued: shared.open.load(Ordering::Acquire) as u64,
            };
            let _ = busy.write_frame(&mut &conn, options.max_frame_len);
            let _ = conn.shutdown(Shutdown::Both);
            continue;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = conn.try_clone() {
            if let Ok(mut conns) = shared.conns.lock() {
                conns.insert(conn_id, clone);
            }
        }
        shared.open.fetch_add(1, Ordering::AcqRel);
        if let Some(m) = &shared.metrics {
            m.connections_total.inc();
            m.connections_open
                .set(shared.open.load(Ordering::Acquire) as u64);
        }
        let store = Arc::clone(store);
        let handler_shared = Arc::clone(shared);
        let options = options.clone();
        let spawned = std::thread::Builder::new()
            .name("dyndex-serve-conn".to_string())
            .spawn(move || {
                serve_connection(&conn, &store, &handler_shared, &options);
                if let Ok(mut conns) = handler_shared.conns.lock() {
                    conns.remove(&conn_id);
                }
                handler_shared.open.fetch_sub(1, Ordering::AcqRel);
                if let Some(m) = &handler_shared.metrics {
                    m.connections_open
                        .set(handler_shared.open.load(Ordering::Acquire) as u64);
                }
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): roll the
            // admission back so the slot frees up.
            if let Ok(mut conns) = shared.conns.lock() {
                conns.remove(&conn_id);
            }
            shared.open.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// One connection's request/response loop. Returns when the peer closes,
/// a deadline fires, framing desyncs, or shutdown cuts the socket.
fn serve_connection<I: StaticIndex + Sync>(
    conn: &TcpStream,
    store: &ShardedStore<I>,
    shared: &Shared,
    options: &ServeOptions,
) {
    let _ = conn.set_write_timeout(Some(options.write_timeout));
    let _ = conn.set_nodelay(true);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Phase 1: wait out the idle gap for a frame's first byte.
        let first = {
            let Ok(mut idle) = DeadlineReader::new(conn, options.idle_timeout) else {
                return;
            };
            match proto::read_first_byte(&mut idle) {
                Ok(None) => return, // clean close
                Err(_) => return,   // idle timeout or reset
                Ok(Some(byte)) => byte,
            }
        };
        // Phase 2: the rest of the frame under the (much tighter) frame
        // deadline — the slow-loris defense.
        let frame = {
            let Ok(mut reader) = DeadlineReader::new(conn, options.frame_timeout) else {
                return;
            };
            proto::read_frame_rest(first, &mut reader, options.max_frame_len)
        };
        let (opcode, payload) = match frame {
            Ok(frame) => frame,
            Err(err) => {
                // Framing is broken (desync, timeout, oversize): answer
                // with the typed error if the socket still writes, then
                // close — resynchronizing a byte stream is not possible.
                if let Some(m) = &shared.metrics {
                    m.proto_errors_total.inc();
                }
                let reply = Response::Error(WireError::Malformed {
                    detail: err.to_string(),
                });
                let _ = reply.write_frame(&mut &*conn, options.max_frame_len);
                return;
            }
        };
        // The frame is intact; a payload that does not decode leaves the
        // stream in sync, so the connection survives the typed error.
        let response = match Request::decode(opcode, &payload) {
            Ok(request) => handle_request(store, shared, options, request),
            Err(err) => {
                if let Some(m) = &shared.metrics {
                    m.proto_errors_total.inc();
                }
                if (0x80..=0xFF).contains(&opcode) {
                    Response::Error(WireError::Unsupported { opcode })
                } else {
                    Response::Error(WireError::Malformed {
                        detail: err.to_string(),
                    })
                }
            }
        };
        if response
            .write_frame(&mut &*conn, options.max_frame_len)
            .is_err()
        {
            return;
        }
    }
}

/// Executes one decoded request: shed check, store call (panic-contained),
/// metrics, and a flight-recorder root span.
fn handle_request<I: StaticIndex + Sync>(
    store: &ShardedStore<I>,
    shared: &Shared,
    options: &ServeOptions,
    request: Request,
) -> Response {
    let flight = store.flight_recorder();
    let span = flight.as_ref().map(|f| (f.next_span_id(), f.now_nanos()));
    let opcode = request.opcode();
    let started = Instant::now();

    let response = match shed_verdict(store, options, &request) {
        Some(busy) => {
            if let Some(m) = &shared.metrics {
                m.shed_total.inc();
            }
            busy
        }
        None => execute(store, request),
    };

    if let Some(m) = &shared.metrics {
        m.requests_total.inc();
        m.request_duration
            .record(started.elapsed().as_nanos() as u64);
    }
    if let (Some(flight), Some((id, start_nanos))) = (flight, span) {
        flight.finish_root(Span {
            start_nanos,
            duration_nanos: started.elapsed().as_nanos() as u64,
            detail: opcode as u64,
            ..Span::root(id, SpanKind::ServeRequest)
        });
    }
    response
}

/// The backpressure decision: `Some(Busy)` when the queues the request
/// would ride are already at the shed threshold.
///
/// Writes gate on *their* shard's queue (depth there means its worker —
/// which shares the shard's write lock via maintenance — is behind);
/// fan-out queries gate on the *deepest* queue, because a fan-out waits
/// on its slowest shard. `Stats` and `Health` always pass: under
/// overload they are the requests an operator needs answered.
fn shed_verdict<I: StaticIndex + Sync>(
    store: &ShardedStore<I>,
    options: &ServeOptions,
    request: &Request,
) -> Option<Response> {
    let threshold = options.shed_queue_depth;
    match request {
        Request::Insert { doc_id, .. } | Request::Delete { doc_id } => {
            let shard = store.shard_of(*doc_id);
            let depth = store.shard_queue_depth(shard);
            (depth >= threshold).then_some(Response::Busy {
                shard: Some(shard as u32),
                queued: depth as u64,
            })
        }
        Request::Count { .. } | Request::Find { .. } | Request::FindLimit { .. } => {
            let depth = store.max_queue_depth();
            (depth >= threshold).then_some(Response::Busy {
                shard: None,
                queued: depth as u64,
            })
        }
        Request::Stats | Request::Health => None,
    }
}

/// Runs the request against the store. Every panic is contained to an
/// [`WireError::Internal`] response: hostile or buggy input can poison a
/// shard (that is the store's contract) but never kills the server.
fn execute<I: StaticIndex + Sync>(store: &ShardedStore<I>, request: Request) -> Response {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match request {
        Request::Insert { doc_id, bytes } => {
            // Precheck keeps the normal duplicate path typed; the
            // catch_unwind above is the backstop for the insert/insert
            // race on the same id.
            if store.contains(doc_id) {
                return Response::Error(WireError::DuplicateDocument { doc_id });
            }
            match store.insert(doc_id, &bytes) {
                Ok(()) => Response::Inserted,
                Err(poisoned) => Response::Error(WireError::ShardPoisoned {
                    shard: poisoned.shard as u32,
                }),
            }
        }
        Request::Delete { doc_id } => match store.delete(doc_id) {
            Ok(previous) => Response::Deleted { previous },
            Err(poisoned) => Response::Error(WireError::ShardPoisoned {
                shard: poisoned.shard as u32,
            }),
        },
        Request::Count { pattern } => Response::Count(store.count(&pattern) as u64),
        Request::Find { pattern } => Response::Occurrences(
            store
                .find(&pattern)
                .into_iter()
                .map(|hit| (hit.doc, hit.offset as u64))
                .collect(),
        ),
        Request::FindLimit { pattern, limit } => {
            let limit = usize::try_from(limit).unwrap_or(usize::MAX);
            Response::Occurrences(
                store
                    .find_limit(&pattern, limit)
                    .into_iter()
                    .map(|hit| (hit.doc, hit.offset as u64))
                    .collect(),
            )
        }
        Request::Stats => {
            let stats = store.stats();
            Response::Stats(RemoteStats {
                docs: stats.total_docs() as u64,
                symbols: stats.total_symbols() as u64,
                shards: stats.shards.len() as u32,
                pending_jobs: stats.pending_jobs() as u64,
                queued_requests: stats.queued_requests() as u64,
                busy_workers: stats.busy_workers() as u32,
            })
        }
        Request::Health => {
            let report = store.health();
            Response::Health {
                status: match report.status {
                    HealthStatus::Ok => RemoteHealth::Ok,
                    HealthStatus::Degraded => RemoteHealth::Degraded,
                    HealthStatus::Unhealthy => RemoteHealth::Unhealthy,
                },
                detail: report.to_string(),
            }
        }
    }));
    outcome.unwrap_or_else(|panic| {
        let detail = if let Some(s) = panic.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = panic.downcast_ref::<String>() {
            s.clone()
        } else {
            "request panicked".to_string()
        };
        Response::Error(WireError::Internal { detail })
    })
}
