//! A blocking client handle over one TCP connection: typed methods,
//! typed errors, one in-flight request at a time.

use crate::proto::{
    self, ProtoError, RemoteHealth, RemoteStats, Request, Response, WireError, DEFAULT_MAX_FRAME,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// A framing or socket failure (the connection should be dropped).
    Proto(ProtoError),
    /// The server shed the request under load; retry after backoff.
    Busy {
        /// The overloaded shard, `None` for store-wide pressure.
        shard: Option<u32>,
        /// Queue depth the server observed.
        queued: u64,
    },
    /// The server answered with a typed request failure.
    Remote(WireError),
    /// The server closed the connection before answering.
    Disconnected,
    /// The server answered with a response that does not match the
    /// request (a protocol bug, not an operational condition).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol failure: {e}"),
            ClientError::Busy {
                shard: Some(s),
                queued,
            } => {
                write!(f, "server busy (shard {s}, {queued} queued)")
            }
            ClientError::Busy {
                shard: None,
                queued,
            } => {
                write!(f, "server busy ({queued} queued)")
            }
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(e.into())
    }
}

/// A blocking connection to a [`Server`](crate::Server).
///
/// Each method sends one request frame and reads one response frame; the
/// connection is request/response, never pipelined. A [`ClientError::Proto`]
/// means the connection is unusable — reconnect; [`ClientError::Busy`]
/// and [`ClientError::Remote`] leave it healthy.
///
/// ```no_run
/// use dyndex_serve::Client;
///
/// let mut client = Client::connect("127.0.0.1:7070").unwrap();
/// client.insert(1, b"remote document").unwrap();
/// assert_eq!(client.count(b"remote").unwrap(), 1);
/// let hits = client.find(b"document").unwrap();
/// assert_eq!(hits, vec![(1, 7)]);
/// ```
#[derive(Debug)]
pub struct Client {
    conn: TcpStream,
    max_frame: u32,
}

impl Client {
    /// Connects with a 30-second response timeout.
    ///
    /// # Errors
    /// Connection failures surface as [`ClientError::Proto`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true)?;
        let mut client = Client {
            conn,
            max_frame: DEFAULT_MAX_FRAME,
        };
        client.set_timeout(Duration::from_secs(30))?;
        Ok(client)
    }

    /// How long to wait for a response before failing with
    /// [`ProtoError::Timeout`].
    ///
    /// # Errors
    /// Propagates the socket option failure.
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.conn.set_read_timeout(Some(timeout))?;
        self.conn.set_write_timeout(Some(timeout))?;
        Ok(())
    }

    /// Caps frames in both directions (mirror the server's
    /// [`ServeOptions::max_frame_len`](crate::ServeOptions::max_frame_len)
    /// when it differs from the default).
    pub fn set_max_frame(&mut self, max_frame: u32) {
        self.max_frame = max_frame;
    }

    /// One request/response exchange.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        request.write_frame(&mut self.conn, self.max_frame)?;
        let (opcode, payload) =
            proto::read_frame(&mut self.conn, self.max_frame)?.ok_or(ClientError::Disconnected)?;
        let response = Response::decode(opcode, &payload)?;
        match response {
            Response::Busy { shard, queued } => Err(ClientError::Busy { shard, queued }),
            Response::Error(err) => Err(ClientError::Remote(err)),
            other => Ok(other),
        }
    }

    /// Inserts a document. Duplicate ids fail with
    /// [`WireError::DuplicateDocument`] under [`ClientError::Remote`].
    ///
    /// # Errors
    /// See [`ClientError`].
    pub fn insert(&mut self, doc_id: u64, bytes: &[u8]) -> Result<(), ClientError> {
        match self.call(&Request::Insert {
            doc_id,
            bytes: bytes.to_vec(),
        })? {
            Response::Inserted => Ok(()),
            _ => Err(ClientError::Unexpected("insert answered non-Inserted")),
        }
    }

    /// Deletes a document, returning its bytes if it was alive.
    ///
    /// # Errors
    /// See [`ClientError`].
    pub fn delete(&mut self, doc_id: u64) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(&Request::Delete { doc_id })? {
            Response::Deleted { previous } => Ok(previous),
            _ => Err(ClientError::Unexpected("delete answered non-Deleted")),
        }
    }

    /// Counts occurrences of `pattern`.
    ///
    /// # Errors
    /// See [`ClientError`].
    pub fn count(&mut self, pattern: &[u8]) -> Result<u64, ClientError> {
        match self.call(&Request::Count {
            pattern: pattern.to_vec(),
        })? {
            Response::Count(n) => Ok(n),
            _ => Err(ClientError::Unexpected("count answered non-Count")),
        }
    }

    /// Locates every occurrence of `pattern` as sorted `(doc, offset)`
    /// pairs — byte-identical to the local
    /// [`ShardedStore::find`](dyndex_store::ShardedStore::find) merge.
    ///
    /// # Errors
    /// See [`ClientError`].
    pub fn find(&mut self, pattern: &[u8]) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call(&Request::Find {
            pattern: pattern.to_vec(),
        })? {
            Response::Occurrences(hits) => Ok(hits),
            _ => Err(ClientError::Unexpected("find answered non-Occurrences")),
        }
    }

    /// Locates at most `limit` occurrences of `pattern`.
    ///
    /// # Errors
    /// See [`ClientError`].
    pub fn find_limit(
        &mut self,
        pattern: &[u8],
        limit: u64,
    ) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.call(&Request::FindLimit {
            pattern: pattern.to_vec(),
            limit,
        })? {
            Response::Occurrences(hits) => Ok(hits),
            _ => Err(ClientError::Unexpected(
                "find_limit answered non-Occurrences",
            )),
        }
    }

    /// The server's whole-store census.
    ///
    /// # Errors
    /// See [`ClientError`].
    pub fn stats(&mut self) -> Result<RemoteStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::Unexpected("stats answered non-Stats")),
        }
    }

    /// The server's health verdict plus the rendered report.
    ///
    /// # Errors
    /// See [`ClientError`].
    pub fn health(&mut self) -> Result<(RemoteHealth, String), ClientError> {
        match self.call(&Request::Health)? {
            Response::Health { status, detail } => Ok((status, detail)),
            _ => Err(ClientError::Unexpected("health answered non-Health")),
        }
    }
}
