//! # dyndex-serve
//!
//! The network serving layer for dyndex sharded stores: a
//! zero-dependency `std::net` TCP server speaking a small
//! length-prefixed binary wire protocol, plus the matching blocking
//! [`Client`].
//!
//! The protocol ([`proto`]) reuses the `dyndex-persist` codec
//! discipline — little-endian primitives, versioned frames, CRC-32
//! payload checksums — so both the durable format and the wire format
//! share one set of encoders and one set of bogus-input defenses.
//! Malformed frames never panic the server: every failure is a typed
//! [`ProtoError`] locally and a typed [`WireError`] on the wire.
//!
//! The server ([`Server`]) multiplexes connections onto a bounded
//! acceptor/handler thread set. Handlers translate requests into the
//! store's normal operations — queries ride the resident per-shard
//! worker pool through the existing closure+reply-channel fan-out, so a
//! handler thread blocks only on reply channels, never on shard locks.
//! Backpressure is explicit: when a shard's worker queue reaches the
//! shed threshold the server answers [`Response::Busy`] instead of
//! queueing more work, counted by the `dyndex_serve_shed_total` metric.
//! Per-request metrics and flight-recorder root spans flow into the
//! store's `dyndex-obs` telemetry.
//!
//! ```
//! use dyndex_core::FmConfig;
//! use dyndex_serve::{Client, ServeOptions, Server};
//! use dyndex_store::StoreOptions;
//! use dyndex_text::FmIndexCompressed;
//!
//! // A store serving on an ephemeral local port.
//! let server: Server<FmIndexCompressed> = Server::create(
//!     FmConfig { sample_rate: 8 },
//!     StoreOptions::default(),
//!     ServeOptions::default(),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.insert(1, b"documents over the wire").unwrap();
//! client.insert(2, b"the wire protocol serves dynamic indexes").unwrap();
//! assert_eq!(client.count(b"wire").unwrap(), 2);
//!
//! // Remote answers are byte-identical to the local store's.
//! let remote = client.find(b"wire").unwrap();
//! let local: Vec<(u64, u64)> = server
//!     .find(b"wire")
//!     .into_iter()
//!     .map(|hit| (hit.doc, hit.offset as u64))
//!     .collect();
//! assert_eq!(remote, local);
//!
//! drop(server); // graceful shutdown: acceptor joined, connections cut
//! ```

pub mod proto;

mod client;
mod server;

pub use client::{Client, ClientError};
pub use proto::{ProtoError, RemoteHealth, RemoteStats, Request, Response, WireError};
pub use server::{ServeOptions, Server};
