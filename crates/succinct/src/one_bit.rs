//! The Lemma 2/3 structure: a bit vector supporting `zero(i)` and
//! `report(s, e)` (enumerate 1-bits in a range) in O(1) per reported bit.
//!
//! This is the structure `V` from Appendix A.1 of the paper. It is what lets
//! a *deletion-only* index skip over deleted suffixes in a suffix-array range
//! without paying dynamic-rank time per survivor (§2, "Supporting Document
//! Deletions").
//!
//! Implementation: the vector is split into 64-bit words; a hierarchical
//! bitmap directory marks which words are non-empty (and, recursively, which
//! directory words are non-empty), so the *next* 1-bit after any position is
//! found in O(levels) = O(log n / log w) word probes — effectively constant.
//! This replaces the Mortensen–Pagh–Pătraşcu range-reporting structure \[33\]
//! used by Lemma 2 (see DESIGN.md, substitutions): same role, laptop-scale
//! constant factors.

use crate::bits::{low_mask, WORD_BITS};
use crate::bitvec::BitVec;
use crate::space::SpaceUsage;

/// A bit vector with fast 1-bit range reporting under one-way updates
/// (bits may be cleared, and — for generality — re-set).
#[derive(Clone, Debug)]
pub struct OneBitReporter {
    words: Vec<u64>,
    /// `levels[l]` is a bitmap with one bit per word of the level below
    /// (level `-1` = `words`): bit `j` set iff that word is non-zero.
    levels: Vec<Vec<u64>>,
    len: usize,
    ones: usize,
}

impl OneBitReporter {
    /// Creates a reporter of `len` bits, all set to one.
    ///
    /// This is the §2 use-case: every suffix starts undeleted.
    pub fn new_all_ones(len: usize) -> Self {
        let bv = BitVec::from_elem(len, true);
        Self::from_bitvec(&bv)
    }

    /// Builds from an existing bit vector.
    pub fn from_bitvec(bv: &BitVec) -> Self {
        let words: Vec<u64> = bv.words().to_vec();
        let ones = bv.count_ones();
        let mut levels: Vec<Vec<u64>> = Vec::new();
        let mut below: &[u64] = &words;
        while below.len() > 1 {
            let mut level = vec![0u64; below.len().div_ceil(WORD_BITS)];
            for (j, &w) in below.iter().enumerate() {
                if w != 0 {
                    level[j / WORD_BITS] |= 1u64 << (j % WORD_BITS);
                }
            }
            levels.push(level);
            below = levels.last().expect("just pushed");
            // Safety valve: the loop divides by 64 every time.
            if levels.len() > 12 {
                break;
            }
        }
        OneBitReporter {
            words,
            levels,
            len: bv.len(),
            ones,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Copies the current bits into a plain [`BitVec`] (round-trips with
    /// [`OneBitReporter::from_bitvec`]; used by the persistence layer,
    /// which re-derives the directory on load).
    pub fn to_bitvec(&self) -> BitVec {
        BitVec::from_raw_parts(self.words.clone(), self.len)
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of cleared bits.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// The paper's `zero(i)`: clears bit `i`. O(log n / log w) worst case,
    /// O(1) unless directory words empty out.
    pub fn zero(&mut self, i: usize) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let w = i / WORD_BITS;
        let mask = 1u64 << (i % WORD_BITS);
        if self.words[w] & mask == 0 {
            return; // already zero
        }
        self.words[w] &= !mask;
        self.ones -= 1;
        if self.words[w] == 0 {
            let mut j = w;
            for level in &mut self.levels {
                let lw = j / WORD_BITS;
                level[lw] &= !(1u64 << (j % WORD_BITS));
                if level[lw] != 0 {
                    break;
                }
                j = lw;
            }
        }
    }

    /// Re-sets bit `i` (not needed by the paper's deletions, provided for
    /// generality and testing).
    pub fn set_one(&mut self, i: usize) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let w = i / WORD_BITS;
        let mask = 1u64 << (i % WORD_BITS);
        if self.words[w] & mask != 0 {
            return;
        }
        let was_empty = self.words[w] == 0;
        self.words[w] |= mask;
        self.ones += 1;
        if was_empty {
            let mut j = w;
            for level in &mut self.levels {
                let lw = j / WORD_BITS;
                let lmask = 1u64 << (j % WORD_BITS);
                if level[lw] & lmask != 0 {
                    break;
                }
                let level_word_was_empty = level[lw] == 0;
                level[lw] |= lmask;
                if !level_word_was_empty {
                    break;
                }
                j = lw;
            }
        }
    }

    /// Smallest position `>= from` holding a 1-bit, or `None`.
    pub fn next_one(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let w = from / WORD_BITS;
        let m = self.words[w] & !low_mask(from % WORD_BITS);
        if m != 0 {
            return Some(w * WORD_BITS + m.trailing_zeros() as usize);
        }
        // Climb the directory looking for the next non-empty word after `w`.
        let mut pos = w; // bit position at the current level's bitmap
        for (l, level) in self.levels.iter().enumerate() {
            let word = pos / WORD_BITS;
            let off = pos % WORD_BITS;
            let m = if off + 1 >= WORD_BITS {
                0
            } else {
                level.get(word).copied().unwrap_or(0) & !low_mask(off + 1)
            };
            if m != 0 {
                // Found: descend picking the first set bit at each level.
                let mut j = word * WORD_BITS + m.trailing_zeros() as usize;
                for ll in (0..l).rev() {
                    j = j * WORD_BITS + self.levels[ll][j].trailing_zeros() as usize;
                }
                let bit = self.words[j].trailing_zeros() as usize;
                let res = j * WORD_BITS + bit;
                return if res < self.len { Some(res) } else { None };
            }
            pos = word;
        }
        None
    }

    /// The paper's `report(s, e)`: iterates over all 1-bit positions in
    /// `[s, e]` (inclusive, matching the paper's statement) in increasing
    /// order, O(1)-ish per reported position.
    pub fn report(&self, s: usize, e: usize) -> Report<'_> {
        Report {
            v: self,
            next: s,
            end: e.min(self.len.saturating_sub(1)),
            done: self.len == 0 || s > e,
        }
    }

    /// Convenience: collects `report(s, e)` into a vector.
    pub fn report_vec(&self, s: usize, e: usize) -> Vec<usize> {
        self.report(s, e).collect()
    }

    /// True iff `[s, e]` contains no 1-bit.
    pub fn range_is_empty(&self, s: usize, e: usize) -> bool {
        match self.next_one(s) {
            Some(p) => p > e,
            None => true,
        }
    }
}

/// Iterator over reported 1-bits. See [`OneBitReporter::report`].
pub struct Report<'a> {
    v: &'a OneBitReporter,
    next: usize,
    end: usize,
    done: bool,
}

impl Iterator for Report<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.done {
            return None;
        }
        match self.v.next_one(self.next) {
            Some(p) if p <= self.end => {
                if p == self.end {
                    self.done = true;
                } else {
                    self.next = p + 1;
                }
                Some(p)
            }
            _ => {
                self.done = true;
                None
            }
        }
    }
}

impl SpaceUsage for OneBitReporter {
    fn heap_bytes(&self) -> usize {
        self.words.heap_bytes() + self.levels.iter().map(|l| l.heap_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ones_report() {
        let v = OneBitReporter::new_all_ones(200);
        assert_eq!(v.count_ones(), 200);
        assert_eq!(v.report_vec(10, 14), vec![10, 11, 12, 13, 14]);
        assert_eq!(v.report_vec(0, 0), vec![0]);
        assert_eq!(v.report_vec(199, 199), vec![199]);
    }

    #[test]
    fn zero_then_report() {
        let mut v = OneBitReporter::new_all_ones(1000);
        for i in (0..1000).step_by(3) {
            v.zero(i);
        }
        let got = v.report_vec(0, 999);
        let want: Vec<usize> = (0..1000).filter(|i| i % 3 != 0).collect();
        assert_eq!(got, want);
        assert_eq!(v.count_ones(), want.len());
    }

    #[test]
    fn sparse_survivors_skip_fast() {
        // Clear everything except a few positions; report must skip runs of
        // empty words via the directory.
        let mut v = OneBitReporter::new_all_ones(100_000);
        let survivors = [5usize, 40_000, 40_001, 99_999];
        for i in 0..100_000 {
            if !survivors.contains(&i) {
                v.zero(i);
            }
        }
        assert_eq!(v.report_vec(0, 99_999), survivors.to_vec());
        assert_eq!(v.report_vec(6, 39_999), Vec::<usize>::new());
        assert!(v.range_is_empty(6, 39_999));
        assert!(!v.range_is_empty(6, 40_000));
        assert_eq!(v.next_one(40_002), Some(99_999));
    }

    #[test]
    fn zero_idempotent_and_set_one() {
        let mut v = OneBitReporter::new_all_ones(128);
        v.zero(64);
        v.zero(64);
        assert_eq!(v.count_ones(), 127);
        v.set_one(64);
        assert_eq!(v.count_ones(), 128);
        v.set_one(64);
        assert_eq!(v.count_ones(), 128);
        assert!(v.get(64));
    }

    #[test]
    fn clear_entire_vector() {
        let mut v = OneBitReporter::new_all_ones(4096);
        for i in 0..4096 {
            v.zero(i);
        }
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.next_one(0), None);
        assert!(v.report_vec(0, 4095).is_empty());
        // Re-set one bit in the middle; the directory must recover.
        v.set_one(2000);
        assert_eq!(v.next_one(0), Some(2000));
        assert_eq!(v.report_vec(0, 4095), vec![2000]);
    }

    #[test]
    fn from_bitvec_matches() {
        let bv = BitVec::from_bits((0..777).map(|i| i % 11 == 4));
        let v = OneBitReporter::from_bitvec(&bv);
        let want: Vec<usize> = (0..777).filter(|i| i % 11 == 4).collect();
        assert_eq!(v.report_vec(0, 776), want);
    }

    #[test]
    fn empty_vector() {
        let v = OneBitReporter::new_all_ones(0);
        assert!(v.is_empty());
        assert_eq!(v.next_one(0), None);
        assert!(v.report_vec(0, 0).is_empty());
    }
}
