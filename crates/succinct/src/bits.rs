//! Word-level bit manipulation primitives.
//!
//! Everything here operates on `u64` machine words. These are the leaves of
//! every succinct structure in this crate: rank within a word is a masked
//! popcount, select within a word is [`select_in_word`].

/// Number of bits in a machine word.
pub const WORD_BITS: usize = 64;

/// Returns a mask with the low `n` bits set (`n <= 64`).
#[inline]
pub fn low_mask(n: usize) -> u64 {
    debug_assert!(n <= 64);
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Returns the position (0-based, from the LSB) of the `k`-th (0-based) set
/// bit of `word`.
///
/// # Panics
/// In debug builds, panics if `word` has fewer than `k + 1` set bits.
#[inline]
pub fn select_in_word(word: u64, k: u32) -> u32 {
    debug_assert!(
        word.count_ones() > k,
        "select_in_word: word has {} ones, asked for index {k}",
        word.count_ones()
    );
    let mut w = word;
    let mut k = k;
    let mut base = 0u32;
    // Narrow down byte by byte; branch-light and fast in practice without
    // requiring PDEP (portability per the perf-book "machine code" advice).
    loop {
        let cnt = (w & 0xFF).count_ones();
        if k < cnt {
            break;
        }
        k -= cnt;
        w >>= 8;
        base += 8;
        if base >= 64 {
            // Unreachable when the precondition holds; keep release builds
            // memory-safe anyway.
            return 63;
        }
    }
    let mut byte = w & 0xFF;
    let mut pos = base;
    loop {
        if byte & 1 == 1 {
            if k == 0 {
                return pos;
            }
            k -= 1;
        }
        byte >>= 1;
        pos += 1;
    }
}

/// Returns the position of the `k`-th (0-based) zero bit of `word`.
#[inline]
pub fn select0_in_word(word: u64, k: u32) -> u32 {
    select_in_word(!word, k)
}

/// Number of set bits strictly below bit `i` of `word` (`i <= 64`).
#[inline]
pub fn rank_in_word(word: u64, i: usize) -> u32 {
    (word & low_mask(i)).count_ones()
}

/// Ceiling of `log2(x)` for `x >= 1`; `ceil_log2(1) == 0`.
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    debug_assert!(x >= 1);
    64 - (x - 1).leading_zeros().min(64)
}

/// Number of bits needed to represent `x` (`bits_for(0) == 1`).
#[inline]
pub fn bits_for(x: u64) -> u32 {
    if x == 0 {
        1
    } else {
        64 - x.leading_zeros()
    }
}

/// Integer division rounding up.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_mask_edges() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(63), u64::MAX >> 1);
        assert_eq!(low_mask(64), u64::MAX);
    }

    #[test]
    fn select_in_word_matches_naive() {
        let words = [
            1u64,
            0b1010_1010,
            u64::MAX,
            0x8000_0000_0000_0001,
            0xFFFF_0000_FFFF_0000,
            0x0123_4567_89AB_CDEF,
        ];
        for &w in &words {
            let mut seen = 0u32;
            for bit in 0..64u32 {
                if (w >> bit) & 1 == 1 {
                    assert_eq!(select_in_word(w, seen), bit, "word {w:#x} k={seen}");
                    seen += 1;
                }
            }
        }
    }

    #[test]
    fn select0_in_word_matches_naive() {
        let w = 0xF0F0_F0F0_F0F0_F0F0u64;
        let mut seen = 0u32;
        for bit in 0..64u32 {
            if (w >> bit) & 1 == 0 {
                assert_eq!(select0_in_word(w, seen), bit);
                seen += 1;
            }
        }
    }

    #[test]
    fn rank_in_word_matches_naive() {
        let w = 0xDEAD_BEEF_0BAD_F00Du64;
        let mut expect = 0;
        for i in 0..=64 {
            assert_eq!(rank_in_word(w, i), expect);
            if i < 64 && (w >> i) & 1 == 1 {
                expect += 1;
            }
        }
    }

    #[test]
    fn ceil_log2_small() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 33), 33);
    }

    #[test]
    fn bits_for_small() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }
}
