//! Huffman coding and the Huffman-shaped wavelet tree.
//!
//! A wavelet tree whose shape follows the Huffman tree of the symbol
//! distribution stores a sequence in `n(H0 + 1) + o(·)` bits and answers
//! access/rank/select in O(code length) — the practical stand-in for the
//! `nHk + o(n log σ)` compressed-sequence machinery the paper's static
//! indexes (\[3\], \[7\], \[14\]) rely on (see DESIGN.md §2, substitutions).

use crate::bitvec::BitVec;
use crate::rank_select::RankSelect;
use crate::space::SpaceUsage;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A binary prefix-code tree node (internal or leaf).
#[derive(Clone, Debug)]
enum ShapeNode {
    Leaf { sym: u32 },
    Internal { left: usize, right: usize },
}

/// The code assigned to one symbol: `len` bits of `bits`, MSB-first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Code {
    /// Code bits, left-aligned at bit `len - 1` (i.e. read from the top).
    pub bits: u64,
    /// Code length in bits (0 for symbols absent from the input).
    pub len: u32,
}

/// Builds Huffman code lengths/bits for the given symbol frequencies.
///
/// Returns `(codes, shape)` where `shape` is the tree as an arena whose root
/// is the last element. Symbols with zero frequency get `Code::default()`.
fn build_tree(freqs: &[u64]) -> (Vec<Code>, Vec<ShapeNode>, usize) {
    let mut arena: Vec<ShapeNode> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            arena.push(ShapeNode::Leaf { sym: sym as u32 });
            heap.push(Reverse((f, arena.len() - 1)));
        }
    }
    assert!(
        !heap.is_empty(),
        "cannot build a Huffman tree with no symbols"
    );
    if heap.len() == 1 {
        // Single-symbol alphabet: degenerate one-leaf tree, code length 0.
        let Reverse((_, root)) = heap.pop().expect("nonempty");
        let mut codes = vec![Code::default(); freqs.len()];
        if let ShapeNode::Leaf { sym } = arena[root] {
            codes[sym as usize] = Code { bits: 0, len: 0 };
        }
        return (codes, arena, root);
    }
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().expect("len > 1");
        let Reverse((fb, b)) = heap.pop().expect("len > 1");
        arena.push(ShapeNode::Internal { left: a, right: b });
        heap.push(Reverse((fa + fb, arena.len() - 1)));
    }
    let Reverse((_, root)) = heap.pop().expect("exactly one");
    // Assign codes by DFS.
    let mut codes = vec![Code::default(); freqs.len()];
    let mut stack = vec![(root, 0u64, 0u32)];
    while let Some((node, bits, len)) = stack.pop() {
        match arena[node] {
            ShapeNode::Leaf { sym } => {
                assert!(len <= 64, "Huffman code longer than 64 bits");
                codes[sym as usize] = Code { bits, len };
            }
            ShapeNode::Internal { left, right } => {
                stack.push((left, bits << 1, len + 1));
                stack.push((right, (bits << 1) | 1, len + 1));
            }
        }
    }
    (codes, arena, root)
}

/// One node of the built wavelet tree.
#[derive(Clone, Debug)]
struct WtNode {
    bits: RankSelect,
    /// Child arena indices (`usize::MAX` = leaf side ends here).
    left: usize,
    right: usize,
}

const NO_CHILD: usize = usize::MAX;

/// A Huffman-shaped wavelet tree over `u32` symbols.
///
/// Space is `n(H0 + 1)` bits plus rank/select overhead; `access`, `rank`,
/// and `select` cost O(code length of the symbol) — O(1 + H0) on average.
#[derive(Clone, Debug)]
pub struct HuffmanWavelet {
    codes: Vec<Code>,
    /// Reverse map `(bits, len) -> symbol` for O(1) decode in `access`.
    decode_map: std::collections::HashMap<(u64, u32), u32>,
    nodes: Vec<WtNode>,
    root: usize,
    len: usize,
    /// For the degenerate single-symbol case.
    single: Option<u32>,
}

impl HuffmanWavelet {
    /// Builds over `seq` with symbols `< sigma`.
    pub fn new(seq: &[u32], sigma: u32) -> Self {
        assert!(sigma >= 1);
        let mut freqs = vec![0u64; sigma as usize];
        for &s in seq {
            freqs[s as usize] += 1;
        }
        if seq.is_empty() {
            return HuffmanWavelet {
                codes: vec![Code::default(); sigma as usize],
                decode_map: std::collections::HashMap::new(),
                nodes: Vec::new(),
                root: NO_CHILD,
                len: 0,
                single: None,
            };
        }
        let (codes, shape, shape_root) = build_tree(&freqs);
        if let ShapeNode::Leaf { sym } = shape[shape_root] {
            return HuffmanWavelet {
                codes,
                decode_map: std::collections::HashMap::new(),
                nodes: Vec::new(),
                root: NO_CHILD,
                len: seq.len(),
                single: Some(sym),
            };
        }
        // Build node bitvectors by recursive stable partition, iteratively
        // with an explicit work list to avoid recursion depth limits.
        let mut nodes: Vec<WtNode> = Vec::new();
        // map from shape index -> built node index
        let mut built = vec![NO_CHILD; shape.len()];
        // Work items: (shape node, symbols routed to it, depth). The depth
        // tells which code bit routes a symbol at this node.
        let mut work: Vec<(usize, Vec<u32>, u32)> = vec![(shape_root, seq.to_vec(), 0)];
        // We must construct parents before wiring children; do two passes:
        // first create all nodes top-down, then fix child links.
        while let Some((snode, symbols, depth)) = work.pop() {
            let (l, r) = match shape[snode] {
                ShapeNode::Internal { left, right } => (left, right),
                ShapeNode::Leaf { .. } => continue,
            };
            let mut bv = BitVec::with_capacity(symbols.len());
            let mut to_left: Vec<u32> = Vec::new();
            let mut to_right: Vec<u32> = Vec::new();
            for &s in &symbols {
                let code = codes[s as usize];
                let bit = (code.bits >> (code.len - 1 - depth)) & 1 == 1;
                bv.push(bit);
                if bit {
                    to_right.push(s);
                } else {
                    to_left.push(s);
                }
            }
            let idx = nodes.len();
            nodes.push(WtNode {
                bits: RankSelect::new(bv),
                left: NO_CHILD,
                right: NO_CHILD,
            });
            built[snode] = idx;
            if matches!(shape[l], ShapeNode::Internal { .. }) {
                work.push((l, to_left, depth + 1));
            }
            if matches!(shape[r], ShapeNode::Internal { .. }) {
                work.push((r, to_right, depth + 1));
            }
        }
        // Wire children.
        for (snode, &bidx) in built.iter().enumerate() {
            if bidx == NO_CHILD {
                continue;
            }
            if let ShapeNode::Internal { left, right } = shape[snode] {
                nodes[bidx].left = built[left];
                nodes[bidx].right = built[right];
            }
        }
        let decode_map = codes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.len > 0)
            .map(|(sym, c)| ((c.bits, c.len), sym as u32))
            .collect();
        HuffmanWavelet {
            codes,
            decode_map,
            nodes,
            root: built[shape_root],
            len: seq.len(),
            single: None,
        }
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The code table (exposed for space accounting / diagnostics).
    pub fn code(&self, sym: u32) -> Option<Code> {
        let c = *self.codes.get(sym as usize)?;
        if c.len == 0 && self.single != Some(sym) {
            None
        } else {
            Some(c)
        }
    }

    /// Symbol at position `i`.
    pub fn access(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        if let Some(s) = self.single {
            return s;
        }
        let mut node = self.root;
        let mut i = i;
        let mut bits = 0u64;
        let mut len = 0u32;
        loop {
            let n = &self.nodes[node];
            let bit = n.bits.get(i);
            bits = (bits << 1) | bit as u64;
            len += 1;
            let (child, ni) = if bit {
                (n.right, n.bits.rank1(i))
            } else {
                (n.left, n.bits.rank0(i))
            };
            if child == NO_CHILD {
                // Reached a leaf: decode by looking up the code.
                return self.decode(bits, len);
            }
            node = child;
            i = ni;
        }
    }

    fn decode(&self, bits: u64, len: u32) -> u32 {
        // Codes are prefix-free, so (bits, len) identifies the symbol.
        *self
            .decode_map
            .get(&(bits, len))
            .unwrap_or_else(|| unreachable!("prefix code not found for bits={bits:#b} len={len}"))
    }

    /// Number of occurrences of `sym` in `[0, i)`.
    pub fn rank(&self, sym: u32, i: usize) -> usize {
        assert!(i <= self.len);
        if sym as usize >= self.codes.len() {
            return 0;
        }
        if let Some(s) = self.single {
            return if s == sym { i } else { 0 };
        }
        let code = self.codes[sym as usize];
        if code.len == 0 {
            return 0; // symbol absent from the sequence
        }
        let mut node = self.root;
        let mut i = i;
        for d in 0..code.len {
            let n = &self.nodes[node];
            let bit = (code.bits >> (code.len - 1 - d)) & 1 == 1;
            let (child, ni) = if bit {
                (n.right, n.bits.rank1(i))
            } else {
                (n.left, n.bits.rank0(i))
            };
            i = ni;
            if child == NO_CHILD {
                debug_assert_eq!(d + 1, code.len);
                return i;
            }
            node = child;
        }
        i
    }

    /// Borrowed decomposition for the persistence encode path: the code
    /// table, per-node `(bits, left, right)` triples (`usize::MAX` = no
    /// child), the root index (`usize::MAX` when the tree is degenerate),
    /// and the single-symbol marker.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn persist_parts(
        &self,
    ) -> (
        &[Code],
        Vec<(&RankSelect, usize, usize)>,
        usize,
        Option<u32>,
    ) {
        let nodes = self
            .nodes
            .iter()
            .map(|n| (&n.bits, n.left, n.right))
            .collect();
        (&self.codes, nodes, self.root, self.single)
    }

    /// Reassembles from parts (persistence decode path); the decode map
    /// is re-derived from the code table rather than trusted.
    ///
    /// Returns `Err` (never panics) on structurally inconsistent input —
    /// the persistence layer surfaces this as a typed corruption error.
    #[doc(hidden)]
    pub fn from_persist_parts(
        codes: Vec<Code>,
        nodes: Vec<(RankSelect, usize, usize)>,
        root: usize,
        len: usize,
        single: Option<u32>,
    ) -> Result<Self, String> {
        let valid_child = |c: usize| c == NO_CHILD || c < nodes.len();
        if !nodes
            .iter()
            .all(|&(_, l, r)| valid_child(l) && valid_child(r))
        {
            return Err("huffman node child index out of range".into());
        }
        if root != NO_CHILD && root >= nodes.len() {
            return Err("huffman root index out of range".into());
        }
        if root == NO_CHILD && !nodes.is_empty() {
            return Err("huffman nodes present without a root".into());
        }
        if let Some(sym) = single {
            if sym as usize >= codes.len() {
                return Err("huffman single symbol out of range".into());
            }
            if root != NO_CHILD || !nodes.is_empty() {
                return Err("huffman single-symbol tree must have no nodes".into());
            }
        }
        // The sequence length must agree with the tree: every symbol of a
        // non-degenerate sequence passes through the root's bit vector.
        // An unchecked mismatch would panic on the first query instead of
        // failing decode.
        if root != NO_CHILD {
            if nodes[root].0.len() != len {
                return Err("huffman root bit vector length mismatch".into());
            }
        } else if single.is_none() && len != 0 {
            return Err("huffman non-empty sequence without a tree".into());
        }
        let decode_map = codes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.len > 0)
            .map(|(sym, c)| ((c.bits, c.len), sym as u32))
            .collect();
        let nodes = nodes
            .into_iter()
            .map(|(bits, left, right)| WtNode { bits, left, right })
            .collect();
        Ok(HuffmanWavelet {
            codes,
            decode_map,
            nodes,
            root,
            len,
            single,
        })
    }

    /// Position of the `k`-th occurrence of `sym`, or `None`.
    pub fn select(&self, sym: u32, k: usize) -> Option<usize> {
        if sym as usize >= self.codes.len() {
            return None;
        }
        if let Some(s) = self.single {
            return if s == sym && k < self.len {
                Some(k)
            } else {
                None
            };
        }
        let code = self.codes[sym as usize];
        if code.len == 0 || self.rank(sym, self.len) <= k {
            return None;
        }
        // Collect the root-to-leaf node path, then walk back up.
        let mut path = Vec::with_capacity(code.len as usize);
        let mut node = self.root;
        for d in 0..code.len {
            let bit = (code.bits >> (code.len - 1 - d)) & 1 == 1;
            path.push((node, bit));
            node = if bit {
                self.nodes[node].right
            } else {
                self.nodes[node].left
            };
            if node == NO_CHILD {
                break;
            }
        }
        let mut pos = k;
        for &(node, bit) in path.iter().rev() {
            let n = &self.nodes[node];
            pos = if bit {
                n.bits.select1(pos)?
            } else {
                n.bits.select0(pos)?
            };
        }
        Some(pos)
    }
}

impl SpaceUsage for HuffmanWavelet {
    fn heap_bytes(&self) -> usize {
        self.codes.heap_bytes()
            + self.decode_map.len() * (std::mem::size_of::<(u64, u32)>() + 4)
            + self
                .nodes
                .iter()
                .map(|n| n.bits.heap_bytes())
                .sum::<usize>()
            + self.nodes.capacity() * std::mem::size_of::<WtNode>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(seq: &[u32], sigma: u32) {
        let hw = HuffmanWavelet::new(seq, sigma);
        assert_eq!(hw.len(), seq.len());
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(hw.access(i), s, "access({i})");
        }
        for sym in 0..sigma {
            let mut cnt = 0usize;
            for i in 0..=seq.len() {
                assert_eq!(hw.rank(sym, i), cnt, "rank({sym},{i})");
                if i < seq.len() && seq[i] == sym {
                    cnt += 1;
                }
            }
            let positions: Vec<usize> = (0..seq.len()).filter(|&i| seq[i] == sym).collect();
            for (kk, &p) in positions.iter().enumerate() {
                assert_eq!(hw.select(sym, kk), Some(p), "select({sym},{kk})");
            }
            assert_eq!(hw.select(sym, positions.len()), None);
        }
    }

    #[test]
    fn empty_and_single() {
        check(&[], 4);
        check(&[2, 2, 2, 2], 4);
        check(&[0], 1);
    }

    #[test]
    fn two_symbols() {
        let seq: Vec<u32> = (0..200).map(|i| (i % 2) as u32).collect();
        check(&seq, 2);
    }

    #[test]
    fn skewed() {
        // Highly skewed: symbol 0 dominates; its code should be short.
        let mut seq = vec![0u32; 1000];
        for i in 0..10 {
            seq[i * 100] = 1 + (i % 3) as u32;
        }
        check(&seq, 4);
        let hw = HuffmanWavelet::new(&seq, 4);
        let c0 = hw.code(0).expect("present");
        let c1 = hw.code(1).expect("present");
        assert!(c0.len < c1.len, "frequent symbol must get shorter code");
    }

    #[test]
    fn pseudorandom_alphabet_17() {
        let seq: Vec<u32> = (0..1500u64)
            .map(|i| ((i.wrapping_mul(0x2545F4914F6CDD1D) >> 35) % 17) as u32)
            .collect();
        check(&seq, 17);
    }

    #[test]
    fn absent_symbols() {
        let seq = vec![5u32, 9, 5, 9, 5];
        let hw = HuffmanWavelet::new(&seq, 16);
        assert_eq!(hw.rank(0, 5), 0);
        assert_eq!(hw.select(0, 0), None);
        assert_eq!(hw.rank(5, 5), 3);
        assert_eq!(hw.code(0), None);
    }
}
