//! Elias–Fano encoding of monotone integer sequences.
//!
//! Stores `n` non-decreasing values from a universe `[0, u)` in
//! `n·(2 + ⌈log₂(u/n)⌉)` bits with O(1) random access (`get`) and
//! near-O(1) `rank`/`predecessor`. We use it as a *sparse bit vector*:
//! document boundaries in a concatenated collection and marked
//! suffix-array sample positions are both sparse monotone sets.

use crate::bits::bits_for;
use crate::bitvec::BitVec;
use crate::int_vec::IntVec;
use crate::rank_select::RankSelect;
use crate::space::SpaceUsage;

/// A compressed monotone sequence with access / rank / predecessor.
#[derive(Clone, Debug)]
pub struct EliasFano {
    /// Upper bits, unary-coded: value `v` sets bit `(v >> low_width) + i`.
    high: RankSelect,
    /// Lower `low_width` bits of each value.
    low: IntVec,
    low_width: usize,
    len: usize,
    universe: u64,
}

impl EliasFano {
    /// Builds from a non-decreasing slice of values `< universe`.
    ///
    /// # Panics
    /// Panics if the input is not sorted or exceeds the universe.
    pub fn new(values: &[u64], universe: u64) -> Self {
        let n = values.len();
        let low_width = if n == 0 {
            1
        } else {
            let per = universe / n as u64;
            bits_for(per.saturating_sub(1)).max(1) as usize
        };
        let mut low = IntVec::with_capacity(low_width, n);
        let n_high_buckets = if n == 0 {
            1
        } else {
            (universe >> low_width) as usize + 1
        };
        let mut high = BitVec::from_elem(n + n_high_buckets, false);
        let mut prev = 0u64;
        for (i, &v) in values.iter().enumerate() {
            assert!(v >= prev, "EliasFano input not sorted at index {i}");
            assert!(v < universe, "value {v} >= universe {universe}");
            prev = v;
            low.push(v & crate::bits::low_mask(low_width));
            high.set((v >> low_width) as usize + i, true);
        }
        EliasFano {
            high: RankSelect::new(high),
            low,
            low_width,
            len: n,
            universe,
        }
    }

    /// Number of stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The universe bound the values were drawn from.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Returns the `i`-th value.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let high_pos = self
            .high
            .select1(i)
            .expect("EliasFano directory inconsistent");
        (((high_pos - i) as u64) << self.low_width) | self.low.get(i)
    }

    /// Number of stored values strictly less than `x`.
    pub fn rank(&self, x: u64) -> usize {
        if self.len == 0 {
            return 0;
        }
        if x >= self.universe {
            return self.len;
        }
        let bucket = (x >> self.low_width) as usize;
        // Values in bucket b occupy high-bit positions
        // [select0(b-1)+1 .. select0(b)) — i.e. indices [lo, hi).
        let lo = if bucket == 0 {
            0
        } else {
            match self.high.select0(bucket - 1) {
                Some(p) => p + 1 - bucket,
                None => return self.len,
            }
        };
        let hi = match self.high.select0(bucket) {
            Some(p) => p - bucket,
            None => self.len,
        };
        let xlow = x & crate::bits::low_mask(self.low_width);
        // Binary search within the bucket on the low bits.
        let mut a = lo;
        let mut b = hi;
        while a < b {
            let mid = (a + b) / 2;
            if self.low.get(mid) < xlow {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        a
    }

    /// Largest stored value `<= x`, with its index, or `None`.
    pub fn predecessor(&self, x: u64) -> Option<(usize, u64)> {
        let r = self.rank(x.saturating_add(1).min(self.universe));
        // rank(x+1) = number of values <= x (when x+1 <= universe).
        let r = if x.saturating_add(1) > self.universe {
            self.len
        } else {
            r
        };
        if r == 0 {
            None
        } else {
            Some((r - 1, self.get(r - 1)))
        }
    }

    /// Whether `x` is one of the stored values.
    pub fn contains(&self, x: u64) -> bool {
        match self.predecessor(x) {
            Some((_, v)) => v == x,
            None => false,
        }
    }

    /// Iterates over all values in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Borrowed decomposition `(high, low, low_width)` for the
    /// persistence encode path.
    #[doc(hidden)]
    pub fn persist_parts(&self) -> (&RankSelect, &IntVec, usize) {
        (&self.high, &self.low, self.low_width)
    }

    /// Reassembles from parts (persistence decode path; the caller is
    /// responsible for consistency of untrusted input — `high` must hold
    /// exactly `len` ones and `low` exactly `len` values of `low_width`
    /// bits).
    #[doc(hidden)]
    pub fn from_persist_parts(
        high: RankSelect,
        low: IntVec,
        low_width: usize,
        universe: u64,
    ) -> Self {
        let len = high.count_ones();
        assert_eq!(low.len(), len, "low/high length mismatch");
        assert_eq!(low.width(), low_width, "low width mismatch");
        EliasFano {
            high,
            low,
            low_width,
            len,
            universe,
        }
    }
}

impl SpaceUsage for EliasFano {
    fn heap_bytes(&self) -> usize {
        self.high.heap_bytes() + self.low.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(values: &[u64], universe: u64) {
        let ef = EliasFano::new(values, universe);
        assert_eq!(ef.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "get({i})");
        }
        // rank at every boundary-ish point
        for x in 0..universe.min(2000) {
            let want = values.iter().filter(|&&v| v < x).count();
            assert_eq!(ef.rank(x), want, "rank({x})");
            let pred = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| v <= x)
                .map(|(i, &v)| (i, v))
                .next_back();
            // predecessor returns the last index among duplicates
            let got = ef.predecessor(x);
            assert_eq!(got.map(|p| p.1), pred.map(|p| p.1), "pred({x})");
        }
    }

    #[test]
    fn empty() {
        let ef = EliasFano::new(&[], 100);
        assert!(ef.is_empty());
        assert_eq!(ef.rank(50), 0);
        assert_eq!(ef.predecessor(50), None);
        assert!(!ef.contains(3));
    }

    #[test]
    fn dense_and_sparse() {
        check(&[0, 1, 2, 3, 4], 5);
        check(&[10, 20, 30, 1000], 1001);
        check(&[0, 0, 0, 5, 5, 900], 901);
        let sparse: Vec<u64> = (0..50).map(|i| i * 37 + 3).collect();
        check(&sparse, 2000);
    }

    #[test]
    fn contains_and_bounds() {
        let ef = EliasFano::new(&[3, 7, 7, 100], 128);
        assert!(ef.contains(3));
        assert!(ef.contains(7));
        assert!(ef.contains(100));
        assert!(!ef.contains(4));
        assert!(!ef.contains(127));
        assert_eq!(ef.rank(1000), 4);
        assert_eq!(ef.predecessor(2), None);
        assert_eq!(ef.predecessor(127), Some((3, 100)));
    }

    #[test]
    fn large_universe() {
        let values: Vec<u64> = (0..1000).map(|i| i * 1_000_003).collect();
        let ef = EliasFano::new(&values, 1_000_003_000);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v);
            assert!(ef.contains(v));
            assert!(!ef.contains(v + 1));
        }
        assert_eq!(ef.rank(500 * 1_000_003), 500);
    }
}
