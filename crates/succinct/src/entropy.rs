//! Empirical entropy estimators.
//!
//! The paper states its space bounds in terms of the k-th order empirical
//! entropy `Hk` (footnote 1, §1). The benchmark harness uses these
//! estimators to report measured bits/symbol next to `nH0` / `nHk`.

use std::collections::HashMap;

/// Zero-order empirical entropy (bits/symbol) of a sequence described by
/// its symbol frequency counts.
pub fn h0_from_counts(counts: &[u64]) -> f64 {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Zero-order empirical entropy (bits/symbol) of `seq`.
pub fn h0<S: Copy + Eq + std::hash::Hash>(seq: &[S]) -> f64 {
    let mut counts: HashMap<S, u64> = HashMap::new();
    for &s in seq {
        *counts.entry(s).or_insert(0) += 1;
    }
    let v: Vec<u64> = counts.into_values().collect();
    h0_from_counts(&v)
}

/// k-th order empirical entropy (bits/symbol) of a byte string.
///
/// `Hk = (1/n) Σ_{contexts w ∈ Σ^k} |T_w| · H0(T_w)` where `T_w` is the
/// sequence of symbols following occurrences of context `w`.
pub fn hk(text: &[u8], k: usize) -> f64 {
    if text.len() <= k {
        return 0.0;
    }
    if k == 0 {
        return h0(text);
    }
    let mut ctx: HashMap<&[u8], HashMap<u8, u64>> = HashMap::new();
    for i in k..text.len() {
        *ctx.entry(&text[i - k..i])
            .or_default()
            .entry(text[i])
            .or_insert(0) += 1;
    }
    let mut total_bits = 0.0;
    for counts in ctx.values() {
        let v: Vec<u64> = counts.values().copied().collect();
        let m: u64 = v.iter().sum();
        total_bits += m as f64 * h0_from_counts(&v);
    }
    total_bits / text.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h0_uniform() {
        // 4 equiprobable symbols -> 2 bits
        let seq: Vec<u8> = (0..400).map(|i| (i % 4) as u8).collect();
        assert!((h0(&seq) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn h0_degenerate() {
        let seq = vec![7u8; 100];
        assert_eq!(h0(&seq), 0.0);
        let empty: Vec<u8> = vec![];
        assert_eq!(h0(&empty), 0.0);
    }

    #[test]
    fn hk_le_h0() {
        // Hk is non-increasing in k for structured text.
        let text: Vec<u8> = b"abcabcabcabcabcabcabcabcabcabc".to_vec();
        let h0v = hk(&text, 0);
        let h1v = hk(&text, 1);
        let h2v = hk(&text, 2);
        assert!(h1v <= h0v + 1e-9);
        assert!(h2v <= h1v + 1e-9);
        // fully periodic text is deterministic given 1 symbol of context
        assert!(h1v < 1e-9);
    }

    #[test]
    fn hk_random_near_log_sigma() {
        // A de-correlated sequence should have H1 close to H0. Use a full
        // splitmix64 finalizer: a bare multiply leaves adjacent outputs
        // correlated enough to visibly depress H1.
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let text: Vec<u8> = (0..10_000u64).map(|i| (mix(i) % 16) as u8).collect();
        let h0v = hk(&text, 0);
        let h1v = hk(&text, 1);
        assert!(h0v > 3.9, "h0 = {h0v}");
        assert!(h1v > 3.0, "h1 = {h1v}");
    }
}
