//! Dynamic wavelet tree: a sequence of symbols under positional
//! insert/delete with rank/select/access.
//!
//! Every operation costs O(log σ) dynamic-bitvector operations, each of
//! which is logarithmic — this is the Fredman–Saks-bounded machinery that
//! *all previous* compressed dynamic indexes were built on (§1 of the
//! paper), and which our baseline dynamic FM-index uses. The paper's whole
//! point is to avoid putting this structure on the query path.

use crate::bits::bits_for;
use crate::dyn_bitvec::DynBitVec;
use crate::space::SpaceUsage;

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    bits: DynBitVec,
    left: u32,
    right: u32,
}

/// A dynamic sequence of `u32` symbols from a fixed alphabet `[0, σ)`.
#[derive(Clone, Debug)]
pub struct DynWavelet {
    nodes: Vec<Node>,
    sigma: u32,
    width: u32,
    len: usize,
}

impl DynWavelet {
    /// Creates an empty sequence over alphabet `[0, sigma)`.
    pub fn new(sigma: u32) -> Self {
        assert!(sigma >= 1);
        let width = if sigma <= 1 {
            1
        } else {
            bits_for(sigma as u64 - 1)
        };
        DynWavelet {
            nodes: vec![Node {
                bits: DynBitVec::new(),
                left: NIL,
                right: NIL,
            }],
            sigma,
            width,
            len: 0,
        }
    }

    /// Builds from a slice.
    pub fn from_slice(seq: &[u32], sigma: u32) -> Self {
        let mut w = Self::new(sigma);
        for (i, &s) in seq.iter().enumerate() {
            w.insert(i, s);
        }
        w
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Alphabet bound.
    #[inline]
    pub fn sigma(&self) -> u32 {
        self.sigma
    }

    fn child(&mut self, node: u32, right: bool) -> u32 {
        let existing = if right {
            self.nodes[node as usize].right
        } else {
            self.nodes[node as usize].left
        };
        if existing != NIL {
            return existing;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            bits: DynBitVec::new(),
            left: NIL,
            right: NIL,
        });
        if right {
            self.nodes[node as usize].right = idx;
        } else {
            self.nodes[node as usize].left = idx;
        }
        idx
    }

    /// Inserts `sym` at position `i <= len`.
    pub fn insert(&mut self, i: usize, sym: u32) {
        assert!(i <= self.len, "insert index {i} out of range {}", self.len);
        assert!(
            sym < self.sigma,
            "symbol {sym} out of alphabet {}",
            self.sigma
        );
        let mut node = 0u32;
        let mut pos = i;
        for level in (0..self.width).rev() {
            let bit = (sym >> level) & 1 == 1;
            self.nodes[node as usize].bits.insert(pos, bit);
            let next_pos = if bit {
                self.nodes[node as usize].bits.rank1(pos)
            } else {
                self.nodes[node as usize].bits.rank0(pos)
            };
            if level == 0 {
                break;
            }
            node = self.child(node, bit);
            pos = next_pos;
        }
        self.len += 1;
    }

    /// Removes and returns the symbol at position `i < len`.
    pub fn remove(&mut self, i: usize) -> u32 {
        assert!(i < self.len, "remove index {i} out of range {}", self.len);
        let mut node = 0u32;
        let mut pos = i;
        let mut sym = 0u32;
        for level in (0..self.width).rev() {
            let bit = self.nodes[node as usize].bits.remove(pos);
            sym = (sym << 1) | bit as u32;
            if level == 0 {
                break;
            }
            let next_pos = if bit {
                self.nodes[node as usize].bits.rank1(pos)
            } else {
                self.nodes[node as usize].bits.rank0(pos)
            };
            node = if bit {
                self.nodes[node as usize].right
            } else {
                self.nodes[node as usize].left
            };
            debug_assert_ne!(node, NIL, "remove walked into a missing child");
            pos = next_pos;
        }
        self.len -= 1;
        sym
    }

    /// Symbol at position `i`.
    pub fn access(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let mut node = 0u32;
        let mut pos = i;
        let mut sym = 0u32;
        for level in (0..self.width).rev() {
            let n = &self.nodes[node as usize];
            let bit = n.bits.get(pos);
            sym = (sym << 1) | bit as u32;
            if level == 0 {
                break;
            }
            pos = if bit {
                n.bits.rank1(pos)
            } else {
                n.bits.rank0(pos)
            };
            node = if bit { n.right } else { n.left };
        }
        sym
    }

    /// Occurrences of `sym` in `[0, i)`.
    pub fn rank(&self, sym: u32, i: usize) -> usize {
        assert!(i <= self.len, "rank index {i} out of range {}", self.len);
        if sym >= self.sigma {
            return 0;
        }
        let mut node = 0u32;
        let mut pos = i;
        for level in (0..self.width).rev() {
            let n = &self.nodes[node as usize];
            let bit = (sym >> level) & 1 == 1;
            pos = if bit {
                n.bits.rank1(pos)
            } else {
                n.bits.rank0(pos)
            };
            if level == 0 {
                break;
            }
            node = if bit { n.right } else { n.left };
            if node == NIL {
                return 0;
            }
        }
        pos
    }

    /// Position of the `k`-th occurrence of `sym`, or `None`.
    pub fn select(&self, sym: u32, k: usize) -> Option<usize> {
        if sym >= self.sigma || self.rank(sym, self.len) <= k {
            return None;
        }
        // Walk down recording the node path, then walk back up with select.
        let mut path: Vec<(u32, bool)> = Vec::with_capacity(self.width as usize);
        let mut node = 0u32;
        for level in (0..self.width).rev() {
            let bit = (sym >> level) & 1 == 1;
            path.push((node, bit));
            if level == 0 {
                break;
            }
            node = if bit {
                self.nodes[node as usize].right
            } else {
                self.nodes[node as usize].left
            };
        }
        let mut pos = k;
        for &(node, bit) in path.iter().rev() {
            let n = &self.nodes[node as usize];
            pos = if bit {
                n.bits.select1(pos)?
            } else {
                n.bits.select0(pos)?
            };
        }
        Some(pos)
    }

    /// Occurrences of every symbol `< sym` in `[0, i)`.
    pub fn rank_lt(&self, sym: u32, i: usize) -> usize {
        assert!(i <= self.len);
        if sym == 0 {
            return 0;
        }
        if sym >= self.sigma {
            return i;
        }
        let mut node = 0u32;
        let mut pos = i;
        let mut acc = 0usize;
        for level in (0..self.width).rev() {
            let n = &self.nodes[node as usize];
            let bit = (sym >> level) & 1 == 1;
            if bit {
                acc += n.bits.rank0(pos);
                pos = n.bits.rank1(pos);
                if level == 0 {
                    break;
                }
                node = n.right;
            } else {
                pos = n.bits.rank0(pos);
                if level == 0 {
                    break;
                }
                node = n.left;
            }
            if node == NIL {
                break;
            }
        }
        acc
    }
}

impl SpaceUsage for DynWavelet {
    fn heap_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.bits.heap_bytes())
            .sum::<usize>()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn random_ops_match_model() {
        let sigma = 11u32;
        let mut rng = 0xDEADBEEF12345678u64;
        let mut model: Vec<u32> = Vec::new();
        let mut w = DynWavelet::new(sigma);
        for step in 0..4000 {
            let r = xorshift(&mut rng);
            if r % 10 < 6 || model.is_empty() {
                let pos = (r >> 8) as usize % (model.len() + 1);
                let sym = ((r >> 40) % sigma as u64) as u32;
                model.insert(pos, sym);
                w.insert(pos, sym);
            } else {
                let pos = (r >> 8) as usize % model.len();
                let want = model.remove(pos);
                assert_eq!(w.remove(pos), want, "remove at step {step}");
            }
            assert_eq!(w.len(), model.len());
            if step % 119 == 0 {
                let i = (r >> 20) as usize % (model.len() + 1);
                for sym in 0..sigma {
                    let want = model[..i].iter().filter(|&&s| s == sym).count();
                    assert_eq!(w.rank(sym, i), want, "rank({sym},{i}) step {step}");
                }
                let lt = ((r >> 33) % (sigma as u64 + 1)) as u32;
                let want = model[..i].iter().filter(|&&s| s < lt).count();
                assert_eq!(w.rank_lt(lt, i), want, "rank_lt step {step}");
            }
        }
        for (i, &s) in model.iter().enumerate() {
            assert_eq!(w.access(i), s, "access({i})");
        }
        for sym in 0..sigma {
            let positions: Vec<usize> = (0..model.len()).filter(|&i| model[i] == sym).collect();
            for (k, &p) in positions.iter().enumerate().step_by(3) {
                assert_eq!(w.select(sym, k), Some(p), "select({sym},{k})");
            }
            assert_eq!(w.select(sym, positions.len()), None);
        }
    }

    #[test]
    fn sigma_one() {
        let mut w = DynWavelet::new(1);
        for i in 0..100 {
            w.insert(i, 0);
        }
        assert_eq!(w.rank(0, 100), 100);
        assert_eq!(w.access(50), 0);
        assert_eq!(w.select(0, 99), Some(99));
        assert_eq!(w.remove(0), 0);
        assert_eq!(w.len(), 99);
    }

    #[test]
    fn append_only_text() {
        let text: Vec<u32> = (0..2000u64)
            .map(|i| ((i.wrapping_mul(0x9E3779B97F4A7C15) >> 45) % 200) as u32)
            .collect();
        let w = DynWavelet::from_slice(&text, 200);
        for (i, &s) in text.iter().enumerate().step_by(31) {
            assert_eq!(w.access(i), s);
        }
        for sym in (0..200).step_by(17) {
            let want = text.iter().filter(|&&s| s == sym).count();
            assert_eq!(w.rank(sym, text.len()), want);
        }
    }
}
