//! Space accounting.
//!
//! Every structure in this repository implements [`SpaceUsage`] so the
//! benchmark harness can report measured bits/symbol next to the paper's
//! entropy bounds (see `EXPERIMENTS.md`).

/// Reports the number of heap bytes owned by a value (excluding the
/// shallow size of the value itself, which lives wherever its owner put it).
pub trait SpaceUsage {
    /// Heap bytes owned (recursively) by `self`.
    fn heap_bytes(&self) -> usize;

    /// Convenience: total bits including the shallow struct size.
    fn total_bits(&self) -> usize
    where
        Self: Sized,
    {
        (self.heap_bytes() + std::mem::size_of::<Self>()) * 8
    }
}

impl<T: Copy> SpaceUsage for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl<T: Copy> SpaceUsage for Box<[T]> {
    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl SpaceUsage for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<T: SpaceUsage> SpaceUsage for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, |v| v.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_heap_bytes() {
        let v: Vec<u64> = Vec::with_capacity(10);
        assert_eq!(v.heap_bytes(), 80);
        let s = String::from("hello");
        assert!(s.heap_bytes() >= 5);
    }
}
