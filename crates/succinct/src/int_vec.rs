//! Fixed-width packed integer vector.
//!
//! Stores `len` integers of `width` bits each, bit-packed into `u64` words.
//! Used for suffix-array samples, Elias–Fano low bits, and wavelet-tree
//! leaves, where `width << 64` keeps space near the information-theoretic
//! minimum.

use crate::bits::{div_ceil, low_mask, WORD_BITS};
use crate::space::SpaceUsage;

/// A vector of `width`-bit unsigned integers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntVec {
    data: Vec<u64>,
    width: usize,
    len: usize,
}

impl IntVec {
    /// Creates an empty vector of `width`-bit integers (`1 <= width <= 64`).
    pub fn new(width: usize) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        IntVec {
            data: Vec::new(),
            width,
            len: 0,
        }
    }

    /// Creates an empty vector with room for `cap` values.
    pub fn with_capacity(width: usize, cap: usize) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        IntVec {
            data: Vec::with_capacity(div_ceil(cap * width, WORD_BITS)),
            width,
            len: 0,
        }
    }

    /// Builds from a slice, choosing the minimal width for its maximum.
    pub fn from_slice_min_width(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        let width = crate::bits::bits_for(max) as usize;
        let mut v = IntVec::with_capacity(width, values.len());
        for &x in values {
            v.push(x);
        }
        v
    }

    /// Bits per element.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `value` (must fit in `width` bits).
    pub fn push(&mut self, value: u64) {
        debug_assert!(
            self.width == 64 || value <= low_mask(self.width),
            "value {value} does not fit in {} bits",
            self.width
        );
        let bit = self.len * self.width;
        let word = bit / WORD_BITS;
        let off = bit % WORD_BITS;
        if word >= self.data.len() {
            self.data.push(0);
        }
        self.data[word] |= value << off;
        let spill = off + self.width;
        if spill > WORD_BITS {
            self.data.push(value >> (WORD_BITS - off));
        }
        self.len += 1;
    }

    /// Returns element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let bit = i * self.width;
        let word = bit / WORD_BITS;
        let off = bit % WORD_BITS;
        let mut v = self.data[word] >> off;
        if off + self.width > WORD_BITS {
            v |= self.data[word + 1] << (WORD_BITS - off);
        }
        if self.width < 64 {
            v &= low_mask(self.width);
        }
        v
    }

    /// Overwrites element `i` with `value`.
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        debug_assert!(self.width == 64 || value <= low_mask(self.width));
        let bit = i * self.width;
        let word = bit / WORD_BITS;
        let off = bit % WORD_BITS;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            low_mask(self.width)
        };
        self.data[word] &= !(mask << off);
        self.data[word] |= value << off;
        if off + self.width > WORD_BITS {
            let high_bits = off + self.width - WORD_BITS;
            self.data[word + 1] &= !low_mask(high_bits);
            self.data[word + 1] |= value >> (WORD_BITS - off);
        }
    }

    /// Iterates over all values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The raw packed words (persistence encode path); bits beyond
    /// `len * width` are guaranteed zero.
    #[doc(hidden)]
    pub fn raw_words(&self) -> &[u64] {
        &self.data
    }

    /// Rebuilds from packed words (persistence decode path; validate
    /// untrusted input first — see [`IntVec::raw_words`] invariants).
    ///
    /// # Panics
    /// Panics if `width`, the word count, or tail bits are inconsistent.
    #[doc(hidden)]
    pub fn from_raw_parts(data: Vec<u64>, width: usize, len: usize) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        let bits = len * width;
        assert_eq!(data.len(), div_ceil(bits, WORD_BITS), "word count mismatch");
        if !bits.is_multiple_of(WORD_BITS) {
            if let Some(&last) = data.last() {
                assert_eq!(last & !low_mask(bits % WORD_BITS), 0, "tail bits not zero");
            }
        }
        IntVec { data, width, len }
    }
}

impl SpaceUsage for IntVec {
    fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_widths() {
        for width in [1, 3, 7, 8, 13, 31, 32, 33, 63, 64] {
            let mask = low_mask(width);
            let mut v = IntVec::new(width);
            let values: Vec<u64> = (0..500u64)
                .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15)) & mask)
                .collect();
            for &x in &values {
                v.push(x);
            }
            assert_eq!(v.len(), 500);
            for (i, &x) in values.iter().enumerate() {
                assert_eq!(v.get(i), x, "width {width} index {i}");
            }
        }
    }

    #[test]
    fn set_overwrites() {
        let mut v = IntVec::new(13);
        for i in 0..100 {
            v.push(i);
        }
        v.set(0, 8191);
        v.set(50, 4095);
        v.set(99, 1);
        assert_eq!(v.get(0), 8191);
        assert_eq!(v.get(50), 4095);
        assert_eq!(v.get(99), 1);
        assert_eq!(v.get(1), 1);
        assert_eq!(v.get(49), 49);
        assert_eq!(v.get(51), 51);
    }

    #[test]
    fn min_width_builder() {
        let v = IntVec::from_slice_min_width(&[0, 5, 255]);
        assert_eq!(v.width(), 8);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 5, 255]);
        let v = IntVec::from_slice_min_width(&[]);
        assert_eq!(v.width(), 1);
        assert!(v.is_empty());
    }
}
