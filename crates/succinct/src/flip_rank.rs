//! Rank over a fixed-length bit vector whose bits can be flipped in place.
//!
//! This is the stand-in for the Navarro–Sadakane dynamic structure \[37\] the
//! paper uses in Theorem 1 (counting): we never insert or delete *positions*
//! (the suffix array of a static sub-index has fixed length), we only flip
//! bits from 1 to 0 as documents are deleted, and we must count 1s in an
//! arbitrary range `B[a..b]`. A Fenwick tree over 512-bit blocks gives
//! O(log n) `rank` and `flip` — the same role as \[37\]'s
//! O(log n / log log n), with constants that win at laptop scale.

use crate::bits::{rank_in_word, WORD_BITS};
use crate::space::SpaceUsage;

const BLOCK_WORDS: usize = 8;
const BLOCK_BITS: usize = BLOCK_WORDS * WORD_BITS;

/// A Fenwick (binary indexed) tree over `u64` counts.
#[derive(Clone, Debug, Default)]
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// Builds from per-slot values in O(n).
    pub fn from_slice(values: &[u64]) -> Self {
        let mut tree = vec![0u64; values.len() + 1];
        for (i, &v) in values.iter().enumerate() {
            tree[i + 1] = tree[i + 1].wrapping_add(v);
            let j = (i + 1) + ((i + 1) & (i + 1).wrapping_neg());
            if j < tree.len() {
                let t = tree[i + 1];
                tree[j] = tree[j].wrapping_add(t);
            }
        }
        Fenwick { tree }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len().saturating_sub(1)
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` (possibly negative) to slot `i`.
    pub fn add(&mut self, i: usize, delta: i64) {
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] = self.tree[j].wrapping_add(delta as u64);
            j += j & j.wrapping_neg();
        }
    }

    /// Sum of slots `[0, i)`.
    pub fn prefix(&self, i: usize) -> u64 {
        let mut j = i.min(self.len());
        let mut s = 0u64;
        while j > 0 {
            s = s.wrapping_add(self.tree[j]);
            j &= j - 1;
        }
        s
    }

    /// Finds the largest `i` with `prefix(i) <= target`, returning
    /// `(i, prefix(i))`. Requires all slot values to be non-negative.
    pub fn search(&self, target: u64) -> (usize, u64) {
        let mut pos = 0usize;
        let mut acc = 0u64;
        let mut step = self.tree.len().next_power_of_two() / 2;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && acc.wrapping_add(self.tree[next]) <= target {
                acc = acc.wrapping_add(self.tree[next]);
                pos = next;
            }
            step /= 2;
        }
        (pos, acc)
    }
}

impl SpaceUsage for Fenwick {
    fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes()
    }
}

/// Fixed-length bit vector with O(log n) rank and in-place bit flips.
#[derive(Clone, Debug)]
pub struct FlipRank {
    words: Vec<u64>,
    len: usize,
    ones: usize,
    /// Fenwick over per-block popcounts.
    blocks: Fenwick,
}

impl FlipRank {
    /// Creates `len` bits all set to `bit`.
    pub fn new(len: usize, bit: bool) -> Self {
        let bv = crate::bitvec::BitVec::from_elem(len, bit);
        Self::from_words(bv.words().to_vec(), len)
    }

    /// Builds from a word slice of `len` logical bits.
    fn from_words(words: Vec<u64>, len: usize) -> Self {
        let ones: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        let counts: Vec<u64> = words
            .chunks(BLOCK_WORDS)
            .map(|c| c.iter().map(|w| w.count_ones() as u64).sum())
            .collect();
        FlipRank {
            words,
            len,
            ones,
            blocks: Fenwick::from_slice(&counts),
        }
    }

    /// Builds from a [`crate::bitvec::BitVec`].
    pub fn from_bitvec(bv: &crate::bitvec::BitVec) -> Self {
        Self::from_words(bv.words().to_vec(), bv.len())
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total ones.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `bit`, updating rank metadata.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let w = i / WORD_BITS;
        let mask = 1u64 << (i % WORD_BITS);
        let old = self.words[w] & mask != 0;
        if old == bit {
            return;
        }
        if bit {
            self.words[w] |= mask;
            self.ones += 1;
            self.blocks.add(i / BLOCK_BITS, 1);
        } else {
            self.words[w] &= !mask;
            self.ones -= 1;
            self.blocks.add(i / BLOCK_BITS, -1);
        }
    }

    /// Number of ones strictly before position `i` (`i <= len`).
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank index {i} out of range {}", self.len);
        let block = i / BLOCK_BITS;
        let mut r = self.blocks.prefix(block) as usize;
        let first_word = block * BLOCK_WORDS;
        let last_word = i / WORD_BITS;
        for &w in &self.words[first_word..last_word.min(self.words.len())] {
            r += w.count_ones() as usize;
        }
        if last_word < self.words.len() {
            r += rank_in_word(self.words[last_word], i % WORD_BITS) as usize;
        }
        r
    }

    /// Number of zeros strictly before `i`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Ones in `[a, b)`.
    pub fn count_ones_range(&self, a: usize, b: usize) -> usize {
        assert!(a <= b, "bad range {a}..{b}");
        self.rank1(b) - self.rank1(a)
    }
}

impl SpaceUsage for FlipRank {
    fn heap_bytes(&self) -> usize {
        self.words.heap_bytes() + self.blocks.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_basics() {
        let mut f = Fenwick::from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(3), 6);
        assert_eq!(f.prefix(5), 15);
        f.add(2, -3);
        assert_eq!(f.prefix(3), 3);
        f.add(0, 10);
        assert_eq!(f.prefix(1), 11);
        assert_eq!(f.prefix(5), 22);
    }

    #[test]
    fn fenwick_search() {
        let f = Fenwick::from_slice(&[5, 0, 3, 2]);
        // prefixes: 0,5,5,8,10
        assert_eq!(f.search(0), (0, 0));
        assert_eq!(f.search(4), (0, 0));
        assert_eq!(f.search(5), (2, 5)); // largest i with prefix <= 5
        assert_eq!(f.search(7), (2, 5));
        assert_eq!(f.search(8), (3, 8));
        assert_eq!(f.search(100), (4, 10));
    }

    #[test]
    fn rank_after_flips() {
        let mut fr = FlipRank::new(3000, true);
        assert_eq!(fr.rank1(3000), 3000);
        for i in (0..3000).step_by(7) {
            fr.set(i, false);
        }
        let naive = |i: usize| (0..i).filter(|j| j % 7 != 0).count();
        for i in [0, 1, 6, 7, 8, 511, 512, 513, 1499, 2999, 3000] {
            assert_eq!(fr.rank1(i), naive(i), "rank1({i})");
        }
        assert_eq!(fr.count_ones(), naive(3000));
        // flip some back
        fr.set(0, true);
        fr.set(7, true);
        assert_eq!(fr.rank1(8), naive(8) + 2);
    }

    #[test]
    fn count_range() {
        let mut fr = FlipRank::new(1024, false);
        for i in [3usize, 100, 101, 600, 1023] {
            fr.set(i, true);
        }
        assert_eq!(fr.count_ones_range(0, 1024), 5);
        assert_eq!(fr.count_ones_range(100, 102), 2);
        assert_eq!(fr.count_ones_range(102, 600), 0);
        assert_eq!(fr.count_ones_range(1023, 1024), 1);
    }

    #[test]
    fn set_idempotent() {
        let mut fr = FlipRank::new(100, false);
        fr.set(5, true);
        fr.set(5, true);
        assert_eq!(fr.count_ones(), 1);
        fr.set(5, false);
        fr.set(5, false);
        assert_eq!(fr.count_ones(), 0);
    }
}
