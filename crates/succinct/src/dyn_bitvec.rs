//! A dynamic bit vector: insert/delete/rank/select/access at any position.
//!
//! This is the substrate of the *baseline* dynamic FM-index (the prior-art
//! approach the paper's Table 2 compares against): dynamic rank/select
//! sequences pay a logarithmic price on every operation — exactly the
//! Fredman–Saks bottleneck the paper's framework avoids.
//!
//! Implementation: a flat vector of small blocks (each ≤ `MAX_BLOCK_BITS`
//! bits) plus Fenwick trees over per-block bit- and one-counts. Point
//! updates to counts are O(log #blocks); block splits/merges trigger an
//! amortized O(#blocks) Fenwick rebuild (once per ~thousand updates).

use crate::bits::{low_mask, rank_in_word, select0_in_word, select_in_word, WORD_BITS};
use crate::flip_rank::Fenwick;
use crate::space::SpaceUsage;

/// Split threshold (bits per block).
const MAX_BLOCK_BITS: usize = 2048;
/// Merge threshold.
const MIN_BLOCK_BITS: usize = MAX_BLOCK_BITS / 4;

#[derive(Clone, Debug, Default)]
struct Block {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Block {
    fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let last = i / WORD_BITS;
        let mut r = 0usize;
        for &w in &self.words[..last.min(self.words.len())] {
            r += w.count_ones() as usize;
        }
        if last < self.words.len() {
            r += rank_in_word(self.words[last], i % WORD_BITS) as usize;
        }
        r
    }

    fn select1(&self, k: usize) -> usize {
        debug_assert!(k < self.ones);
        let mut k = k;
        for (wi, &w) in self.words.iter().enumerate() {
            let c = w.count_ones() as usize;
            if k < c {
                return wi * WORD_BITS + select_in_word(w, k as u32) as usize;
            }
            k -= c;
        }
        unreachable!("select1 out of range in block");
    }

    fn select0(&self, k: usize) -> usize {
        debug_assert!(k < self.len - self.ones);
        let mut k = k;
        for (wi, &w) in self.words.iter().enumerate() {
            let valid = (self.len - wi * WORD_BITS).min(WORD_BITS);
            let zeros = valid - rank_in_word(w, valid) as usize;
            if k < zeros {
                return wi * WORD_BITS + select0_in_word(w, k as u32) as usize;
            }
            k -= zeros;
        }
        unreachable!("select0 out of range in block");
    }

    /// Inserts `bit` at position `i`, shifting the tail right by one.
    fn insert(&mut self, i: usize, bit: bool) {
        debug_assert!(i <= self.len);
        let w = i / WORD_BITS;
        let off = i % WORD_BITS;
        if self.len.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        // Shift whole words after w right by 1 bit, propagating carries.
        let mut carry = if w < self.words.len() {
            let word = self.words[w];
            let keep = word & low_mask(off);
            let moved = word & !low_mask(off);
            self.words[w] = keep | (moved << 1) | ((bit as u64) << off);
            (word >> 63) & 1
        } else {
            bit as u64
        };
        for word in self.words.iter_mut().skip(w + 1) {
            let new_carry = (*word >> 63) & 1;
            *word = (*word << 1) | carry;
            carry = new_carry;
        }
        self.len += 1;
        self.ones += bit as usize;
        // Clear any bit shifted past the logical end (stays within capacity
        // because we pushed a fresh word when needed).
        let tail_word = self.len / WORD_BITS;
        let tail_off = self.len % WORD_BITS;
        if tail_off != 0 && tail_word < self.words.len() {
            self.words[tail_word] &= low_mask(tail_off);
        }
    }

    /// Removes and returns the bit at `i`, shifting the tail left by one.
    fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = i / WORD_BITS;
        let off = i % WORD_BITS;
        let bit = self.get(i);
        let word = self.words[w];
        let keep = word & low_mask(off);
        let moved = (word >> 1) & !low_mask(off);
        self.words[w] = keep | moved;
        // Borrow the lowest bit of each following word.
        for wi in (w + 1)..self.words.len() {
            let lo = self.words[wi] & 1;
            self.words[w + (wi - w) - 1] |= lo << 63;
            self.words[wi] >>= 1;
        }
        self.len -= 1;
        self.ones -= bit as usize;
        if self.words.len() * WORD_BITS >= self.len + WORD_BITS {
            self.words.pop();
        }
        bit
    }

    /// Splits off the second half into a new block.
    fn split(&mut self) -> Block {
        let half = self.len / 2;
        let mut right = Block::default();
        // Move bits [half, len) into `right`. Bit-level copy is fine here:
        // splits are amortized rare.
        for i in half..self.len {
            let b = self.get(i);
            if right.len % WORD_BITS == 0 {
                right.words.push(0);
            }
            if b {
                right.words[right.len / WORD_BITS] |= 1u64 << (right.len % WORD_BITS);
                right.ones += 1;
            }
            right.len += 1;
        }
        self.len = half;
        self.ones -= right.ones;
        self.words.truncate(half.div_ceil(WORD_BITS).max(1));
        if !half.is_multiple_of(WORD_BITS) {
            let lw = half / WORD_BITS;
            self.words[lw] &= low_mask(half % WORD_BITS);
        } else {
            self.words.truncate(half / WORD_BITS);
        }
        right
    }

    /// Appends all bits of `other`.
    fn append(&mut self, other: &Block) {
        for i in 0..other.len {
            let b = other.get(i);
            if self.len.is_multiple_of(WORD_BITS) {
                self.words.push(0);
            }
            if b {
                self.words[self.len / WORD_BITS] |= 1u64 << (self.len % WORD_BITS);
                self.ones += 1;
            }
            self.len += 1;
        }
    }
}

/// A dynamic bit vector with logarithmic-time positional updates.
#[derive(Clone, Debug)]
pub struct DynBitVec {
    blocks: Vec<Block>,
    /// Fenwick over per-block bit counts.
    fen_bits: Fenwick,
    /// Fenwick over per-block one counts.
    fen_ones: Fenwick,
    len: usize,
    ones: usize,
}

impl Default for DynBitVec {
    fn default() -> Self {
        Self::new()
    }
}

impl DynBitVec {
    /// Creates an empty dynamic bit vector.
    pub fn new() -> Self {
        DynBitVec {
            blocks: vec![Block::default()],
            fen_bits: Fenwick::from_slice(&[0]),
            fen_ones: Fenwick::from_slice(&[0]),
            len: 0,
            ones: 0,
        }
    }

    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut v = Self::new();
        for b in bits {
            v.push(b);
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total ones.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    fn rebuild_fenwicks(&mut self) {
        let bits: Vec<u64> = self.blocks.iter().map(|b| b.len as u64).collect();
        let ones: Vec<u64> = self.blocks.iter().map(|b| b.ones as u64).collect();
        self.fen_bits = Fenwick::from_slice(&bits);
        self.fen_ones = Fenwick::from_slice(&ones);
    }

    /// Locates `(block index, offset within block)` for bit position `i`.
    /// For `i == len`, returns the last block with offset = its length.
    fn locate(&self, i: usize) -> (usize, usize) {
        debug_assert!(i <= self.len);
        if i == self.len {
            let last = self.blocks.len() - 1;
            return (last, self.blocks[last].len);
        }
        // `search` returns the largest block index whose prefix is <= i;
        // because i < len, that block is non-empty and contains position i.
        let (block, acc) = self.fen_bits.search(i as u64);
        let off = i - acc as usize;
        debug_assert!(block < self.blocks.len() && off < self.blocks[block].len);
        (block, off)
    }

    /// Bit at position `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let (b, off) = self.locate(i);
        self.blocks[b].get(off)
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        let i = self.len;
        self.insert(i, bit);
    }

    /// Inserts `bit` at position `i <= len`.
    pub fn insert(&mut self, i: usize, bit: bool) {
        assert!(i <= self.len, "insert index {i} out of range {}", self.len);
        let (b, off) = self.locate(i);
        self.blocks[b].insert(off, bit);
        self.len += 1;
        self.ones += bit as usize;
        self.fen_bits.add(b, 1);
        if bit {
            self.fen_ones.add(b, 1);
        }
        if self.blocks[b].len > MAX_BLOCK_BITS {
            let right = self.blocks[b].split();
            self.blocks.insert(b + 1, right);
            self.rebuild_fenwicks();
        }
    }

    /// Removes and returns the bit at position `i < len`.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "remove index {i} out of range {}", self.len);
        let (b, off) = self.locate(i);
        let bit = self.blocks[b].remove(off);
        self.len -= 1;
        self.ones -= bit as usize;
        self.fen_bits.add(b, -1);
        if bit {
            self.fen_ones.add(b, -1);
        }
        if self.blocks.len() > 1 && self.blocks[b].len < MIN_BLOCK_BITS {
            // Merge with a neighbour (then split if oversized).
            let (a, c) = if b + 1 < self.blocks.len() {
                (b, b + 1)
            } else {
                (b - 1, b)
            };
            let right = self.blocks.remove(c);
            self.blocks[a].append(&right);
            if self.blocks[a].len > MAX_BLOCK_BITS {
                let r = self.blocks[a].split();
                self.blocks.insert(a + 1, r);
            }
            self.rebuild_fenwicks();
        }
        bit
    }

    /// Sets bit `i` in place.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let (b, off) = self.locate(i);
        let old = self.blocks[b].get(off);
        if old == bit {
            return;
        }
        let blk = &mut self.blocks[b];
        let mask = 1u64 << (off % WORD_BITS);
        if bit {
            blk.words[off / WORD_BITS] |= mask;
            blk.ones += 1;
            self.ones += 1;
            self.fen_ones.add(b, 1);
        } else {
            blk.words[off / WORD_BITS] &= !mask;
            blk.ones -= 1;
            self.ones -= 1;
            self.fen_ones.add(b, -1);
        }
    }

    /// Ones strictly before position `i` (`i <= len`).
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank index {i} out of range {}", self.len);
        if i == self.len {
            return self.ones;
        }
        let (b, off) = self.locate(i);
        self.fen_ones.prefix(b) as usize + self.blocks[b].rank1(off)
    }

    /// Zeros strictly before position `i`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `k`-th one, or `None`.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        // Largest block whose ones-prefix is <= k contains the k-th one.
        let (b, acc) = self.fen_ones.search(k as u64);
        let rem = k - acc as usize;
        debug_assert!(b < self.blocks.len() && rem < self.blocks[b].ones);
        Some(self.fen_bits.prefix(b) as usize + self.blocks[b].select1(rem))
    }

    /// Position of the `k`-th zero, or `None`.
    pub fn select0(&self, k: usize) -> Option<usize> {
        if k >= self.len - self.ones {
            return None;
        }
        // Fenwick over zeros = bits - ones; do a manual descent.
        let mut rem = k;
        let mut b = 0usize;
        loop {
            let z = self.blocks[b].len - self.blocks[b].ones;
            if rem < z {
                return Some(self.fen_bits.prefix(b) as usize + self.blocks[b].select0(rem));
            }
            rem -= z;
            b += 1;
        }
    }

    /// Iterates over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.blocks
            .iter()
            .flat_map(|b| (0..b.len).map(move |i| b.get(i)))
    }
}

impl SpaceUsage for DynBitVec {
    fn heap_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.words.heap_bytes())
            .sum::<usize>()
            + self.blocks.capacity() * std::mem::size_of::<Block>()
            + self.fen_bits.heap_bytes()
            + self.fen_ones.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model.
    struct Model(Vec<bool>);

    impl Model {
        fn rank1(&self, i: usize) -> usize {
            self.0[..i].iter().filter(|&&b| b).count()
        }
        fn select1(&self, k: usize) -> Option<usize> {
            self.0
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .nth(k)
                .map(|(i, _)| i)
        }
        fn select0(&self, k: usize) -> Option<usize> {
            self.0
                .iter()
                .enumerate()
                .filter(|(_, &b)| !b)
                .nth(k)
                .map(|(i, _)| i)
        }
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn random_ops_match_model() {
        let mut rng = 0x1234_5678_9ABC_DEFFu64;
        let mut model = Model(Vec::new());
        let mut dv = DynBitVec::new();
        for step in 0..6000 {
            let r = xorshift(&mut rng);
            let op = r % 100;
            if op < 55 || model.0.is_empty() {
                let pos = (r >> 8) as usize % (model.0.len() + 1);
                let bit = (r >> 60) & 1 == 1;
                model.0.insert(pos, bit);
                dv.insert(pos, bit);
            } else if op < 80 {
                let pos = (r >> 8) as usize % model.0.len();
                let want = model.0.remove(pos);
                assert_eq!(dv.remove(pos), want, "remove at step {step}");
            } else {
                let pos = (r >> 8) as usize % model.0.len();
                let bit = (r >> 60) & 1 == 1;
                model.0[pos] = bit;
                dv.set(pos, bit);
            }
            assert_eq!(dv.len(), model.0.len());
            if step % 97 == 0 {
                for i in (0..=model.0.len()).step_by(37.max(model.0.len() / 11 + 1)) {
                    assert_eq!(dv.rank1(i), model.rank1(i), "rank1({i}) step {step}");
                }
                let probe = (r >> 20) as usize % (model.0.len() + 1);
                assert_eq!(dv.select1(probe), model.select1(probe));
                assert_eq!(dv.select0(probe), model.select0(probe));
            }
        }
        // Full verification at the end.
        for (i, &b) in model.0.iter().enumerate() {
            assert_eq!(dv.get(i), b, "get({i})");
        }
        assert_eq!(dv.iter().collect::<Vec<_>>(), model.0);
    }

    #[test]
    fn push_many_then_query() {
        let mut dv = DynBitVec::new();
        let n = 10_000;
        for i in 0..n {
            dv.push(i % 3 == 1);
        }
        assert_eq!(dv.len(), n);
        assert_eq!(dv.count_ones(), n / 3 + usize::from(n % 3 == 2));
        for i in (0..=n).step_by(509) {
            assert_eq!(dv.rank1(i), (i + 1) / 3, "rank1({i})");
        }
        for k in (0..dv.count_ones()).step_by(401) {
            assert_eq!(dv.select1(k), Some(3 * k + 1));
        }
    }

    #[test]
    fn drain_to_empty() {
        let mut dv = DynBitVec::from_bits((0..5000).map(|i| i % 2 == 0));
        for _ in 0..5000 {
            dv.remove(0);
        }
        assert!(dv.is_empty());
        assert_eq!(dv.count_ones(), 0);
        dv.push(true);
        assert_eq!(dv.rank1(1), 1);
    }

    #[test]
    fn insert_at_front_repeatedly() {
        let mut dv = DynBitVec::new();
        for i in 0..3000 {
            dv.insert(0, i % 5 == 0);
        }
        let want: Vec<bool> = (0..3000).rev().map(|i| i % 5 == 0).collect();
        assert_eq!(dv.iter().collect::<Vec<_>>(), want);
    }
}
