//! A common interface for static symbol sequences with rank/select/access.
//!
//! The FM-index (and the binary-relation string `S` of §5) is generic over
//! this trait so the same code runs on a plain [`crate::WaveletMatrix`]
//! (`n log σ` bits, Table 3 regime) or a [`crate::HuffmanWavelet`]
//! (`n(H0+1)` bits, Tables 1–2 regime).

use crate::huffman::HuffmanWavelet;
use crate::space::SpaceUsage;
use crate::wavelet::WaveletMatrix;

/// A static sequence of `u32` symbols supporting access/rank/select.
pub trait Sequence: SpaceUsage + Clone {
    /// Builds from a slice with symbols `< sigma`.
    fn build(seq: &[u32], sigma: u32) -> Self;

    /// Sequence length.
    fn len(&self) -> usize;

    /// Whether empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Symbol at position `i`.
    fn access(&self, i: usize) -> u32;

    /// Occurrences of `sym` in `[0, i)`.
    fn rank(&self, sym: u32, i: usize) -> usize;

    /// Position of the `k`-th occurrence of `sym`.
    fn select(&self, sym: u32, k: usize) -> Option<usize>;
}

impl Sequence for WaveletMatrix {
    fn build(seq: &[u32], sigma: u32) -> Self {
        WaveletMatrix::new(seq, sigma)
    }
    fn len(&self) -> usize {
        WaveletMatrix::len(self)
    }
    fn access(&self, i: usize) -> u32 {
        WaveletMatrix::access(self, i)
    }
    fn rank(&self, sym: u32, i: usize) -> usize {
        WaveletMatrix::rank(self, sym, i)
    }
    fn select(&self, sym: u32, k: usize) -> Option<usize> {
        WaveletMatrix::select(self, sym, k)
    }
}

impl Sequence for HuffmanWavelet {
    fn build(seq: &[u32], sigma: u32) -> Self {
        HuffmanWavelet::new(seq, sigma)
    }
    fn len(&self) -> usize {
        HuffmanWavelet::len(self)
    }
    fn access(&self, i: usize) -> u32 {
        HuffmanWavelet::access(self, i)
    }
    fn rank(&self, sym: u32, i: usize) -> usize {
        HuffmanWavelet::rank(self, sym, i)
    }
    fn select(&self, sym: u32, k: usize) -> Option<usize> {
        HuffmanWavelet::select(self, sym, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: Sequence>() {
        let seq: Vec<u32> = (0..400).map(|i| (i * 13 % 7) as u32).collect();
        let s = S::build(&seq, 7);
        assert_eq!(Sequence::len(&s), 400);
        assert_eq!(s.access(13), seq[13]);
        assert_eq!(s.rank(3, 400), seq.iter().filter(|&&x| x == 3).count());
        let first3 = (0..400).find(|&i| seq[i] == 3);
        assert_eq!(s.select(3, 0), first3);
    }

    #[test]
    fn both_impls_agree() {
        exercise::<WaveletMatrix>();
        exercise::<HuffmanWavelet>();
    }
}
