//! # dyndex-succinct
//!
//! Succinct and dynamic bit/sequence data structures — the substrate layer
//! of the `dyndex` reproduction of *Munro, Nekrich, Vitter: Dynamic Data
//! Structures for Document Collections and Graphs* (PODS 2015).
//!
//! ## Contents
//!
//! * [`bitvec::BitVec`] — plain growable bit vector.
//! * [`rank_select::RankSelect`] — static O(1) rank / near-O(1) select.
//! * [`elias_fano::EliasFano`] — compressed monotone sequences (sparse sets).
//! * [`int_vec::IntVec`] — fixed-width packed integers.
//! * [`wavelet::WaveletMatrix`] — static sequence rank/select/access.
//! * [`huffman::HuffmanWavelet`] — zero-order entropy-compressed sequences.
//! * [`one_bit::OneBitReporter`] — the paper's Lemma 2/3 structure `V`:
//!   `zero(i)` + `report(s,e)` in O(1) per reported bit.
//! * [`flip_rank::FlipRank`] — rank under bit flips (Theorem 1 counting).
//! * [`dyn_bitvec::DynBitVec`] / [`dyn_wavelet::DynWavelet`] — fully dynamic
//!   bit vectors and sequences (the prior-art baseline's machinery).
//! * [`entropy`] — empirical entropy estimators (`H0`, `Hk`).
//! * [`space::SpaceUsage`] — uniform heap-space accounting.

pub mod bits;
pub mod bitvec;
pub mod dyn_bitvec;
pub mod dyn_wavelet;
pub mod elias_fano;
pub mod entropy;
pub mod flip_rank;
pub mod huffman;
pub mod int_vec;
pub mod one_bit;
pub mod rank_select;
pub mod sequence;
pub mod space;
pub mod wavelet;

pub use bitvec::BitVec;
pub use dyn_bitvec::DynBitVec;
pub use dyn_wavelet::DynWavelet;
pub use elias_fano::EliasFano;
pub use flip_rank::{Fenwick, FlipRank};
pub use huffman::HuffmanWavelet;
pub use int_vec::IntVec;
pub use one_bit::OneBitReporter;
pub use rank_select::RankSelect;
pub use sequence::Sequence;
pub use space::SpaceUsage;
pub use wavelet::WaveletMatrix;
