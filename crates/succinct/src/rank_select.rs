//! Static rank/select over an immutable bit vector.
//!
//! Layout: cumulative popcounts per 512-bit superblock (8 words) give
//! constant-time `rank`. `select` uses positions sampled every
//! `SELECT_SAMPLE` ones (resp. zeros) to bound the scan, then finishes
//! with word popcounts and [`crate::bits::select_in_word`]. This is the
//! o(n)-overhead workhorse behind every static structure in the repository.

use crate::bits::{rank_in_word, select0_in_word, select_in_word, WORD_BITS};
use crate::bitvec::BitVec;
use crate::space::SpaceUsage;

/// Words per rank superblock.
const SB_WORDS: usize = 8;
/// Bits per rank superblock.
const SB_BITS: usize = SB_WORDS * WORD_BITS;
/// One select sample is stored every this many ones/zeros.
const SELECT_SAMPLE: usize = 512;

/// An immutable bit vector with O(1) `rank` and near-O(1) `select`.
#[derive(Clone, Debug)]
pub struct RankSelect {
    bits: BitVec,
    /// `sb_rank[i]` = number of ones before superblock `i`; one extra entry
    /// holds the total.
    sb_rank: Vec<u64>,
    /// Superblock index containing the `(k * SELECT_SAMPLE)`-th one.
    select1_samples: Vec<u32>,
    /// Superblock index containing the `(k * SELECT_SAMPLE)`-th zero.
    select0_samples: Vec<u32>,
    ones: usize,
}

impl RankSelect {
    /// Builds the rank/select directory over `bits` in O(n / 64) word steps.
    pub fn new(bits: BitVec) -> Self {
        let n_sb = bits.words().len().div_ceil(SB_WORDS);
        let mut sb_rank = Vec::with_capacity(n_sb + 1);
        let mut select1_samples = Vec::new();
        let mut select0_samples = Vec::new();
        let mut ones: usize = 0;
        sb_rank.push(0);
        for (sb, chunk) in bits.words().chunks(SB_WORDS).enumerate() {
            let sb_ones: usize = chunk.iter().map(|w| w.count_ones() as usize).sum();
            let sb_start_bit = sb * SB_BITS;
            // Zeros count against the logical length, not word padding.
            let sb_len = (bits.len() - sb_start_bit).min(SB_BITS);
            let zeros_before = sb_start_bit - ones;
            let sb_zeros = sb_len - sb_ones;
            while select1_samples.len() * SELECT_SAMPLE < ones + sb_ones {
                select1_samples.push(sb as u32);
            }
            while select0_samples.len() * SELECT_SAMPLE < zeros_before + sb_zeros {
                select0_samples.push(sb as u32);
            }
            ones += sb_ones;
            sb_rank.push(ones as u64);
        }
        RankSelect {
            bits,
            sb_rank,
            select1_samples,
            select0_samples,
            ones,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Total number of ones.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of zeros.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len() - self.ones
    }

    /// Bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// The underlying bit vector.
    #[inline]
    pub fn bit_vec(&self) -> &BitVec {
        &self.bits
    }

    /// Number of ones strictly before position `i` (`i <= len`).
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(
            i <= self.len(),
            "rank1 index {i} out of range {}",
            self.len()
        );
        let sb = i / SB_BITS;
        let mut r = self.sb_rank[sb] as usize;
        let words = self.bits.words();
        let last_word = i / WORD_BITS;
        for &w in &words[sb * SB_WORDS..last_word.min(words.len())] {
            r += w.count_ones() as usize;
        }
        if last_word < words.len() {
            r += rank_in_word(words[last_word], i % WORD_BITS) as usize;
        }
        r
    }

    /// Number of zeros strictly before position `i`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `k`-th one (0-based). Returns `None` if `k >= ones`.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        let mut sb = self.select1_samples[k / SELECT_SAMPLE] as usize;
        while self.sb_rank[sb + 1] as usize <= k {
            sb += 1;
        }
        let mut remaining = k - self.sb_rank[sb] as usize;
        let words = self.bits.words();
        let start = sb * SB_WORDS;
        let end = (start + SB_WORDS).min(words.len());
        for (wi, &w) in words[start..end].iter().enumerate() {
            let cnt = w.count_ones() as usize;
            if remaining < cnt {
                return Some(
                    (start + wi) * WORD_BITS + select_in_word(w, remaining as u32) as usize,
                );
            }
            remaining -= cnt;
        }
        unreachable!("select1: directory inconsistent");
    }

    /// Position of the `k`-th zero (0-based). Returns `None` if `k >= zeros`.
    pub fn select0(&self, k: usize) -> Option<usize> {
        if k >= self.count_zeros() {
            return None;
        }
        let mut sb = self.select0_samples[k / SELECT_SAMPLE] as usize;
        // Zeros strictly before the end of superblock `sb`:
        let zeros_end =
            |sb: usize| ((sb + 1) * SB_BITS).min(self.len()) - self.sb_rank[sb + 1] as usize;
        while zeros_end(sb) <= k {
            sb += 1;
        }
        let zeros_before_sb = sb * SB_BITS - self.sb_rank[sb] as usize;
        let mut remaining = k - zeros_before_sb;
        let words = self.bits.words();
        let start = sb * SB_WORDS;
        let end = (start + SB_WORDS).min(words.len());
        for (off, &w) in words[start..end].iter().enumerate() {
            let word_start = (start + off) * WORD_BITS;
            let valid = (self.len() - word_start).min(WORD_BITS);
            let zeros = valid - rank_in_word(w, valid) as usize;
            if remaining < zeros {
                return Some(word_start + select0_in_word(w, remaining as u32) as usize);
            }
            remaining -= zeros;
        }
        unreachable!("select0: directory inconsistent");
    }
}

impl SpaceUsage for RankSelect {
    fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes()
            + self.sb_rank.heap_bytes()
            + self.select1_samples.heap_bytes()
            + self.select0_samples.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(bits: &[bool]) {
        let rs = RankSelect::new(BitVec::from_bits(bits.iter().copied()));
        let mut ones = 0usize;
        for i in 0..=bits.len() {
            assert_eq!(rs.rank1(i), ones, "rank1({i})");
            assert_eq!(rs.rank0(i), i - ones, "rank0({i})");
            if i < bits.len() && bits[i] {
                ones += 1;
            }
        }
        let one_pos: Vec<usize> = (0..bits.len()).filter(|&i| bits[i]).collect();
        let zero_pos: Vec<usize> = (0..bits.len()).filter(|&i| !bits[i]).collect();
        for (k, &p) in one_pos.iter().enumerate() {
            assert_eq!(rs.select1(k), Some(p), "select1({k})");
        }
        for (k, &p) in zero_pos.iter().enumerate() {
            assert_eq!(rs.select0(k), Some(p), "select0({k})");
        }
        assert_eq!(rs.select1(one_pos.len()), None);
        assert_eq!(rs.select0(zero_pos.len()), None);
    }

    #[test]
    fn small_patterns() {
        check_all(&[]);
        check_all(&[true]);
        check_all(&[false]);
        check_all(&[true, false, true, true, false]);
    }

    #[test]
    fn periodic_large() {
        let bits: Vec<bool> = (0..5000).map(|i| i % 5 == 2).collect();
        check_all(&bits);
    }

    #[test]
    fn all_ones_all_zeros() {
        check_all(&vec![true; 1111]);
        check_all(&vec![false; 1111]);
    }

    #[test]
    fn word_boundaries() {
        for n in [63, 64, 65, 511, 512, 513, 1024] {
            let bits: Vec<bool> = (0..n).map(|i| (i * 2654435761usize) % 7 < 3).collect();
            check_all(&bits);
        }
    }

    #[test]
    fn sparse_ones() {
        let mut bits = vec![false; 20_000];
        for i in (0..20_000).step_by(1999) {
            bits[i] = true;
        }
        check_all(&bits);
    }

    #[test]
    fn dense_ones_sparse_zeros() {
        let mut bits = vec![true; 20_000];
        for i in (0..20_000).step_by(1777) {
            bits[i] = false;
        }
        check_all(&bits);
    }
}
