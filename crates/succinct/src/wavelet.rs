//! Static wavelet matrix: access / rank / select over a sequence of symbols.
//!
//! The wavelet matrix is the rank/select backbone of the FM-index (over the
//! BWT) and of the binary-relation string `S` (§5 of the paper). For a
//! sequence of `n` symbols over alphabet `[0, σ)` it uses `n·⌈log₂ σ⌉ + o(·)`
//! bits and answers `access`, `rank`, and `select` in O(log σ).
//!
//! For zero-order-entropy-compressed sequences see
//! [`crate::huffman::HuffmanWavelet`].

use crate::bits::bits_for;
use crate::bitvec::BitVec;
use crate::rank_select::RankSelect;
use crate::space::SpaceUsage;

/// An immutable sequence of `u32` symbols with O(log σ) access/rank/select.
#[derive(Clone, Debug)]
pub struct WaveletMatrix {
    levels: Vec<RankSelect>,
    /// Number of zeros at each level (size of the "left" partition).
    zeros: Vec<usize>,
    len: usize,
    sigma: u32,
    width: u32,
}

impl WaveletMatrix {
    /// Builds over `seq`, whose symbols must all be `< sigma`.
    pub fn new(seq: &[u32], sigma: u32) -> Self {
        assert!(sigma >= 1, "alphabet must be non-empty");
        debug_assert!(seq.iter().all(|&s| s < sigma));
        let width = if sigma <= 1 {
            1
        } else {
            bits_for(sigma as u64 - 1)
        };
        let mut levels = Vec::with_capacity(width as usize);
        let mut zeros = Vec::with_capacity(width as usize);
        let mut cur: Vec<u32> = seq.to_vec();
        let mut next: Vec<u32> = Vec::with_capacity(seq.len());
        for level in (0..width).rev() {
            let mut bv = BitVec::with_capacity(cur.len());
            let mut left: Vec<u32> = Vec::with_capacity(cur.len());
            for &s in &cur {
                let bit = (s >> level) & 1 == 1;
                bv.push(bit);
                if bit {
                    next.push(s);
                } else {
                    left.push(s);
                }
            }
            zeros.push(left.len());
            levels.push(RankSelect::new(bv));
            // cur = left ++ next (stable partition)
            left.extend_from_slice(&next);
            cur = left;
            next.clear();
        }
        WaveletMatrix {
            levels,
            zeros,
            len: seq.len(),
            sigma,
            width,
        }
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Alphabet bound.
    #[inline]
    pub fn sigma(&self) -> u32 {
        self.sigma
    }

    /// Symbol at position `i`.
    pub fn access(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let mut i = i;
        let mut sym = 0u32;
        for (l, rs) in self.levels.iter().enumerate() {
            sym <<= 1;
            if rs.get(i) {
                sym |= 1;
                i = self.zeros[l] + rs.rank1(i);
            } else {
                i = rs.rank0(i);
            }
        }
        sym
    }

    /// Number of occurrences of `sym` in the prefix `[0, i)`.
    pub fn rank(&self, sym: u32, i: usize) -> usize {
        assert!(i <= self.len, "rank index {i} out of range {}", self.len);
        if sym >= self.sigma {
            return 0;
        }
        let mut start = 0usize;
        let mut end = i;
        for (l, rs) in self.levels.iter().enumerate() {
            let bit = (sym >> (self.width - 1 - l as u32)) & 1 == 1;
            if bit {
                start = self.zeros[l] + rs.rank1(start);
                end = self.zeros[l] + rs.rank1(end);
            } else {
                start = rs.rank0(start);
                end = rs.rank0(end);
            }
        }
        end - start
    }

    /// Position of the `k`-th (0-based) occurrence of `sym`, or `None`.
    pub fn select(&self, sym: u32, k: usize) -> Option<usize> {
        if sym >= self.sigma {
            return None;
        }
        // Walk down to find the start of sym's interval at the bottom level.
        let mut start = 0usize;
        for (l, rs) in self.levels.iter().enumerate() {
            let bit = (sym >> (self.width - 1 - l as u32)) & 1 == 1;
            start = if bit {
                self.zeros[l] + rs.rank1(start)
            } else {
                rs.rank0(start)
            };
        }
        if self.rank(sym, self.len) <= k {
            return None;
        }
        // Walk back up.
        let mut pos = start + k;
        for (l, rs) in self.levels.iter().enumerate().rev() {
            let bit = (sym >> (self.width - 1 - l as u32)) & 1 == 1;
            pos = if bit {
                rs.select1(pos - self.zeros[l])?
            } else {
                rs.select0(pos)?
            };
        }
        Some(pos)
    }

    /// Borrowed decomposition `(levels, width)` for the persistence
    /// encode path (`zeros` is derivable and not exported).
    #[doc(hidden)]
    pub fn persist_parts(&self) -> (&[RankSelect], u32) {
        (&self.levels, self.width)
    }

    /// Reassembles from parts (persistence decode path); the per-level
    /// zero counts are re-derived rather than trusted.
    ///
    /// # Panics
    /// Panics if the level count or per-level lengths disagree.
    #[doc(hidden)]
    pub fn from_persist_parts(levels: Vec<RankSelect>, len: usize, sigma: u32, width: u32) -> Self {
        assert!(sigma >= 1, "alphabet must be non-empty");
        assert_eq!(levels.len(), width as usize, "level count mismatch");
        for (l, rs) in levels.iter().enumerate() {
            assert_eq!(rs.len(), len, "level {l} length mismatch");
        }
        let zeros = levels.iter().map(|rs| rs.count_zeros()).collect();
        WaveletMatrix {
            levels,
            zeros,
            len,
            sigma,
            width,
        }
    }

    /// Number of occurrences of every symbol `< sym` in `[0, i)`
    /// (a "partial rank prefix", used for LF-like mappings on demand).
    pub fn rank_lt(&self, sym: u32, i: usize) -> usize {
        assert!(i <= self.len);
        if sym == 0 {
            return 0;
        }
        if sym >= self.sigma {
            return i;
        }
        let mut start = 0usize;
        let mut end = i;
        let mut acc = 0usize;
        for (l, rs) in self.levels.iter().enumerate() {
            let bit = (sym >> (self.width - 1 - l as u32)) & 1 == 1;
            if bit {
                // everything that went left at this level is < sym here
                acc += (end - start) - (rs.rank1(end) - rs.rank1(start));
                start = self.zeros[l] + rs.rank1(start);
                end = self.zeros[l] + rs.rank1(end);
            } else {
                start = rs.rank0(start);
                end = rs.rank0(end);
            }
        }
        acc
    }
}

impl SpaceUsage for WaveletMatrix {
    fn heap_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.heap_bytes()).sum::<usize>()
            + self.zeros.heap_bytes()
            + self.levels.capacity() * std::mem::size_of::<RankSelect>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(seq: &[u32], sigma: u32) {
        let wm = WaveletMatrix::new(seq, sigma);
        assert_eq!(wm.len(), seq.len());
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(wm.access(i), s, "access({i})");
        }
        for sym in 0..sigma {
            let mut cnt = 0usize;
            for i in 0..=seq.len() {
                assert_eq!(wm.rank(sym, i), cnt, "rank({sym},{i})");
                if i < seq.len() && seq[i] == sym {
                    cnt += 1;
                }
            }
            let positions: Vec<usize> = (0..seq.len()).filter(|&i| seq[i] == sym).collect();
            for (k, &p) in positions.iter().enumerate() {
                assert_eq!(wm.select(sym, k), Some(p), "select({sym},{k})");
            }
            assert_eq!(wm.select(sym, positions.len()), None);
        }
        // rank_lt cross-check
        for sym in 0..=sigma {
            for i in (0..=seq.len()).step_by(7.max(seq.len() / 13 + 1)) {
                let want = seq[..i].iter().filter(|&&s| s < sym).count();
                assert_eq!(wm.rank_lt(sym, i), want, "rank_lt({sym},{i})");
            }
        }
    }

    #[test]
    fn tiny() {
        check(&[], 4);
        check(&[0], 1);
        check(&[3, 1, 2, 0, 3, 3], 4);
    }

    #[test]
    fn binary_alphabet() {
        let seq: Vec<u32> = (0..300).map(|i| (i % 2) as u32).collect();
        check(&seq, 2);
    }

    #[test]
    fn non_power_of_two_sigma() {
        let seq: Vec<u32> = (0..500).map(|i| (i * 7 % 5) as u32).collect();
        check(&seq, 5);
    }

    #[test]
    fn larger_pseudorandom() {
        let seq: Vec<u32> = (0..2000u64)
            .map(|i| ((i.wrapping_mul(0x9E3779B97F4A7C15) >> 40) % 97) as u32)
            .collect();
        check(&seq, 97);
    }

    #[test]
    fn skewed_distribution() {
        let mut seq = vec![0u32; 1000];
        for i in (0..1000).step_by(100) {
            seq[i] = 9;
        }
        check(&seq, 10);
    }
}
