//! A plain growable bit vector backed by `u64` words.
//!
//! [`BitVec`] is the mutable builder type; freeze it into a
//! [`crate::rank_select::RankSelect`] for O(1) rank/select queries.

use crate::bits::{div_ceil, low_mask, WORD_BITS};
use crate::space::SpaceUsage;

/// A growable, indexable vector of bits.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitVec {
            words: Vec::with_capacity(div_ceil(bits, WORD_BITS)),
            len: 0,
        }
    }

    /// Creates a bit vector of `len` copies of `bit`.
    pub fn from_elem(len: usize, bit: bool) -> Self {
        let nwords = div_ceil(len, WORD_BITS);
        let fill = if bit { u64::MAX } else { 0 };
        let mut words = vec![fill; nwords];
        if bit && !len.is_multiple_of(WORD_BITS) {
            // Keep unused tail bits zero so `count_ones` stays correct.
            *words.last_mut().expect("len > 0 implies nwords > 0") = low_mask(len % WORD_BITS);
        }
        BitVec { words, len }
    }

    /// Builds from an iterator of bools.
    pub fn from_bits<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }

    /// Number of bits stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / WORD_BITS;
        let off = self.len % WORD_BITS;
        if off == 0 {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `bit`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if bit {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words; unused tail bits are guaranteed zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bit vector from backing words (the persistence layer's
    /// decode path; `words` must be exactly `ceil(len / 64)` long with all
    /// unused tail bits zero — validate untrusted input first).
    ///
    /// # Panics
    /// Panics if the word count or tail bits violate the invariants.
    #[doc(hidden)]
    pub fn from_raw_parts(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), div_ceil(len, WORD_BITS), "word count mismatch");
        if !len.is_multiple_of(WORD_BITS) {
            if let Some(&last) = words.last() {
                assert_eq!(last & !low_mask(len % WORD_BITS), 0, "tail bits not zero");
            }
        }
        BitVec { words, len }
    }

    /// Iterates over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterates over the positions of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", self.get(i) as u8)?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bits(iter)
    }
}

impl SpaceUsage for BitVec {
    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut bv = BitVec::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        for i in 0..200 {
            assert_eq!(bv.get(i), i % 3 == 0, "at {i}");
        }
        bv.set(100, true);
        assert!(bv.get(100));
        bv.set(100, false);
        assert!(!bv.get(100));
    }

    #[test]
    fn from_elem_tail_bits_zero() {
        let bv = BitVec::from_elem(70, true);
        assert_eq!(bv.len(), 70);
        assert_eq!(bv.count_ones(), 70);
        assert_eq!(bv.words().len(), 2);
        // tail bits beyond 70 must be zero
        assert_eq!(bv.words()[1] >> 6, 0);
    }

    #[test]
    fn iter_ones_matches() {
        let bv = BitVec::from_bits((0..300).map(|i| i % 7 == 1));
        let got: Vec<usize> = bv.iter_ones().collect();
        let want: Vec<usize> = (0..300).filter(|i| i % 7 == 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty() {
        let bv = BitVec::new();
        assert!(bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.iter_ones().count(), 0);
    }
}
