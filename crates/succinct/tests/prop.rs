//! Property-based tests: every succinct structure against a naive model.

use dyndex_succinct::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_select_matches_model(bits in proptest::collection::vec(any::<bool>(), 0..2000)) {
        let rs = RankSelect::new(BitVec::from_bits(bits.iter().copied()));
        let mut ones = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(rs.rank1(i), ones);
            prop_assert_eq!(rs.get(i), b);
            if b { ones += 1; }
        }
        prop_assert_eq!(rs.rank1(bits.len()), ones);
        let one_positions: Vec<usize> = (0..bits.len()).filter(|&i| bits[i]).collect();
        for (k, &p) in one_positions.iter().enumerate() {
            prop_assert_eq!(rs.select1(k), Some(p));
        }
        prop_assert_eq!(rs.select1(one_positions.len()), None);
    }

    #[test]
    fn elias_fano_matches_model(
        mut values in proptest::collection::vec(0u64..100_000, 0..500),
        probe in 0u64..100_001,
    ) {
        values.sort_unstable();
        let ef = EliasFano::new(&values, 100_001);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(ef.get(i), v);
        }
        let want_rank = values.iter().filter(|&&v| v < probe).count();
        prop_assert_eq!(ef.rank(probe), want_rank);
        let want_pred = values.iter().rev().find(|&&v| v <= probe).copied();
        prop_assert_eq!(ef.predecessor(probe).map(|p| p.1), want_pred);
    }

    #[test]
    fn int_vec_roundtrip(width in 1usize..=64, values in proptest::collection::vec(any::<u64>(), 0..300)) {
        let mask = bits::low_mask(width);
        let masked: Vec<u64> = values.iter().map(|&v| v & mask).collect();
        let mut iv = IntVec::new(width);
        for &v in &masked { iv.push(v); }
        for (i, &v) in masked.iter().enumerate() {
            prop_assert_eq!(iv.get(i), v);
        }
    }

    #[test]
    fn wavelet_matrix_matches_model(
        seq in proptest::collection::vec(0u32..50, 0..600),
        sym in 0u32..50,
        at in 0usize..600,
    ) {
        let wm = WaveletMatrix::new(&seq, 50);
        let i = at.min(seq.len());
        prop_assert_eq!(wm.rank(sym, i), seq[..i].iter().filter(|&&s| s == sym).count());
        prop_assert_eq!(wm.rank_lt(sym, i), seq[..i].iter().filter(|&&s| s < sym).count());
        if !seq.is_empty() {
            let j = at % seq.len();
            prop_assert_eq!(wm.access(j), seq[j]);
        }
        let occ: Vec<usize> = (0..seq.len()).filter(|&j| seq[j] == sym).collect();
        for (k, &p) in occ.iter().enumerate() {
            prop_assert_eq!(wm.select(sym, k), Some(p));
        }
    }

    #[test]
    fn huffman_wavelet_agrees_with_matrix(
        seq in proptest::collection::vec(0u32..17, 1..500),
        sym in 0u32..17,
        at in 0usize..500,
    ) {
        let wm = WaveletMatrix::new(&seq, 17);
        let hw = HuffmanWavelet::new(&seq, 17);
        let i = at.min(seq.len());
        prop_assert_eq!(hw.rank(sym, i), wm.rank(sym, i));
        let j = at % seq.len();
        prop_assert_eq!(hw.access(j), wm.access(j));
        for k in 0..wm.rank(sym, seq.len()) {
            prop_assert_eq!(hw.select(sym, k), wm.select(sym, k));
        }
    }

    #[test]
    fn one_bit_reporter_matches_model(
        len in 1usize..3000,
        zeros in proptest::collection::vec(any::<proptest::sample::Index>(), 0..200),
        range in any::<(proptest::sample::Index, proptest::sample::Index)>(),
    ) {
        let mut v = OneBitReporter::new_all_ones(len);
        let mut model = vec![true; len];
        for z in &zeros {
            let i = z.index(len);
            v.zero(i);
            model[i] = false;
        }
        prop_assert_eq!(v.count_ones(), model.iter().filter(|&&b| b).count());
        let (a, b) = (range.0.index(len), range.1.index(len));
        let (s, e) = (a.min(b), a.max(b));
        let want: Vec<usize> = (s..=e).filter(|&i| model[i]).collect();
        prop_assert_eq!(v.report_vec(s, e), want);
    }

    #[test]
    fn flip_rank_matches_model(
        len in 1usize..3000,
        flips in proptest::collection::vec(any::<(proptest::sample::Index, bool)>(), 0..300),
        probe in any::<proptest::sample::Index>(),
    ) {
        let mut fr = FlipRank::new(len, true);
        let mut model = vec![true; len];
        for (ix, bit) in &flips {
            let i = ix.index(len);
            fr.set(i, *bit);
            model[i] = *bit;
        }
        let i = probe.index(len + 1);
        prop_assert_eq!(fr.rank1(i), model[..i].iter().filter(|&&b| b).count());
    }

    #[test]
    fn dyn_bitvec_random_edit_script(
        ops in proptest::collection::vec(any::<(u8, proptest::sample::Index, bool)>(), 0..400),
    ) {
        let mut dv = DynBitVec::new();
        let mut model: Vec<bool> = Vec::new();
        for (op, ix, bit) in &ops {
            match op % 3 {
                0 => {
                    let pos = ix.index(model.len() + 1);
                    dv.insert(pos, *bit);
                    model.insert(pos, *bit);
                }
                1 if !model.is_empty() => {
                    let pos = ix.index(model.len());
                    prop_assert_eq!(dv.remove(pos), model.remove(pos));
                }
                _ if !model.is_empty() => {
                    let pos = ix.index(model.len());
                    dv.set(pos, *bit);
                    model[pos] = *bit;
                }
                _ => {}
            }
        }
        prop_assert_eq!(dv.len(), model.len());
        let ones = model.iter().filter(|&&b| b).count();
        prop_assert_eq!(dv.count_ones(), ones);
        for i in 0..model.len() {
            prop_assert_eq!(dv.get(i), model[i]);
            prop_assert_eq!(dv.rank1(i), model[..i].iter().filter(|&&b| b).count());
        }
    }

    #[test]
    fn dyn_wavelet_random_edit_script(
        ops in proptest::collection::vec(any::<(u8, proptest::sample::Index, u32)>(), 0..300),
    ) {
        const SIGMA: u32 = 23;
        let mut dw = DynWavelet::new(SIGMA);
        let mut model: Vec<u32> = Vec::new();
        for (op, ix, sym) in &ops {
            let sym = sym % SIGMA;
            if op % 3 != 0 || model.is_empty() {
                let pos = ix.index(model.len() + 1);
                dw.insert(pos, sym);
                model.insert(pos, sym);
            } else {
                let pos = ix.index(model.len());
                prop_assert_eq!(dw.remove(pos), model.remove(pos));
            }
        }
        prop_assert_eq!(dw.len(), model.len());
        for (i, &want) in model.iter().enumerate() {
            prop_assert_eq!(dw.access(i), want);
        }
        for sym in 0..SIGMA {
            prop_assert_eq!(dw.rank(sym, model.len()),
                model.iter().filter(|&&s| s == sym).count());
        }
    }
}
