//! Property tests: a sharded store must be indistinguishable (up to
//! occurrence order, which the store fixes by sorting) from one unsharded
//! [`Transform2Index`] over the same documents — for any shard count, any
//! document mix, and any interleaving of deletes.

use dyndex_core::{DynOptions, FmConfig, RebuildMode, Transform2Index};
use dyndex_store::{MaintenancePolicy, ShardedStore, StoreOptions};
use dyndex_text::FmIndexCompressed;
use proptest::prelude::*;

type Reference = Transform2Index<FmIndexCompressed>;
type Store = ShardedStore<FmIndexCompressed>;

fn dyn_opts() -> DynOptions {
    DynOptions {
        min_capacity: 32,
        tau: 4,
        ..DynOptions::default()
    }
}

fn fm() -> FmConfig {
    FmConfig { sample_rate: 4 }
}

fn store_opts(num_shards: usize) -> StoreOptions {
    StoreOptions {
        num_shards,
        index: dyn_opts(),
        mode: RebuildMode::Inline,
        maintenance: MaintenancePolicy::Manual,
        ..StoreOptions::default()
    }
}

/// Documents over a tiny alphabet so short patterns hit often.
fn doc_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"abcd".to_vec()), 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Deterministic merge order: `ShardedStore::find` over N shards
    /// equals a single `Transform2Index::find` on the same documents
    /// (sorted occurrences), and counts agree — including after deletes.
    #[test]
    fn sharded_find_equals_unsharded(
        num_shards in 1usize..=6,
        docs in proptest::collection::vec(doc_strategy(), 1..24),
        patterns in proptest::collection::vec(
            proptest::collection::vec(proptest::sample::select(b"abcd".to_vec()), 1..5), 1..6),
        delete_every in 2u64..5,
    ) {
        let store = Store::new(fm(), store_opts(num_shards));
        let mut reference = Reference::new(fm(), dyn_opts(), RebuildMode::Inline);
        for (i, doc) in docs.iter().enumerate() {
            store.insert(i as u64, doc).unwrap();
            reference.insert(i as u64, doc);
        }
        let check = |store: &Store, reference: &Reference| -> Result<(), TestCaseError> {
            for pattern in &patterns {
                let sharded = store.find(pattern);
                let mut single = reference.find(pattern);
                single.sort();
                prop_assert!(
                    sharded == single,
                    "find mismatch, {} shards, pattern {:?}: {:?} vs {:?}",
                    store.num_shards(),
                    pattern,
                    sharded,
                    single
                );
                prop_assert_eq!(store.count(pattern), reference.count(pattern));
            }
            Ok(())
        };
        check(&store, &reference)?;
        for id in (0..docs.len() as u64).filter(|id| id % delete_every == 0) {
            prop_assert_eq!(store.delete(id).unwrap(), reference.delete(id));
        }
        check(&store, &reference)?;
    }

    /// `find_limit` returns a sorted subset of the full result, of
    /// exactly `min(limit, total)` occurrences, on both layers.
    #[test]
    fn find_limit_is_bounded_sorted_subset(
        num_shards in 1usize..=5,
        docs in proptest::collection::vec(doc_strategy(), 1..16),
        pattern in proptest::collection::vec(proptest::sample::select(b"abcd".to_vec()), 1..4),
        limit in 0usize..40,
    ) {
        let store = Store::new(fm(), store_opts(num_shards));
        for (i, doc) in docs.iter().enumerate() {
            store.insert(i as u64, doc).unwrap();
        }
        let all = store.find(&pattern);
        let capped = store.find_limit(&pattern, limit);
        prop_assert_eq!(capped.len(), limit.min(all.len()));
        prop_assert!(capped.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        for occ in &capped {
            prop_assert!(all.contains(occ), "phantom occurrence {:?}", occ);
        }
    }
}
