//! # dyndex-store
//!
//! A sharded, thread-safe document store layered over the dynamic index
//! transformations of *Munro–Nekrich–Vitter (PODS 2015)*.
//!
//! The transformations (`dyndex-core`) dynamize a single collection behind
//! a single-threaded API. Production traffic wants more: concurrent
//! readers, parallel query fan-out without per-query thread setup, batched
//! writes, and rebuild work kept off the query path. [`ShardedStore`]
//! provides exactly that layer:
//!
//! * **Routing** — documents hash-route by id across `N` shards, each an
//!   independent [`Transform2Index`](dyndex_core::Transform2Index) behind
//!   its own writer lock. Writers to different shards never contend.
//! * **Lock-free reads** — every shard *publishes* its read state as an
//!   immutable [`ShardView`](dyndex_core::ShardView) in an atomically
//!   swapped cell with epoch-based reclamation. Queries load the current
//!   view with one atomic op and never acquire the shard lock, so readers
//!   proceed even while a writer holds a shard — and keep answering from
//!   the last published view if a writer panics ([`ShardPoisoned`]).
//! * **Fan-out** — [`ShardedStore::count`] / [`ShardedStore::find`] query
//!   every shard's view in parallel and merge deterministically
//!   (occurrences sorted by `(doc, offset)`), so a sharded store answers
//!   byte-identically to an unsharded index over the same documents. By
//!   default ([`FanOutPolicy::Pooled`]) each shard's work is submitted as
//!   a closure-plus-reply-channel to that shard's *resident worker* — one
//!   channel send instead of one thread spawn per shard per query, which
//!   is what lets µs-scale queries keep the paper's bounds in practice.
//!   [`FanOutPolicy::ScopedSpawn`] keeps the spawn-per-query model for
//!   comparison.
//! * **Batching** — [`ShardedStore::insert_batch`] /
//!   [`ShardedStore::delete_batch`] group documents by shard and apply
//!   each shard's group on its own thread, one lock acquisition per shard.
//! * **Bulk ingestion** — [`ShardedStore::ingest`] streams a corpus
//!   through the static-construction fast path: documents route by
//!   shard, cut into bounded chunks, SA-IS-build directly into static
//!   bulk levels off the shard lock (on the resident workers when
//!   pooled), and install through the normal epoch-publish path —
//!   skipping the `C0` buffer and every cascade merge, while queries
//!   keep answering from published views throughout.
//! * **Maintenance** — Transformation 2 rebuilds sub-collections on
//!   background jobs that must be *installed* by someone holding the
//!   index. The same resident workers drain their shard's finished jobs
//!   between requests with `try_write` (never stalling queries), so
//!   installs stop riding on foreground operations — no separate
//!   scheduler thread. Under [`MaintenancePolicy::Manual`] no threads
//!   exist at all and installs are driven by the caller.
//! * **Observability** — [`ShardedStore::stats`] aggregates per-shard
//!   document/symbol counts, pending background-job depth, worker
//!   request-queue depth and busyness, and the full per-level census
//!   ([`LevelStats`](dyndex_core::LevelStats)); [`StoreStats`] implements
//!   `Display` as a one-line dashboard.
//! * **Quiescing** — [`ShardedStore::flush`] drains every worker's
//!   request queue, then holds every shard at once and installs all
//!   background work, yielding the settled state that snapshots
//!   (`dyndex-persist`) and deterministic tests build on.
//!
//! The full-stack walk-through — layer diagram, the life of a query and
//! an insert through the pool, the rebuild lifecycle, crash recovery —
//! lives in `docs/ARCHITECTURE.md` at the repository root.
//!
//! ```
//! use dyndex_core::{DynOptions, RebuildMode, FmConfig};
//! use dyndex_store::{FanOutPolicy, MaintenancePolicy, ShardedStore, StoreOptions, Telemetry};
//! use dyndex_text::FmIndexCompressed;
//! use std::time::Duration;
//!
//! let store: ShardedStore<FmIndexCompressed> = ShardedStore::new(
//!     FmConfig { sample_rate: 8 },
//!     StoreOptions {
//!         num_shards: 4,
//!         mode: RebuildMode::Background,
//!         maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
//!         fan_out: FanOutPolicy::Pooled, // the default: resident workers
//!         index: DynOptions::default(),
//!         telemetry: Telemetry::Enabled, // the default: private registry
//!         ..StoreOptions::default()      // health watchdog thresholds, no admin listener
//!     },
//! );
//! assert_eq!(store.worker_threads(), 4); // one resident worker per shard
//! store.insert(1, b"sharded dynamic document store").unwrap();
//! store.insert(2, b"dynamic indexes behind every shard").unwrap();
//! assert_eq!(store.count(b"dynamic"), 2);
//! let hits = store.find(b"shard");
//! assert_eq!(hits.len(), 2);
//! assert!(hits.windows(2).all(|w| w[0] <= w[1]), "merge is sorted");
//! store.delete(1).unwrap();
//! assert_eq!(store.count(b"dynamic"), 1);
//! store.flush(); // drain request queues + install all rebuilds
//! ```

mod epoch;
mod health;
mod pool;
mod shard;
mod stats;
mod store;
mod telemetry;

pub use health::HealthOptions;
pub use shard::{ShardGuard, ShardPoisoned};
pub use stats::{ShardStats, StoreStats};
pub use store::{FanOutPolicy, IngestStats, MaintenancePolicy, ShardedStore, StoreOptions};
pub use telemetry::Telemetry;

// Telemetry vocabulary types, re-exported so store users need not name
// `dyndex-obs` directly: the registry handle [`ShardedStore::metrics`]
// returns, the span types [`ShardedStore::recent_spans`] and
// [`ShardedStore::flight_spans`] yield, and the health report
// [`ShardedStore::health`] folds its detector findings into.
pub use dyndex_obs::{
    AdminServer, FlightRecorder, HealthReason, HealthReport, HealthStatus, MetricsRegistry,
    QueryKind, QuerySpan, Span, SpanKind,
};

#[doc(hidden)]
pub use store::fresh_uid;
