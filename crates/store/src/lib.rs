//! # dyndex-store
//!
//! A sharded, thread-safe document store layered over the dynamic index
//! transformations of *Munro–Nekrich–Vitter (PODS 2015)*.
//!
//! The transformations (`dyndex-core`) dynamize a single collection behind
//! a single-threaded API. Production traffic wants more: concurrent
//! readers, parallel query fan-out, batched writes, and rebuild work kept
//! off the query path. [`ShardedStore`] provides exactly that layer:
//!
//! * **Routing** — documents hash-route by id across `N` shards, each an
//!   independent [`Transform2Index`](dyndex_core::Transform2Index) behind
//!   its own reader-writer lock. Writers to different shards never
//!   contend; readers never block readers.
//! * **Fan-out** — [`ShardedStore::count`] / [`ShardedStore::find`] query
//!   every shard in parallel on scoped threads and merge deterministically
//!   (occurrences sorted by `(doc, offset)`), so a sharded store answers
//!   byte-identically to an unsharded index over the same documents.
//! * **Batching** — [`ShardedStore::insert_batch`] /
//!   [`ShardedStore::delete_batch`] group documents by shard and apply
//!   each shard's group on its own thread, one lock acquisition per shard.
//! * **Maintenance** — Transformation 2 rebuilds sub-collections on
//!   background jobs that must be *installed* by someone holding the
//!   index. A periodic scheduler thread
//!   ([`MaintenancePolicy::Periodic`]) drains finished jobs with
//!   `try_write` (never stalling queries), so installs stop riding on
//!   foreground operations.
//! * **Observability** — [`ShardedStore::stats`] aggregates per-shard
//!   document/symbol counts, pending background-job depth, and the full
//!   per-level census ([`LevelStats`](dyndex_core::LevelStats));
//!   [`StoreStats`] implements `Display` as a one-line dashboard.
//! * **Quiescing** — [`ShardedStore::flush`] holds every shard at once
//!   and installs all background work, yielding the settled state that
//!   snapshots (`dyndex-persist`) and deterministic tests build on.
//!
//! ```
//! use dyndex_core::{DynOptions, RebuildMode, FmConfig};
//! use dyndex_store::{MaintenancePolicy, ShardedStore, StoreOptions};
//! use dyndex_text::FmIndexCompressed;
//!
//! let store: ShardedStore<FmIndexCompressed> = ShardedStore::new(
//!     FmConfig { sample_rate: 8 },
//!     StoreOptions {
//!         num_shards: 4,
//!         mode: RebuildMode::Inline,
//!         maintenance: MaintenancePolicy::Manual,
//!         index: DynOptions::default(),
//!     },
//! );
//! store.insert(1, b"sharded dynamic document store");
//! store.insert(2, b"dynamic indexes behind every shard");
//! assert_eq!(store.count(b"dynamic"), 2);
//! let hits = store.find(b"shard");
//! assert_eq!(hits.len(), 2);
//! assert!(hits.windows(2).all(|w| w[0] <= w[1]), "merge is sorted");
//! store.delete(1);
//! assert_eq!(store.count(b"dynamic"), 1);
//! ```

mod scheduler;
mod stats;
mod store;

pub use stats::{ShardStats, StoreStats};
pub use store::{MaintenancePolicy, ShardedStore, StoreOptions};
