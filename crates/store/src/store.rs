//! [`ShardedStore`]: hash-routed shards of [`Transform2Index`], query
//! fan-out over a resident per-shard worker pool with deterministic
//! merge, batched writes, and background maintenance folded into the
//! same workers.

use crate::health::{HealthOptions, HealthState};
use crate::pool::WorkerPool;
use crate::shard::{ShardGuard, ShardPoisoned, ShardSlot};
use crate::stats::{ShardStats, StoreStats};
use crate::telemetry::{FanOutProbe, ShardProbe, StoreTelemetry, Telemetry};
use dyndex_core::transform2::FrozenSnapshot;
use dyndex_core::{DynOptions, LevelBuilder, RebuildMode, ShardView, StaticIndex, Transform2Index};
use dyndex_obs::{
    AdminResponse, AdminServer, FlightRecorder, HealthReport, MetricsRegistry, QueryKind,
    QuerySpan, Span, SpanKind,
};
use dyndex_succinct::SpaceUsage;
use dyndex_text::Occurrence;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How background maintenance is driven.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// No worker threads at all. Finished jobs install when a foreground
    /// operation touches the shard, or when the caller runs
    /// [`ShardedStore::maintain`] / [`ShardedStore::finish_background_work`].
    /// Queries fan out on scoped threads regardless of
    /// [`FanOutPolicy`] — the fully deterministic, zero-thread mode that
    /// tests and snapshots build on.
    Manual,
    /// One resident worker per shard. Each worker serves that shard's
    /// query requests and, whenever this interval has elapsed since its
    /// last drain, installs finished rebuild jobs off the query path
    /// (busy shards are skipped via `try_write`, never contended).
    Periodic(Duration),
}

/// How multi-shard queries ([`ShardedStore::count`] /
/// [`ShardedStore::find`] / [`ShardedStore::find_limit`] /
/// [`ShardedStore::stats`]) execute across shards.
///
/// # Examples
///
/// ```
/// use dyndex_store::{FanOutPolicy, StoreOptions};
///
/// // Pooled is the default: resident workers, no per-query spawns.
/// assert_eq!(StoreOptions::default().fan_out, FanOutPolicy::Pooled);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FanOutPolicy {
    /// Submit each shard's work to that shard's resident worker
    /// (requires the pool, i.e. [`MaintenancePolicy::Periodic`]): one
    /// channel send instead of one thread spawn per shard per query.
    /// Under [`MaintenancePolicy::Manual`] no workers exist, so this
    /// falls back to [`FanOutPolicy::ScopedSpawn`] — see
    /// [`ShardedStore::fan_out_policy`] for the effective policy.
    #[default]
    Pooled,
    /// Spawn one scoped thread per shard per query (the pre-pool
    /// execution model, kept for comparison benchmarks and as the
    /// zero-resident-thread fallback).
    ScopedSpawn,
}

/// Tunables for a [`ShardedStore`].
///
/// # Examples
///
/// ```
/// use dyndex_store::{FanOutPolicy, MaintenancePolicy, StoreOptions};
/// use std::time::Duration;
///
/// let options = StoreOptions {
///     num_shards: 8,
///     maintenance: MaintenancePolicy::Periodic(Duration::from_micros(500)),
///     fan_out: FanOutPolicy::Pooled,
///     ..StoreOptions::default()
/// };
/// assert_eq!(options.num_shards, 8);
/// ```
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Number of shards (≥ 1). More shards mean more write parallelism
    /// and smaller rebuilds, at O(num_shards) fan-out cost per query.
    pub num_shards: usize,
    /// Options forwarded to every shard's [`Transform2Index`].
    pub index: DynOptions,
    /// Rebuild execution mode for every shard.
    pub mode: RebuildMode,
    /// Background maintenance driving policy (also decides whether the
    /// worker pool exists at all — see [`MaintenancePolicy`]).
    pub maintenance: MaintenancePolicy,
    /// Multi-shard query execution model.
    pub fan_out: FanOutPolicy,
    /// Telemetry policy: record into a fresh registry (default), a
    /// shared one, or nothing at all — see [`Telemetry`].
    pub telemetry: Telemetry,
    /// Health-watchdog thresholds (stall/stuck detectors behind
    /// [`ShardedStore::health`] and the admin endpoint's `/health`) and
    /// the flight recorder's slow-op retention bound.
    pub health: HealthOptions,
    /// Bind address for the zero-dependency admin endpoint (e.g.
    /// `"127.0.0.1:9090"`, or port `0` to let the OS pick — read the
    /// result back via [`ShardedStore::admin_addr`]). `None` (the
    /// default) starts no listener and opens no socket.
    ///
    /// The endpoint serves `GET /metrics` (Prometheus-style text),
    /// `/health` (watchdog report; HTTP 503 when unhealthy), `/spans`
    /// (recent flight-recorder span trees), and `/slow` (retained
    /// slow-operation trees). Construction panics if the address cannot
    /// be bound — an explicitly requested admin endpoint that silently
    /// fails to listen would be worse than a loud startup failure.
    pub admin: Option<String>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            num_shards: 4,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_millis(1)),
            fan_out: FanOutPolicy::Pooled,
            telemetry: Telemetry::default(),
            health: HealthOptions::default(),
            admin: None,
        }
    }
}

/// SplitMix64 — the document-id router. Sequential ids (the common
/// pattern) spread uniformly instead of striping.
fn route_hash(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A practically unique id (wall-clock nanos ⊕ pid ⊕ a process-global
/// counter, dispersed through SplitMix64). The persistence layer mints
/// one per snapshot commit and uses the store's recorded lineage to
/// decide whether incremental snapshots may reuse committed level
/// files — epoch counters from divergent histories must never be
/// compared.
pub fn fresh_uid() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    route_hash(nanos ^ ((std::process::id() as u64) << 32) ^ seq.wrapping_mul(0x9E37_79B9))
}

/// A sharded, concurrent document store over dynamic indexes.
///
/// All methods take `&self`, so a `ShardedStore` can be shared across
/// threads directly or behind an `Arc`. Each shard keeps its writer
/// state behind a write lock and *publishes* its read state as an
/// immutable [`ShardView`] through an atomically-swapped cell: every
/// query loads the current view with one atomic op and never touches
/// the shard lock, so readers cannot contend with writers (and keep
/// answering even after a writer panic — see [`ShardPoisoned`]).
/// Multi-shard queries execute on a resident per-shard worker pool by
/// default ([`FanOutPolicy`]); the same workers install background
/// rebuilds between requests. See the crate docs for the layer's design
/// and `docs/ARCHITECTURE.md` (repo root) for the full stack
/// walk-through.
pub struct ShardedStore<I: StaticIndex + Sync> {
    shards: Arc<Vec<ShardSlot<I>>>,
    /// Resident workers; `None` under [`MaintenancePolicy::Manual`].
    pool: Option<WorkerPool<I>>,
    /// Whether multi-shard queries route through the pool (policy is
    /// [`FanOutPolicy::Pooled`] *and* the pool exists).
    pooled_queries: bool,
    /// Whether a background snapshot currently has serialization work
    /// queued or running (set by the persistence layer; surfaced in
    /// [`StoreStats`]).
    snapshot_in_progress: AtomicBool,
    /// Snapshot lineage: the commit id of the last snapshot this
    /// store's state descends from — the one it last wrote, or the one
    /// it was restored from (see [`fresh_uid`]). A fresh store starts
    /// with a never-committed id, so its first snapshot into any
    /// directory is a full write.
    lineage: AtomicU64,
    /// Telemetry handles; `None` under [`Telemetry::Disabled`] — every
    /// instrumentation point is then one branch, no clock reads.
    telemetry: Option<Arc<StoreTelemetry>>,
    /// The health watchdog (always present; detectors read shared
    /// atomics, so a check never blocks on store state).
    health: Arc<HealthState<I>>,
    /// The admin listener, when [`StoreOptions::admin`] asked for one.
    /// Its handlers hold only `Arc`'d state (telemetry, watchdog), so
    /// drop order against the pool is immaterial; dropping the store
    /// joins the accept thread.
    admin: Option<AdminServer>,
    /// Documents loaded through the bulk-ingest fast path over the
    /// store's lifetime (store-side, so [`StoreStats`] reports it even
    /// under [`Telemetry::Disabled`]).
    ingested_docs: AtomicU64,
}

/// Outcome of one [`ShardedStore::ingest`] call: how much was loaded and
/// how fast.
///
/// # Examples
///
/// ```
/// use dyndex_store::IngestStats;
/// use std::time::Duration;
///
/// let stats = IngestStats {
///     docs: 1000,
///     bytes: 4 << 20,
///     levels: 8,
///     elapsed: Duration::from_millis(500),
/// };
/// assert_eq!(stats.docs_per_sec(), 2000.0);
/// assert_eq!(stats.bytes_per_sec(), (8 << 20) as f64);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct IngestStats {
    /// Documents built into bulk levels and installed.
    pub docs: u64,
    /// Raw document bytes ingested.
    pub bytes: u64,
    /// Bulk levels installed (one per chunk per shard).
    pub levels: u64,
    /// Wall-clock duration of the whole ingest call.
    pub elapsed: Duration,
}

impl IngestStats {
    /// Ingest throughput in documents per second (0.0 when the call took
    /// no measurable time).
    pub fn docs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.docs as f64 / secs
        } else {
            0.0
        }
    }

    /// Ingest throughput in bytes per second (0.0 when the call took no
    /// measurable time).
    pub fn bytes_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.bytes as f64 / secs
        } else {
            0.0
        }
    }
}

/// Bulk chunks allowed in flight per shard before the router blocks on
/// the oldest reply — bounds ingest memory at
/// `(1 + MAX_INGEST_IN_FLIGHT) × chunk` raw bytes per shard (one being
/// routed, the rest being built).
const MAX_INGEST_IN_FLIGHT: usize = 2;

/// One dispatched bulk chunk awaiting its worker's reply.
struct InFlightChunk {
    rx: mpsc::Receiver<std::thread::Result<Result<(), ShardPoisoned>>>,
    docs: u64,
    bytes: u64,
}

/// Running tally of an ingest call: successes, plus the first failure of
/// each kind (every in-flight chunk is still drained before either
/// propagates, so no worker reply is ever orphaned).
#[derive(Default)]
struct IngestProgress {
    docs: u64,
    bytes: u64,
    levels: u64,
    poisoned: Option<ShardPoisoned>,
    panic: Option<Box<dyn std::any::Any + Send>>,
    lost: bool,
}

impl IngestProgress {
    /// Blocks on one chunk's reply and folds it in.
    fn absorb(&mut self, chunk: InFlightChunk) {
        match chunk.rx.recv() {
            Ok(Ok(Ok(()))) => {
                self.docs += chunk.docs;
                self.bytes += chunk.bytes;
                self.levels += 1;
            }
            Ok(Ok(Err(poisoned))) => {
                self.poisoned.get_or_insert(poisoned);
            }
            Ok(Err(payload)) => {
                self.panic.get_or_insert(payload);
            }
            Err(_) => self.lost = true,
        }
    }
}

/// The per-chunk work unit of bulk ingestion: SA-IS-build one routed
/// batch into a static level *off the shard lock*, then take the lock
/// only to install it (and republish the view on drop). Runs on the
/// shard's resident worker under [`FanOutPolicy::Pooled`] stores, or
/// inline on the ingesting thread under [`MaintenancePolicy::Manual`].
fn build_install_chunk<I: StaticIndex + Sync>(
    slot: &ShardSlot<I>,
    shard: usize,
    builder: &LevelBuilder<I>,
    batch: &[(u64, Vec<u8>)],
    telemetry: Option<&StoreTelemetry>,
) -> Result<(), ShardPoisoned> {
    let build_start = Instant::now();
    let level = builder.build_batch(batch);
    let build_nanos = build_start.elapsed().as_nanos() as u64;
    let install_start = Instant::now();
    let mut guard = slot.write()?;
    guard.install_bulk_level(level);
    drop(guard); // republish the view before stopping the clock
    if let Some(t) = telemetry {
        t.ingest_build.record_at(shard, build_nanos);
        t.ingest_install
            .record_at(shard, install_start.elapsed().as_nanos() as u64);
        t.docs_ingested.add(batch.len() as u64);
    }
    Ok(())
}

impl<I: StaticIndex + Sync> ShardedStore<I> {
    /// Creates an empty store with `options.num_shards` shards, each an
    /// empty [`Transform2Index`] built from `config`.
    ///
    /// # Panics
    /// Panics if `options.num_shards` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// assert_eq!(store.num_shards(), 4);
    /// assert_eq!(store.worker_threads(), 4); // one resident worker per shard
    /// ```
    pub fn new(config: I::Config, options: StoreOptions) -> Self {
        assert!(options.num_shards >= 1, "store needs at least one shard");
        let indexes: Vec<Transform2Index<I>> = (0..options.num_shards)
            .map(|_| Transform2Index::new(config.clone(), options.index, options.mode))
            .collect();
        Self::with_shards(
            indexes,
            options.maintenance,
            options.fan_out,
            &options.telemetry,
            options.health.clone(),
            options.admin.as_deref(),
        )
    }

    /// Wires shard indexes to their slots, telemetry, watchdog, admin
    /// endpoint, and (optional) worker pool — the single construction
    /// path shared by [`ShardedStore::new`] and
    /// [`ShardedStore::from_shard_indexes`]. Telemetry attaches *before*
    /// the initial views publish, so even construction-time freezes and
    /// rebuilds are recorded.
    fn with_shards(
        mut indexes: Vec<Transform2Index<I>>,
        maintenance: MaintenancePolicy,
        fan_out: FanOutPolicy,
        telemetry: &Telemetry,
        health_options: HealthOptions,
        admin_addr: Option<&str>,
    ) -> Self {
        assert!(!indexes.is_empty(), "store needs at least one shard");
        let telemetry = StoreTelemetry::from_policy(telemetry, indexes.len());
        if let Some(t) = &telemetry {
            t.flight
                .set_slow_threshold(health_options.slow_op_threshold);
            // Epoch-GC passes run process-globally; point them at this
            // store's recorder (last registration wins).
            crate::epoch::set_gc_flight(&t.flight);
            for (shard, index) in indexes.iter_mut().enumerate() {
                index.set_metrics(Some(Arc::clone(&t.core)));
                index.set_metrics_shard(shard);
            }
        }
        let poison_events = telemetry
            .as_ref()
            .map(|t| Arc::clone(&t.shards_poisoned_events));
        let shards: Arc<Vec<ShardSlot<I>>> = Arc::new(
            indexes
                .into_iter()
                .enumerate()
                .map(|(shard, index)| ShardSlot::new(shard, index, poison_events.clone()))
                .collect(),
        );
        let pool = match maintenance {
            MaintenancePolicy::Manual => None,
            MaintenancePolicy::Periodic(tick) => Some(WorkerPool::spawn(Arc::clone(&shards), tick)),
        };
        let pooled_queries = pool.is_some() && fan_out == FanOutPolicy::Pooled;
        let health = Arc::new(HealthState::new(
            Arc::clone(&shards),
            pool.as_ref().map_or_else(Vec::new, WorkerPool::gauges),
            health_options,
            telemetry.as_ref().map(|t| Arc::clone(&t.registry)),
        ));
        let admin = admin_addr.map(|addr| {
            Self::spawn_admin(addr, telemetry.clone(), Arc::clone(&health))
                .unwrap_or_else(|e| panic!("admin endpoint failed to bind {addr}: {e}"))
        });
        ShardedStore {
            shards,
            pool,
            pooled_queries,
            snapshot_in_progress: AtomicBool::new(false),
            lineage: AtomicU64::new(fresh_uid()),
            telemetry,
            health,
            admin,
            ingested_docs: AtomicU64::new(0),
        }
    }

    /// Binds the admin listener and wires its four routes. Handlers hold
    /// only `Arc`'d state, so a scrape never blocks on — and outlives —
    /// nothing in the store itself.
    fn spawn_admin(
        addr: &str,
        telemetry: Option<Arc<StoreTelemetry>>,
        health: Arc<HealthState<I>>,
    ) -> std::io::Result<AdminServer> {
        let disabled = || AdminResponse::with_status(404, "telemetry disabled\n");
        let metrics = telemetry.clone();
        let spans = telemetry.clone();
        let slow = telemetry;
        let routes: Vec<(String, dyndex_obs::AdminHandler)> = vec![
            (
                "/metrics".to_string(),
                Box::new(move || {
                    metrics.as_ref().map_or_else(disabled, |t| {
                        t.sync_exposition();
                        AdminResponse::text(t.registry.render_text())
                    })
                }),
            ),
            (
                "/health".to_string(),
                Box::new(move || {
                    let report = health.check();
                    let status = if report.status == dyndex_obs::HealthStatus::Unhealthy {
                        503
                    } else {
                        200
                    };
                    AdminResponse::with_status(status, format!("{report}\n"))
                }),
            ),
            (
                "/spans".to_string(),
                Box::new(move || {
                    spans
                        .as_ref()
                        .map_or_else(disabled, |t| AdminResponse::text(t.flight.render_spans()))
                }),
            ),
            (
                "/slow".to_string(),
                Box::new(move || {
                    slow.as_ref()
                        .map_or_else(disabled, |t| AdminResponse::text(t.flight.render_slow()))
                }),
            ),
        ];
        AdminServer::bind(addr, routes)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of resident worker threads (one per shard under
    /// [`MaintenancePolicy::Periodic`], zero under
    /// [`MaintenancePolicy::Manual`]).
    pub fn worker_threads(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::len)
    }

    /// The *effective* fan-out policy: [`FanOutPolicy::Pooled`] only
    /// when a pool exists to carry the queries, otherwise
    /// [`FanOutPolicy::ScopedSpawn`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{FanOutPolicy, MaintenancePolicy, ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let manual: ShardedStore<FmIndexCompressed> = ShardedStore::new(
    ///     FmConfig { sample_rate: 8 },
    ///     StoreOptions { maintenance: MaintenancePolicy::Manual, ..StoreOptions::default() },
    /// );
    /// // Pooled was requested, but Manual maintenance means no workers:
    /// assert_eq!(manual.fan_out_policy(), FanOutPolicy::ScopedSpawn);
    /// ```
    pub fn fan_out_policy(&self) -> FanOutPolicy {
        if self.pooled_queries {
            FanOutPolicy::Pooled
        } else {
            FanOutPolicy::ScopedSpawn
        }
    }

    /// The shard `doc_id` routes to (stable for the store's lifetime).
    pub fn shard_of(&self, doc_id: u64) -> usize {
        (route_hash(doc_id) % self.shards.len() as u64) as usize
    }

    /// Requests currently waiting in `shard`'s worker queue, counting the
    /// in-flight request as one. Zero when no pool exists
    /// ([`MaintenancePolicy::Manual`]) — with no queue there is nothing
    /// to back up behind. This is the live gauge the serving layer's
    /// shed decision reads; [`StoreStats`] reports the same numbers as a
    /// point-in-time census.
    pub fn shard_queue_depth(&self, shard: usize) -> usize {
        self.pool.as_ref().map_or(0, |p| {
            let (queued, busy) = p.shard_gauges(shard);
            queued + busy as usize
        })
    }

    /// The deepest worker queue across all shards (see
    /// [`ShardedStore::shard_queue_depth`]). A fan-out query waits on
    /// its slowest shard, so this is the depth that bounds its queue
    /// wait.
    pub fn max_queue_depth(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.shard_queue_depth(s))
            .max()
            .unwrap_or(0)
    }

    /// The shard's currently-published immutable [`ShardView`] — the
    /// whole read path: one atomic load, no lock. Public so callers can
    /// pin a consistent snapshot of one shard across several queries.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert(1, b"pin a consistent snapshot").unwrap();
    /// let view = store.shard_view(store.shard_of(1));
    /// store.delete(1).unwrap();
    /// assert_eq!(view.count(b"snapshot"), 1, "the pinned view is immutable");
    /// assert_eq!(store.count(b"snapshot"), 0, "fresh queries see the delete");
    /// ```
    pub fn shard_view(&self, shard: usize) -> Arc<ShardView<I>> {
        self.shards[shard].view()
    }

    fn write_shard(&self, s: usize) -> Result<ShardGuard<'_, I>, ShardPoisoned> {
        self.shards[s].write()
    }

    /// Whether multi-shard queries should route through the pool. A
    /// 1-shard store never does: there is no fan-out to amortize, and
    /// the direct read is cheaper than a queue round-trip.
    fn use_pool(&self) -> bool {
        self.pooled_queries && self.shards.len() > 1
    }

    /// Starts one query's trace, when telemetry is on: the wall-clock
    /// instant for the latency histogram plus the flight root span's id
    /// and start stamp (handed to fan-out workers for their child spans).
    fn begin_query(&self) -> Option<(Instant, u64, u64)> {
        self.telemetry.as_ref().map(|t| {
            let (root, start_nanos) = t.begin_query_span();
            (Instant::now(), root, start_nanos)
        })
    }

    /// Local fan-out for when [`ShardedStore::use_pool`] is false: the
    /// single-shard direct query, or one scoped thread per shard — each
    /// against the shard's published view, never the lock. Takes `f` by
    /// reference, so query closures can borrow their pattern — callers
    /// only pay an owned pattern on the pooled path, where the job
    /// outlives the caller's stack frame. With telemetry on, each thread
    /// times its own execution (queue wait is definitionally zero here:
    /// threads start executing at spawn) and records its shard-execute
    /// flight span as a child of `root` (the query's flight span id).
    fn fan_out_scoped<T, F>(&self, f: &F, root: u64) -> (Vec<T>, FanOutProbe)
    where
        T: Send,
        F: Fn(&ShardView<I>) -> T + Sync,
    {
        let telemetry = self.telemetry.as_deref();
        let run = |shard: usize, slot: &ShardSlot<I>| -> (T, Option<ShardProbe>) {
            let view = slot.view();
            match telemetry {
                Some(t) => {
                    let start_nanos = t.flight.now_nanos();
                    let start = Instant::now();
                    let out = f(&view);
                    let execute_nanos = start.elapsed().as_nanos() as u64;
                    t.query_execute.record_at(shard, execute_nanos);
                    let epoch = view.epoch();
                    t.flight.record_at(
                        shard,
                        Span {
                            shard: Some(shard),
                            start_nanos,
                            duration_nanos: execute_nanos,
                            epoch_lo: epoch,
                            epoch_hi: epoch,
                            ..Span::child(root, SpanKind::ShardExecute)
                        },
                    );
                    (
                        out,
                        Some(ShardProbe {
                            queue_nanos: 0,
                            execute_nanos,
                            epoch,
                        }),
                    )
                }
                None => (f(&view), None),
            }
        };
        let results: Vec<(T, Option<ShardProbe>)> = if self.shards.len() == 1 {
            vec![run(0, &self.shards[0])]
        } else {
            std::thread::scope(|scope| {
                let run = &run;
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .enumerate()
                    .map(|(shard, slot)| scope.spawn(move || run(shard, slot)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard query thread panicked"))
                    .collect()
            })
        };
        let mut probe = FanOutProbe::default();
        let mut answers = Vec::with_capacity(results.len());
        for (value, shard_probe) in results {
            if let Some(p) = shard_probe {
                probe.absorb(p);
            }
            answers.push(value);
        }
        (answers, probe)
    }

    /// Pooled fan-out (only called when [`ShardedStore::use_pool`]):
    /// submit one job per shard to its resident worker, each carrying a
    /// reply channel, then collect in shard order. Jobs query the
    /// shard's *published view*, so queued queries proceed even while a
    /// writer holds — or has poisoned — the shard lock. A panic inside
    /// `f` is caught on the worker — which stays alive and keeps serving
    /// its queue — shipped back through the reply channel, and re-raised
    /// **on the caller**, so a failure surfaces exactly where it would
    /// with scoped threads while the store stays usable for every shard.
    /// With telemetry on, each worker records queue-wait and
    /// shard-execute flight spans as children of `root`.
    fn fan_out_pooled<T, F>(&self, f: F, root: u64) -> (Vec<T>, FanOutProbe)
    where
        T: Send + 'static,
        F: Fn(&ShardView<I>) -> T + Send + Sync + 'static,
    {
        let pool = self.pool.as_ref().expect("use_pool checked by caller");
        let route_start = self.telemetry.as_ref().map(|_| Instant::now());
        let f = Arc::new(f);
        type Reply<T> = std::thread::Result<(T, Option<ShardProbe>)>;
        let receivers: Vec<mpsc::Receiver<Reply<T>>> = (0..self.shards.len())
            .map(|shard| {
                let f = Arc::clone(&f);
                let telemetry = self.telemetry.clone();
                let (reply, rx) = mpsc::channel();
                // Queue wait is measured from the submit instant to the
                // worker picking the job up; both per-shard latencies are
                // recorded *on the worker*, onto that shard's histogram
                // stripe, keeping the caller's merge path clean.
                let submitted = telemetry
                    .as_ref()
                    .map(|t| (Instant::now(), t.flight.now_nanos()));
                pool.submit(
                    shard,
                    Box::new(move |slot: &ShardSlot<I>| {
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                match (&telemetry, submitted) {
                                    (Some(t), Some((submitted, submit_nanos))) => {
                                        let queue_nanos = submitted.elapsed().as_nanos() as u64;
                                        let view = slot.view();
                                        let exec_start = Instant::now();
                                        let out = f(&view);
                                        let execute_nanos = exec_start.elapsed().as_nanos() as u64;
                                        t.query_queue_wait.record_at(shard, queue_nanos);
                                        t.query_execute.record_at(shard, execute_nanos);
                                        let epoch = view.epoch();
                                        t.flight.record_at(
                                            shard,
                                            Span {
                                                shard: Some(shard),
                                                start_nanos: submit_nanos,
                                                duration_nanos: queue_nanos,
                                                ..Span::child(root, SpanKind::QueueWait)
                                            },
                                        );
                                        t.flight.record_at(
                                            shard,
                                            Span {
                                                shard: Some(shard),
                                                start_nanos: submit_nanos + queue_nanos,
                                                duration_nanos: execute_nanos,
                                                epoch_lo: epoch,
                                                epoch_hi: epoch,
                                                ..Span::child(root, SpanKind::ShardExecute)
                                            },
                                        );
                                        (
                                            out,
                                            Some(ShardProbe {
                                                queue_nanos,
                                                execute_nanos,
                                                epoch,
                                            }),
                                        )
                                    }
                                    _ => (f(&slot.view()), None),
                                }
                            }));
                        let _ = reply.send(result);
                    }),
                );
                rx
            })
            .collect();
        let mut probe = FanOutProbe {
            route_nanos: route_start.map_or(0, |s| s.elapsed().as_nanos() as u64),
            ..FanOutProbe::default()
        };
        // Collect every shard's reply before propagating any failure, so
        // one poisoned shard cannot leave another shard's job orphaned
        // mid-merge.
        let mut answers = Vec::with_capacity(receivers.len());
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        let mut lost = false;
        for rx in receivers {
            match rx.recv() {
                Ok(Ok((value, shard_probe))) => {
                    if let Some(p) = shard_probe {
                        probe.absorb(p);
                    }
                    answers.push(Some(value));
                }
                Ok(Err(payload)) => {
                    panic.get_or_insert(payload);
                    answers.push(None);
                }
                Err(_) => {
                    lost = true;
                    answers.push(None);
                }
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        assert!(!lost, "shard worker exited without answering a query");
        let answers = answers
            .into_iter()
            .map(|a| a.expect("every reply collected above"))
            .collect();
        (answers, probe)
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Inserts a document into its shard (direct write-lock path — the
    /// worker pool carries only query fan-out). On success the shard's
    /// view is republished, so the document is immediately visible to
    /// the lock-free read path.
    ///
    /// # Errors
    /// Returns [`ShardPoisoned`] if a previous writer panicked in this
    /// document's shard — reads there keep serving the last published
    /// view, and every other shard still accepts writes.
    ///
    /// # Panics
    /// Panics if `doc_id` is already present (same contract as
    /// [`Transform2Index::insert`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert(7, b"a single document").unwrap();
    /// assert!(store.contains(7));
    /// assert_eq!(store.delete(7).unwrap(), Some(b"a single document".to_vec()));
    /// assert_eq!(store.delete(7).unwrap(), None);
    /// ```
    pub fn insert(&self, doc_id: u64, bytes: &[u8]) -> Result<(), ShardPoisoned> {
        let shard = self.shard_of(doc_id);
        let Some(t) = self.telemetry.clone() else {
            self.write_shard(shard)?.insert(doc_id, bytes);
            return Ok(());
        };
        let start = Instant::now();
        match self.write_shard(shard) {
            Ok(mut guard) => {
                guard.insert(doc_id, bytes);
                drop(guard); // republish before stopping the clock
                t.insert_duration
                    .record_at(shard, start.elapsed().as_nanos() as u64);
                t.docs_inserted.inc();
                Ok(())
            }
            Err(poisoned) => {
                t.shard_poisoned.inc();
                Err(poisoned)
            }
        }
    }

    /// Deletes a document, returning its bytes (`Ok(None)` if absent).
    /// See [`ShardedStore::insert`] for an example and the
    /// [`ShardPoisoned`] error contract.
    pub fn delete(&self, doc_id: u64) -> Result<Option<Vec<u8>>, ShardPoisoned> {
        let shard = self.shard_of(doc_id);
        let Some(t) = self.telemetry.clone() else {
            return Ok(self.write_shard(shard)?.delete(doc_id));
        };
        let start = Instant::now();
        match self.write_shard(shard) {
            Ok(mut guard) => {
                let removed = guard.delete(doc_id);
                drop(guard);
                t.delete_duration
                    .record_at(shard, start.elapsed().as_nanos() as u64);
                if removed.is_some() {
                    t.docs_deleted.inc();
                }
                Ok(removed)
            }
            Err(poisoned) => {
                t.shard_poisoned.inc();
                Err(poisoned)
            }
        }
    }

    /// Inserts a batch, grouped by shard and applied with one thread (and
    /// one lock acquisition) per shard — writers to different shards
    /// proceed in parallel.
    ///
    /// # Errors
    /// Returns the first (lowest-shard) [`ShardPoisoned`] if any target
    /// shard's previous writer panicked; groups routed to healthy shards
    /// are still applied.
    ///
    /// # Panics
    /// Panics if any document id is already present.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert_batch(&[(1, b"alpha".to_vec()), (2, b"beta".to_vec())]).unwrap();
    /// assert_eq!(store.num_docs(), 2);
    /// assert_eq!(store.delete_batch(&[1, 2, 3]).unwrap(), 2); // 3 was never present
    /// ```
    pub fn insert_batch(&self, docs: &[(u64, Vec<u8>)]) -> Result<(), ShardPoisoned> {
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        let result = self.insert_batch_inner(docs);
        if let (Some(t), Some(started)) = (&self.telemetry, started) {
            t.insert_duration
                .record(started.elapsed().as_nanos() as u64);
            match &result {
                Ok(()) => t.docs_inserted.add(docs.len() as u64),
                Err(_) => t.shard_poisoned.inc(),
            }
        }
        result
    }

    fn insert_batch_inner(&self, docs: &[(u64, Vec<u8>)]) -> Result<(), ShardPoisoned> {
        let mut groups: Vec<Vec<(u64, &[u8])>> = vec![Vec::new(); self.shards.len()];
        for (id, bytes) in docs {
            groups[self.shard_of(*id)].push((*id, bytes.as_slice()));
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(groups)
                .filter(|(_, group)| !group.is_empty())
                .map(|(slot, group)| {
                    scope.spawn(move || -> Result<(), ShardPoisoned> {
                        let mut index = slot.write()?;
                        for (id, bytes) in group {
                            index.insert(id, bytes);
                        }
                        Ok(())
                    })
                })
                .collect();
            let mut result = Ok(());
            for handle in handles {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(poisoned)) => result = result.and(Err(poisoned)),
                    // A duplicate insert keeps its panic contract.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            result
        })
    }

    /// Deletes a batch (grouped like [`ShardedStore::insert_batch`], see
    /// there for an example); returns how many of the ids were present
    /// and removed. On [`ShardPoisoned`], deletions routed to healthy
    /// shards are still applied (their count is not reported).
    pub fn delete_batch(&self, ids: &[u64]) -> Result<usize, ShardPoisoned> {
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        let result = self.delete_batch_inner(ids);
        if let (Some(t), Some(started)) = (&self.telemetry, started) {
            t.delete_duration
                .record(started.elapsed().as_nanos() as u64);
            match &result {
                Ok(removed) => t.docs_deleted.add(*removed as u64),
                Err(_) => t.shard_poisoned.inc(),
            }
        }
        result
    }

    fn delete_batch_inner(&self, ids: &[u64]) -> Result<usize, ShardPoisoned> {
        let mut groups: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for &id in ids {
            groups[self.shard_of(id)].push(id);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(groups)
                .filter(|(_, group)| !group.is_empty())
                .map(|(slot, group)| {
                    scope.spawn(move || -> Result<usize, ShardPoisoned> {
                        let mut index = slot.write()?;
                        Ok(group
                            .into_iter()
                            .filter(|&id| index.delete(id).is_some())
                            .count())
                    })
                })
                .collect();
            let mut removed = 0usize;
            let mut result = Ok(());
            for handle in handles {
                match handle.join() {
                    Ok(Ok(n)) => removed += n,
                    Ok(Err(poisoned)) => result = result.and(Err(poisoned)),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            result.map(|()| removed)
        })
    }

    // ------------------------------------------------------------------
    // Bulk ingestion
    // ------------------------------------------------------------------

    /// Bulk-loads a document stream through the static-construction fast
    /// path: documents are hash-routed to their shards, cut into
    /// chunk-sized batches, SA-IS-built directly into static bulk levels
    /// ([`LevelBuilder`]) and installed through each shard's normal
    /// epoch-publish path. Compared to [`ShardedStore::insert_batch`]
    /// this skips the `C0` buffer and every logarithmic-method merge a
    /// document would otherwise pay on its way down the level cascade —
    /// the `fig9_ingest` bench measures the speedup.
    ///
    /// On a pooled store ([`MaintenancePolicy::Periodic`]) chunk builds
    /// run on the shards' resident workers, so different shards build in
    /// parallel while the caller keeps routing; under
    /// [`MaintenancePolicy::Manual`] builds run inline on the calling
    /// thread. Either way queries keep answering from the published
    /// views throughout — each installed chunk becomes visible
    /// atomically when its shard's view republishes.
    ///
    /// Memory stays bounded: at most one chunk of raw documents is
    /// buffered per shard while routing, plus up to two dispatched
    /// chunks in flight per shard.
    ///
    /// # Errors
    /// Returns the first [`ShardPoisoned`] encountered; chunks routed to
    /// healthy shards are still installed (same contract as
    /// [`ShardedStore::insert_batch`]).
    ///
    /// # Panics
    /// Panics if a document id is already present in the store or
    /// duplicated within the stream (same contract as
    /// [`ShardedStore::insert`]; the panic surfaces after in-flight
    /// chunk builds drain).
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// let corpus = (0..100u64).map(|id| (id, format!("bulk doc {id}").into_bytes()));
    /// let stats = store.ingest(corpus).unwrap();
    /// assert_eq!(stats.docs, 100);
    /// assert_eq!(store.num_docs(), 100);
    /// assert_eq!(store.count(b"doc 99"), 1);
    /// assert_eq!(store.stats().ingested_docs, 100);
    /// ```
    pub fn ingest<D>(&self, docs: D) -> Result<IngestStats, ShardPoisoned>
    where
        D: IntoIterator<Item = (u64, Vec<u8>)>,
    {
        self.ingest_with_chunk_symbols(docs, dyndex_core::bulk::DEFAULT_CHUNK_SYMBOLS)
    }

    /// [`ShardedStore::ingest`] with an explicit chunk bound (bytes of
    /// routed documents per built level, per shard). Smaller chunks
    /// lower peak memory and parallelize more finely; larger chunks
    /// amortize construction better. Values below 1 are clamped to 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// let corpus = (0..64u64).map(|id| (id, format!("chunked doc {id}").into_bytes()));
    /// let stats = store.ingest_with_chunk_symbols(corpus, 256).unwrap();
    /// assert!(stats.levels > 1, "a 256-byte chunk bound splits 64 docs");
    /// assert_eq!(store.count(b"chunked"), 64);
    /// ```
    pub fn ingest_with_chunk_symbols<D>(
        &self,
        docs: D,
        chunk_symbols: usize,
    ) -> Result<IngestStats, ShardPoisoned>
    where
        D: IntoIterator<Item = (u64, Vec<u8>)>,
    {
        let started = Instant::now();
        let template = self.builder_template()?.with_chunk_symbols(chunk_symbols);
        let chunk_symbols = template.chunk_symbols(); // clamped
        let num_shards = self.shards.len();
        let mut buffers: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); num_shards];
        let mut buffered_bytes: Vec<usize> = vec![0; num_shards];
        let mut queues: Vec<VecDeque<InFlightChunk>> =
            (0..num_shards).map(|_| VecDeque::new()).collect();
        let mut progress = IngestProgress::default();
        // Time spent *not* routing (blocking on worker replies, or
        // building inline under Manual) — subtracted from the elapsed
        // clock so `ingest_route` reports pure routing + chunk-cutting.
        let mut off_route_nanos = 0u64;
        for (id, bytes) in docs {
            let shard = self.shard_of(id);
            buffered_bytes[shard] += bytes.len();
            buffers[shard].push((id, bytes));
            if buffered_bytes[shard] >= chunk_symbols {
                let batch = std::mem::take(&mut buffers[shard]);
                let batch_bytes = std::mem::take(&mut buffered_bytes[shard]) as u64;
                self.dispatch_chunk(
                    shard,
                    batch,
                    batch_bytes,
                    &template,
                    &mut queues[shard],
                    &mut progress,
                    &mut off_route_nanos,
                );
            }
        }
        // Final partial chunk per shard.
        for shard in 0..num_shards {
            if !buffers[shard].is_empty() {
                let batch = std::mem::take(&mut buffers[shard]);
                let batch_bytes = std::mem::take(&mut buffered_bytes[shard]) as u64;
                self.dispatch_chunk(
                    shard,
                    batch,
                    batch_bytes,
                    &template,
                    &mut queues[shard],
                    &mut progress,
                    &mut off_route_nanos,
                );
            }
        }
        // Drain every in-flight build before reporting or propagating
        // anything, so no worker reply is orphaned.
        for queue in queues.iter_mut() {
            while let Some(chunk) = queue.pop_front() {
                let wait = Instant::now();
                progress.absorb(chunk);
                off_route_nanos += wait.elapsed().as_nanos() as u64;
            }
        }
        let elapsed = started.elapsed();
        self.ingested_docs
            .fetch_add(progress.docs, Ordering::Relaxed);
        let stats = IngestStats {
            docs: progress.docs,
            bytes: progress.bytes,
            levels: progress.levels,
            elapsed,
        };
        if let Some(t) = &self.telemetry {
            let route = (elapsed.as_nanos() as u64).saturating_sub(off_route_nanos);
            t.ingest_route.record(route);
            t.ingest_docs_per_sec.set(stats.docs_per_sec() as u64);
            if progress.poisoned.is_some() {
                t.shard_poisoned.inc();
            }
        }
        if let Some(payload) = progress.panic {
            std::panic::resume_unwind(payload);
        }
        assert!(
            !progress.lost,
            "shard worker exited without answering a bulk build"
        );
        match progress.poisoned {
            Some(poisoned) => Err(poisoned),
            None => Ok(stats),
        }
    }

    /// Sends one routed batch to its shard: onto the resident worker
    /// (bounding in-flight chunks per shard, blocking on the oldest
    /// reply when full), or built inline when no pool exists.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_chunk(
        &self,
        shard: usize,
        batch: Vec<(u64, Vec<u8>)>,
        batch_bytes: u64,
        template: &LevelBuilder<I>,
        queue: &mut VecDeque<InFlightChunk>,
        progress: &mut IngestProgress,
        off_route_nanos: &mut u64,
    ) {
        let docs = batch.len() as u64;
        match &self.pool {
            Some(pool) => {
                if queue.len() >= MAX_INGEST_IN_FLIGHT {
                    let oldest = queue.pop_front().expect("len checked above");
                    let wait = Instant::now();
                    progress.absorb(oldest);
                    *off_route_nanos += wait.elapsed().as_nanos() as u64;
                }
                let builder = template.clone();
                let telemetry = self.telemetry.clone();
                let (reply, rx) = mpsc::channel();
                pool.submit(
                    shard,
                    Box::new(move |slot: &ShardSlot<I>| {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            build_install_chunk(slot, shard, &builder, &batch, telemetry.as_deref())
                        }));
                        let _ = reply.send(result);
                    }),
                );
                queue.push_back(InFlightChunk {
                    rx,
                    docs,
                    bytes: batch_bytes,
                });
            }
            None => {
                let inline = Instant::now();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    build_install_chunk(
                        &self.shards[shard],
                        shard,
                        template,
                        &batch,
                        self.telemetry.as_deref(),
                    )
                }));
                match result {
                    Ok(Ok(())) => {
                        progress.docs += docs;
                        progress.bytes += batch_bytes;
                        progress.levels += 1;
                    }
                    Ok(Err(poisoned)) => {
                        progress.poisoned.get_or_insert(poisoned);
                    }
                    Err(payload) => {
                        progress.panic.get_or_insert(payload);
                    }
                }
                *off_route_nanos += inline.elapsed().as_nanos() as u64;
            }
        }
    }

    /// A [`LevelBuilder`] copying the first healthy shard's index
    /// configuration (every shard is constructed identically, so any one
    /// serves as the template).
    fn builder_template(&self) -> Result<LevelBuilder<I>, ShardPoisoned> {
        let mut first_err = None;
        for slot in self.shards.iter() {
            match slot.write() {
                Ok(guard) => return Ok(guard.level_builder()),
                Err(poisoned) => {
                    first_err.get_or_insert(poisoned);
                }
            }
        }
        Err(first_err.expect("store has at least one shard"))
    }

    /// Builds `docs` into one bulk level on the given shard,
    /// synchronously on the calling thread (the persistence layer's
    /// hook: `DurableStore::ingest` calls this after logging the chunk's
    /// WAL record, and WAL replay calls it to re-apply logged chunks).
    /// The caller is responsible for routing — every id must hash to
    /// `shard`.
    #[doc(hidden)]
    pub fn bulk_load_shard(
        &self,
        shard: usize,
        docs: &[(u64, Vec<u8>)],
    ) -> Result<(), ShardPoisoned> {
        if docs.is_empty() {
            return Ok(());
        }
        let builder = self.shards[shard].write()?.level_builder();
        build_install_chunk(
            &self.shards[shard],
            shard,
            &builder,
            docs,
            self.telemetry.as_deref(),
        )?;
        self.ingested_docs
            .fetch_add(docs.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Whether `doc_id` is present, per the owning shard's published
    /// view (no fan-out, no lock; see [`ShardedStore::insert`] for an
    /// example).
    pub fn contains(&self, doc_id: u64) -> bool {
        self.shards[self.shard_of(doc_id)].view().contains(doc_id)
    }

    /// Alive documents across all shards (one view load per shard; see
    /// [`ShardedStore::insert_batch`] for an example).
    pub fn num_docs(&self) -> usize {
        self.shards.iter().map(|s| s.view().num_docs()).sum()
    }

    /// Alive bytes across all shards (cross-reference:
    /// [`ShardedStore::num_docs`]).
    pub fn symbol_count(&self) -> usize {
        self.shards.iter().map(|s| s.view().symbol_count()).sum()
    }

    /// Counts occurrences of `pattern`, fanning out across shards (on
    /// the resident workers by default — see [`FanOutPolicy`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert_batch(&[(1, b"needle in shard".to_vec()), (2, b"another needle".to_vec())]).unwrap();
    /// assert_eq!(store.count(b"needle"), 2);
    /// assert_eq!(store.count(b"absent"), 0);
    /// ```
    pub fn count(&self, pattern: &[u8]) -> usize {
        let trace = self.begin_query();
        let root = trace.map_or(0, |(_, root, _)| root);
        let (per_shard, probe) = if self.use_pool() {
            let pattern = pattern.to_vec();
            self.fan_out_pooled(move |view| view.count(&pattern), root)
        } else {
            self.fan_out_scoped(&|view: &ShardView<I>| view.count(pattern), root)
        };
        let total: usize = per_shard.into_iter().sum();
        if let (Some(t), Some((started, root, start_nanos))) = (&self.telemetry, trace) {
            t.record_query(
                QueryKind::Count,
                started,
                probe,
                self.shards.len(),
                total,
                root,
                start_nanos,
            );
        }
        total
    }

    /// All occurrences of `pattern`, fanned out across shards and merged
    /// deterministically: the result is sorted by `(doc, offset)`, so it
    /// is byte-identical to a sorted unsharded query over the same
    /// documents regardless of shard count, fan-out policy, or thread
    /// timing.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert_batch(&[(1, b"ab ab".to_vec()), (2, b"ab".to_vec())]).unwrap();
    /// let hits = store.find(b"ab");
    /// assert_eq!(hits.len(), 3);
    /// assert!(hits.windows(2).all(|w| w[0] < w[1]), "sorted by (doc, offset)");
    /// ```
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        let trace = self.begin_query();
        let root = trace.map_or(0, |(_, root, _)| root);
        let (per_shard, probe) = if self.use_pool() {
            let pattern = pattern.to_vec();
            self.fan_out_pooled(move |view| view.find(&pattern), root)
        } else {
            self.fan_out_scoped(&|view: &ShardView<I>| view.find(pattern), root)
        };
        let mut merged: Vec<Occurrence> = per_shard.into_iter().flatten().collect();
        merged.sort_unstable();
        if let (Some(t), Some((started, root, start_nanos))) = (&self.telemetry, trace) {
            t.record_query(
                QueryKind::Find,
                started,
                probe,
                self.shards.len(),
                merged.len(),
                root,
                start_nanos,
            );
        }
        merged
    }

    /// Up to `limit` occurrences of `pattern` (sorted). Each shard's work
    /// is capped at `limit` located occurrences
    /// ([`Transform2Index::find_limit`]), so total fan-out work is
    /// `O(num_shards · (range-finding + limit · tlocate))`. Which
    /// occurrences are returned depends on shard-internal layout at query
    /// time: deterministic under [`RebuildMode::Inline`] with manual
    /// maintenance, but with background rebuilds the truncation choice
    /// can vary with install timing (the underlying occurrence set is
    /// always exact — `limit >= count` returns everything). The fan-out
    /// policy never affects the answer: pooled and scoped execution are
    /// byte-identical given the same shard layouts.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert_batch(&[(1, b"xy xy xy".to_vec()), (2, b"xy".to_vec())]).unwrap();
    /// assert_eq!(store.find_limit(b"xy", 2).len(), 2);
    /// assert_eq!(store.find_limit(b"xy", 100).len(), 4); // limit >= count: everything
    /// ```
    pub fn find_limit(&self, pattern: &[u8], limit: usize) -> Vec<Occurrence> {
        let trace = self.begin_query();
        let root = trace.map_or(0, |(_, root, _)| root);
        let (per_shard, probe) = if self.use_pool() {
            let pattern = pattern.to_vec();
            self.fan_out_pooled(move |view| view.find_limit(&pattern, limit), root)
        } else {
            self.fan_out_scoped(&|view: &ShardView<I>| view.find_limit(pattern, limit), root)
        };
        let mut merged: Vec<Occurrence> = per_shard.into_iter().flatten().collect();
        merged.sort_unstable();
        merged.truncate(limit);
        if let (Some(t), Some((started, root, start_nanos))) = (&self.telemetry, trace) {
            t.record_query(
                QueryKind::FindLimit,
                started,
                probe,
                self.shards.len(),
                merged.len(),
                root,
                start_nanos,
            );
        }
        merged
    }

    /// Extracts up to `len` bytes of a document from `offset` (per the
    /// owning shard's published view; no fan-out, no lock).
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert(3, b"zero one two").unwrap();
    /// assert_eq!(store.extract(3, 5, 3).as_deref(), Some(b"one".as_slice()));
    /// assert_eq!(store.extract(4, 0, 3), None);
    /// ```
    pub fn extract(&self, doc_id: u64, offset: usize, len: usize) -> Option<Vec<u8>> {
        self.shards[self.shard_of(doc_id)]
            .view()
            .extract(doc_id, offset, len)
    }

    // ------------------------------------------------------------------
    // Maintenance & observability
    // ------------------------------------------------------------------

    /// Quiesce point. First drains the worker-pool request queues (every
    /// query submitted before `flush` began completes), then acquires
    /// every shard's write lock simultaneously (in shard order, so
    /// concurrent flushes cannot deadlock) — which waits out any
    /// in-flight writer batches — and installs all pending background
    /// rebuild work. After `flush` returns the store is settled: no
    /// queued requests, no jobs in flight, no locked or temp structures.
    /// That is the state snapshots capture and the easiest state to
    /// assert against in tests.
    ///
    /// Unlike [`ShardedStore::finish_background_work`] (which visits
    /// shards one at a time), `flush` holds all shards at once, so no
    /// writer can slip a new job into an already-visited shard while a
    /// later one is still draining.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert_batch(&[(1, b"settle me".to_vec()), (2, b"me too".to_vec())]).unwrap();
    /// store.flush();
    /// assert_eq!(store.pending_background_jobs(), 0);
    /// ```
    pub fn flush(&self) {
        if let Some(pool) = &self.pool {
            pool.drain();
        }
        // Poisoned shards are skipped: their writer state is frozen at
        // the last published view and cannot be quiesced.
        let mut guards: Vec<ShardGuard<'_, I>> =
            self.shards.iter().filter_map(|s| s.write().ok()).collect();
        for guard in guards.iter_mut() {
            guard.finish_background_work();
        }
    }

    /// Acquires every shard's write lock in shard order (the persistence
    /// layer's stop-the-world snapshot hook). Each returned guard
    /// republishes its shard's view on drop.
    ///
    /// # Panics
    /// Panics if any shard is poisoned (snapshotting a shard whose
    /// writer panicked mid-mutation would capture torn state).
    #[doc(hidden)]
    pub fn lock_all_shards(&self) -> Vec<ShardGuard<'_, I>> {
        self.shards
            .iter()
            .map(|s| s.write().expect("shard lock poisoned"))
            .collect()
    }

    /// Acquires one shard's write lock (persistence-layer hook; pair
    /// with [`ShardedStore::lock_all_shards`]). The guard republishes
    /// the shard's view on drop.
    #[doc(hidden)]
    pub fn lock_shard(&self, shard: usize) -> ShardGuard<'_, I> {
        self.shards[shard].write().expect("shard lock poisoned")
    }

    /// Quiesces one shard and clones its frozen decomposition — the
    /// background-snapshot hook. The shard's write lock is held only for
    /// the quiesce (finishing that shard's in-flight rebuilds) plus
    /// O(levels) `Arc` clones; every other shard keeps serving reads and
    /// writes throughout, and serialization of the returned snapshot
    /// happens entirely off-lock.
    #[doc(hidden)]
    pub fn freeze_shard(&self, shard: usize) -> FrozenSnapshot<I> {
        let mut guard = self.shards[shard].write().expect("shard lock poisoned");
        guard.finish_background_work();
        guard
            .freeze()
            .expect("finish_background_work leaves the shard quiesced")
    }

    /// Enqueues `f` on `shard`'s resident worker, interleaved with that
    /// shard's query service (the persistence layer runs snapshot
    /// serialization here). Returns `false` — without running `f` — when
    /// no pool exists ([`MaintenancePolicy::Manual`]); the caller then
    /// runs the work inline.
    #[doc(hidden)]
    pub fn submit_background_job(&self, shard: usize, f: Box<dyn FnOnce() + Send>) -> bool {
        match &self.pool {
            Some(pool) => {
                pool.submit(shard, Box::new(move |_slot| f()));
                true
            }
            None => false,
        }
    }

    /// Flags a background snapshot as queued/running (persistence-layer
    /// hook; surfaced as [`StoreStats::snapshot_in_progress`]).
    #[doc(hidden)]
    pub fn set_snapshot_in_progress(&self, value: bool) {
        self.snapshot_in_progress.store(value, Ordering::Release);
    }

    /// Whether a background snapshot currently has serialization work
    /// queued or running on the worker pool.
    pub fn snapshot_in_progress(&self) -> bool {
        self.snapshot_in_progress.load(Ordering::Acquire)
    }

    /// The commit id of the snapshot this store's state descends from
    /// (persistence-layer hook: delta snapshots reuse level files only
    /// when the directory's committed snapshot matches this lineage —
    /// fork detection against diverged copies).
    #[doc(hidden)]
    pub fn snapshot_lineage(&self) -> u64 {
        self.lineage.load(Ordering::Relaxed)
    }

    /// Records the snapshot commit this store's state now descends from
    /// (persistence-layer hook: called after a successful snapshot
    /// commit and on restore), so the next snapshot into the same
    /// directory keeps reusing unchanged files.
    #[doc(hidden)]
    pub fn set_snapshot_lineage(&self, commit_uid: u64) {
        self.lineage.store(commit_uid, Ordering::Relaxed);
    }

    /// Wraps already-built shard indexes (the persistence layer's restore
    /// path), re-creating the worker pool per `maintenance` + `fan_out`
    /// and publishing each shard's initial view — a restored store's
    /// lock-free read path answers from the restored state immediately.
    /// Passing [`Telemetry::Shared`] with the predecessor's registry
    /// makes the restored store keep recording into the same series.
    ///
    /// # Panics
    /// Panics if `indexes` is empty.
    #[doc(hidden)]
    pub fn from_shard_indexes(
        indexes: Vec<Transform2Index<I>>,
        maintenance: MaintenancePolicy,
        fan_out: FanOutPolicy,
        telemetry: &Telemetry,
    ) -> Self {
        Self::with_shards(
            indexes,
            maintenance,
            fan_out,
            telemetry,
            HealthOptions::default(),
            None,
        )
    }

    /// Runs one manual maintenance pass: installs every finished
    /// background job in every shard (without blocking on unfinished
    /// ones). Returns the number of jobs still in flight. Cross-reference:
    /// [`ShardedStore::finish_background_work`] blocks until zero.
    pub fn maintain(&self) -> usize {
        self.shards
            .iter()
            .map(|slot| match slot.write() {
                Ok(mut guard) => guard.poll_background_work(),
                // Poisoned: nothing can install; report the last
                // published pending count.
                Err(_) => slot.view().pending_jobs(),
            })
            .sum()
    }

    /// Blocks until every shard's background work is installed (see
    /// [`ShardedStore::flush`] for the stronger all-shards-at-once
    /// quiesce, with an example).
    pub fn finish_background_work(&self) {
        for slot in self.shards.iter() {
            if let Ok(mut guard) = slot.write() {
                guard.finish_background_work();
            }
        }
    }

    /// Background jobs currently in flight across all shards
    /// (cross-reference: [`ShardedStore::flush`] drives this to zero).
    pub fn pending_background_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.view().pending_jobs()).sum()
    }

    /// Rebuild jobs installed by the resident workers between requests
    /// (0 under [`MaintenancePolicy::Manual`]) — how much install work
    /// stayed off the foreground path.
    pub fn pool_installs(&self) -> u64 {
        self.pool.as_ref().map_or(0, WorkerPool::installs)
    }

    /// Aggregated census: per-shard doc/symbol counts, pending-work and
    /// request-queue depth, worker busyness, and the full per-level
    /// structure breakdown.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert_batch(&[(1, b"census".to_vec()), (2, b"me".to_vec())]).unwrap();
    /// store.flush();
    /// let stats = store.stats();
    /// assert_eq!(stats.shards.len(), 4);
    /// assert_eq!(stats.total_docs(), 2);
    /// assert_eq!(stats.queued_requests(), 0); // settled after flush
    /// ```
    pub fn stats(&self) -> StoreStats {
        let pool = self.pool.as_ref();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(shard, slot)| {
                // One pass per shard: a single view load carries the
                // whole index census, and the paired queue-depth/busy
                // gauges are read together from the pool handle — never
                // two separate lock acquisitions at different instants.
                let view = slot.view();
                let (queued_requests, worker_busy) =
                    pool.map_or((0, false), |p| p.shard_gauges(shard));
                ShardStats {
                    shard,
                    docs: view.num_docs(),
                    symbols: view.symbol_count(),
                    pending_jobs: view.pending_jobs(),
                    queued_requests,
                    worker_busy,
                    levels: view.structure_stats(),
                }
            })
            .collect();
        let query_p99 = self.telemetry.as_ref().and_then(|t| {
            let snap = t.query_duration.snapshot();
            (snap.count() > 0).then(|| Duration::from_nanos(snap.percentile(0.99)))
        });
        let (retired_garbage, _) = crate::epoch::epoch_stats();
        let ingest_docs_per_sec = self.telemetry.as_ref().and_then(|t| {
            let rate = t.ingest_docs_per_sec.get();
            (rate > 0).then_some(rate)
        });
        StoreStats {
            shards,
            snapshot_bytes: None,
            snapshot_in_progress: self.snapshot_in_progress(),
            query_p99,
            wal_fsync_p99: None,
            retired_garbage,
            ingested_docs: self.ingested_docs.load(Ordering::Relaxed),
            ingest_docs_per_sec,
        }
    }

    // ------------------------------------------------------------------
    // Telemetry
    // ------------------------------------------------------------------

    /// The registry this store records into, for custom metrics or
    /// direct handle access (`None` under [`Telemetry::Disabled`]).
    /// Restoring a snapshot with `Telemetry::Shared` of this registry
    /// keeps the series accumulating across the restart.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions, Telemetry};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert(1, b"measured document").unwrap();
    /// store.count(b"measured");
    /// let registry = store.metrics().expect("telemetry defaults to enabled");
    /// let queries = registry.find_histogram("dyndex_store_query_duration").unwrap();
    /// assert_eq!(queries.snapshot().count(), 1);
    ///
    /// let silent: ShardedStore<FmIndexCompressed> = ShardedStore::new(
    ///     FmConfig { sample_rate: 8 },
    ///     StoreOptions { telemetry: Telemetry::Disabled, ..StoreOptions::default() },
    /// );
    /// assert!(silent.metrics().is_none());
    /// ```
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.telemetry.as_ref().map(|t| Arc::clone(&t.registry))
    }

    /// Prometheus-style text exposition of every metric (refreshing the
    /// epoch-reclamation gauges first); `None` under
    /// [`Telemetry::Disabled`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert(1, b"exposed").unwrap();
    /// let text = store.render_metrics().unwrap();
    /// assert!(text.contains("dyndex_store_docs_inserted 1"));
    /// assert!(text.contains("# TYPE dyndex_store_insert_duration summary"));
    /// ```
    pub fn render_metrics(&self) -> Option<String> {
        self.telemetry.as_ref().map(|t| {
            t.sync_exposition();
            t.registry.render_text()
        })
    }

    /// Runs the health watchdog's detectors right now and folds the
    /// findings into a typed report — the same check the admin
    /// endpoint's `/health` route serves. Detectors read shared atomics
    /// (and one metric-registry lookup); a check never takes a shard
    /// lock, so it stays answerable while something is stuck.
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{HealthStatus, ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// let report = store.health();
    /// assert_eq!(report.status, HealthStatus::Ok);
    /// assert_eq!(report.to_string(), "ok");
    /// ```
    pub fn health(&self) -> HealthReport {
        self.health.check()
    }

    /// The address the admin endpoint actually listens on (`None` when
    /// [`StoreOptions::admin`] was `None`). With port `0` in the
    /// requested address, this is how the OS-picked port is read back.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(AdminServer::addr)
    }

    /// The store's flight recorder (`None` under
    /// [`Telemetry::Disabled`]) — direct access to recent span trees,
    /// the slow-op log, and the recorder's clock.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.telemetry.as_ref().map(|t| Arc::clone(&t.flight))
    }

    /// Recent flight-recorder spans (roots and children, sorted by start
    /// time), empty under [`Telemetry::Disabled`]. The rendered form —
    /// what the admin endpoint's `/spans` serves — is
    /// [`FlightRecorder::render_spans`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, SpanKind, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert(1, b"flight recorded").unwrap();
    /// store.count(b"recorded");
    /// let spans = store.flight_spans();
    /// assert!(spans.iter().any(|s| s.kind == SpanKind::Count && s.parent == 0));
    /// assert!(spans.iter().any(|s| s.kind == SpanKind::ShardExecute));
    /// ```
    pub fn flight_spans(&self) -> Vec<Span> {
        self.telemetry
            .as_ref()
            .map_or_else(Vec::new, |t| t.flight.recent())
    }

    /// The most recent query spans (route → queue-wait → shard-execute →
    /// merge, with the view epochs served from), oldest first. Empty
    /// under [`Telemetry::Disabled`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dyndex_core::FmConfig;
    /// use dyndex_store::{ShardedStore, StoreOptions};
    /// use dyndex_text::FmIndexCompressed;
    ///
    /// let store: ShardedStore<FmIndexCompressed> =
    ///     ShardedStore::new(FmConfig { sample_rate: 8 }, StoreOptions::default());
    /// store.insert(1, b"traced needle").unwrap();
    /// store.count(b"needle");
    /// let spans = store.recent_spans();
    /// assert_eq!(spans.len(), 1);
    /// assert_eq!(spans[0].shards, 4);
    /// assert!(spans[0].min_epoch >= 1, "served from a published view");
    /// ```
    pub fn recent_spans(&self) -> Vec<QuerySpan> {
        self.telemetry
            .as_ref()
            .map_or_else(Vec::new, |t| t.tracer.recent())
    }

    /// Records one finished snapshot generation (persistence-layer hook):
    /// wall-clock duration plus bytes newly written vs reused from the
    /// previous generation. No-op under [`Telemetry::Disabled`].
    #[doc(hidden)]
    pub fn record_snapshot_metrics(&self, nanos: u64, bytes_written: u64, bytes_reused: u64) {
        if let Some(t) = &self.telemetry {
            t.snapshot_duration.record(nanos);
            t.snapshot_bytes_written.add(bytes_written);
            t.snapshot_bytes_reused.add(bytes_reused);
        }
    }
}

impl<I: StaticIndex + Sync> SpaceUsage for ShardedStore<I> {
    fn heap_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.view().heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndex_core::{FmConfig, NaiveIndex};
    use dyndex_text::FmIndexCompressed;
    use std::sync::atomic::{AtomicBool, Ordering};

    type Store = ShardedStore<FmIndexCompressed>;

    fn small_opts(num_shards: usize, mode: RebuildMode) -> StoreOptions {
        StoreOptions {
            num_shards,
            index: DynOptions {
                min_capacity: 32,
                tau: 4,
                ..DynOptions::default()
            },
            mode,
            maintenance: MaintenancePolicy::Manual,
            fan_out: FanOutPolicy::Pooled,
            telemetry: Telemetry::default(),
            health: HealthOptions::default(),
            admin: None,
        }
    }

    fn pooled_opts(num_shards: usize, mode: RebuildMode) -> StoreOptions {
        StoreOptions {
            maintenance: MaintenancePolicy::Periodic(Duration::from_micros(200)),
            ..small_opts(num_shards, mode)
        }
    }

    fn fm() -> FmConfig {
        FmConfig { sample_rate: 4 }
    }

    fn docs(n: u64) -> Vec<(u64, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let doc = format!(
                    "document {i} shared needle {}",
                    "pad".repeat(i as usize % 5)
                );
                (i, doc.into_bytes())
            })
            .collect()
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        for id in 0..1000u64 {
            let s = store.shard_of(id);
            assert!(s < 4);
            assert_eq!(s, store.shard_of(id), "routing must be stable");
        }
        // SplitMix64 routing must actually spread sequential ids.
        let mut hit = [false; 4];
        for id in 0..64u64 {
            hit[store.shard_of(id)] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards reachable: {hit:?}");
    }

    #[test]
    fn matches_naive_reference() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        let mut naive = NaiveIndex::new();
        for (id, d) in docs(40) {
            store.insert(id, &d).unwrap();
            naive.insert(id, &d);
        }
        for pattern in [b"needle".as_slice(), b"document 1", b"pad", b"absent"] {
            assert_eq!(store.count(pattern), naive.count(pattern));
            // NaiveIndex::find returns sorted occurrences; the store's
            // deterministic merge must agree exactly.
            assert_eq!(store.find(pattern), naive.find(pattern));
        }
        assert_eq!(store.num_docs(), 40);
        assert!(store.contains(7));
        assert_eq!(store.delete(7).unwrap(), naive.delete(7));
        assert!(!store.contains(7));
        assert_eq!(store.find(b"needle"), naive.find(b"needle"));
        assert_eq!(store.delete(7).unwrap(), None);
    }

    #[test]
    fn pooled_fan_out_matches_naive_reference() {
        let store = Store::new(fm(), pooled_opts(4, RebuildMode::Inline));
        assert_eq!(store.fan_out_policy(), FanOutPolicy::Pooled);
        assert_eq!(store.worker_threads(), 4);
        let mut naive = NaiveIndex::new();
        for (id, d) in docs(40) {
            store.insert(id, &d).unwrap();
            naive.insert(id, &d);
        }
        for pattern in [b"needle".as_slice(), b"document 1", b"pad", b"absent"] {
            assert_eq!(store.count(pattern), naive.count(pattern));
            assert_eq!(store.find(pattern), naive.find(pattern));
        }
        assert_eq!(store.delete(7).unwrap(), naive.delete(7));
        assert_eq!(store.find(b"needle"), naive.find(b"needle"));
    }

    #[test]
    fn manual_maintenance_falls_back_to_scoped_spawn() {
        let store = Store::new(fm(), small_opts(3, RebuildMode::Inline));
        assert_eq!(store.worker_threads(), 0, "Manual spawns no workers");
        assert_eq!(store.fan_out_policy(), FanOutPolicy::ScopedSpawn);
        store.insert_batch(&docs(12)).unwrap();
        assert_eq!(store.count(b"needle"), 12);
    }

    #[test]
    fn explicit_scoped_spawn_keeps_workers_for_maintenance_only() {
        let store = Store::new(
            fm(),
            StoreOptions {
                fan_out: FanOutPolicy::ScopedSpawn,
                ..pooled_opts(3, RebuildMode::Background)
            },
        );
        assert_eq!(store.worker_threads(), 3, "workers still run maintenance");
        assert_eq!(store.fan_out_policy(), FanOutPolicy::ScopedSpawn);
        store.insert_batch(&docs(120)).unwrap();
        // Only the workers' between-request drains can install these.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.pending_background_jobs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(store.pending_background_jobs(), 0, "workers must drain");
        assert_eq!(store.count(b"needle"), 120);
    }

    #[test]
    fn batches_match_singles() {
        let batch = docs(60);
        let batched = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        batched.insert_batch(&batch).unwrap();
        let single = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        for (id, d) in &batch {
            single.insert(*id, d).unwrap();
        }
        assert_eq!(batched.num_docs(), single.num_docs());
        assert_eq!(batched.symbol_count(), single.symbol_count());
        assert_eq!(batched.find(b"needle"), single.find(b"needle"));

        let ids: Vec<u64> = (0..30).chain(100..110).collect();
        assert_eq!(batched.delete_batch(&ids).unwrap(), 30, "10 ids are absent");
        for id in 0..30u64 {
            single.delete(id).unwrap();
        }
        assert_eq!(batched.find(b"needle"), single.find(b"needle"));
        assert_eq!(batched.num_docs(), 30);
    }

    #[test]
    fn find_limit_caps_and_sorts() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        store.insert_batch(&docs(50)).unwrap();
        let all = store.find(b"needle");
        assert_eq!(all.len(), 50);
        for k in [0usize, 1, 13, 50, 200] {
            let capped = store.find_limit(b"needle", k);
            assert_eq!(capped.len(), k.min(50), "limit {k}");
            assert!(capped.windows(2).all(|w| w[0] < w[1]), "sorted, limit {k}");
            for occ in &capped {
                assert!(all.contains(occ), "phantom occurrence at limit {k}");
            }
        }
    }

    #[test]
    fn pooled_answers_are_byte_identical_to_scoped() {
        // Same op sequence, Inline rebuilds → identical shard layouts, so
        // even find_limit truncation must agree byte-for-byte between the
        // two execution models.
        let pooled = Store::new(fm(), pooled_opts(4, RebuildMode::Inline));
        let scoped = Store::new(
            fm(),
            StoreOptions {
                fan_out: FanOutPolicy::ScopedSpawn,
                ..pooled_opts(4, RebuildMode::Inline)
            },
        );
        let batch = docs(50);
        pooled.insert_batch(&batch).unwrap();
        scoped.insert_batch(&batch).unwrap();
        for pattern in [b"needle".as_slice(), b"pad", b"document 4", b"absent"] {
            assert_eq!(pooled.count(pattern), scoped.count(pattern));
            assert_eq!(pooled.find(pattern), scoped.find(pattern));
            for limit in [0usize, 1, 7, 50, 500] {
                assert_eq!(
                    pooled.find_limit(pattern, limit),
                    scoped.find_limit(pattern, limit),
                    "find_limit({limit})"
                );
            }
        }
    }

    #[test]
    fn extract_routes_to_owning_shard() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        store.insert(9, b"zero one two three").unwrap();
        assert_eq!(store.extract(9, 5, 3).as_deref(), Some(b"one".as_slice()));
        assert_eq!(store.extract(10, 0, 4), None);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        let batch = docs(80);
        let symbols: usize = batch.iter().map(|(_, d)| d.len()).sum();
        store.insert_batch(&batch).unwrap();
        store.finish_background_work();
        let stats = store.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.total_docs(), 80);
        assert_eq!(stats.total_symbols(), symbols);
        assert_eq!(stats.pending_jobs(), 0);
        assert_eq!(stats.queued_requests(), 0, "no pool under Manual");
        assert_eq!(stats.busy_workers(), 0);
        assert!(stats.shards.iter().all(|s| !s.levels.is_empty()));
        assert!(stats.imbalance() >= 1.0);
    }

    #[test]
    fn manual_maintenance_drains_background_jobs() {
        let store = Store::new(fm(), small_opts(3, RebuildMode::Background));
        store.insert_batch(&docs(120)).unwrap();
        // Drain without foreground operations: poll until all installs
        // land (bounded; background builds are small and finish quickly).
        let mut pending = store.maintain();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pending > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
            pending = store.maintain();
        }
        assert_eq!(pending, 0, "maintenance must drain all jobs");
        assert_eq!(store.pending_background_jobs(), 0);
        assert_eq!(store.count(b"needle"), 120);
    }

    #[test]
    fn workers_drain_rebuilds_without_foreground_ops() {
        let store = Store::new(fm(), pooled_opts(4, RebuildMode::Background));
        store.insert_batch(&docs(150)).unwrap();
        // No foreground operations from here on: only the workers'
        // between-request maintenance can install the in-flight rebuilds.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.pending_background_jobs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(store.pending_background_jobs(), 0, "workers must drain");
        assert!(store.pool_installs() > 0, "installs attributed to the pool");
        assert_eq!(store.count(b"needle"), 150);
        assert_eq!(store.find(b"needle").len(), 150);
    }

    #[test]
    fn single_shard_store_works() {
        let store = Store::new(fm(), small_opts(1, RebuildMode::Inline));
        store.insert_batch(&docs(10)).unwrap();
        assert_eq!(store.num_shards(), 1);
        assert_eq!(store.count(b"needle"), 10);
        assert_eq!(store.find(b"needle").len(), 10);
    }

    #[test]
    fn flush_settles_everything() {
        let store = Store::new(fm(), small_opts(3, RebuildMode::Background));
        store.insert_batch(&docs(100)).unwrap();
        store.flush();
        assert_eq!(store.pending_background_jobs(), 0, "flush drains all jobs");
        assert_eq!(store.count(b"needle"), 100);
        // Flushing an already-settled (or empty) store is a no-op.
        store.flush();
        let empty = Store::new(fm(), small_opts(2, RebuildMode::Inline));
        empty.flush();
        assert_eq!(empty.num_docs(), 0);
    }

    #[test]
    fn flush_waits_for_queued_requests() {
        // Regression for the "all-shards quiesce" contract: a request
        // already sitting in a worker's queue when flush() starts must
        // complete before flush() returns.
        let store = Store::new(fm(), pooled_opts(2, RebuildMode::Inline));
        store.insert_batch(&docs(10)).unwrap();
        let ran = Arc::new(AtomicBool::new(false));
        let t0 = std::time::Instant::now();
        for shard in 0..store.num_shards() {
            let ran = Arc::clone(&ran);
            store.pool.as_ref().expect("pooled store").submit(
                shard,
                Box::new(move |_slot| {
                    std::thread::sleep(Duration::from_millis(25));
                    ran.store(true, Ordering::Release);
                }),
            );
        }
        store.flush();
        assert!(
            ran.load(Ordering::Acquire),
            "flush returned before the queued request completed"
        );
        // Every sleep job started after t0 and the flush barrier queues
        // behind it, so flush cannot return earlier than t0 + 25ms.
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(store.stats().queued_requests(), 0);
    }

    #[test]
    fn from_shard_indexes_rewraps_prebuilt_shards() {
        let store = Store::new(fm(), small_opts(2, RebuildMode::Inline));
        store.insert_batch(&docs(20)).unwrap();
        store.flush();
        let want = store.find(b"needle");
        let mut guards = store.lock_all_shards();
        let indexes: Vec<_> = guards
            .iter_mut()
            .map(|g| {
                std::mem::replace(
                    &mut **g,
                    Transform2Index::new(fm(), DynOptions::default(), RebuildMode::Inline),
                )
            })
            .collect();
        drop(guards);
        let rebuilt = Store::from_shard_indexes(
            indexes,
            MaintenancePolicy::Periodic(Duration::from_micros(200)),
            FanOutPolicy::Pooled,
            &Telemetry::default(),
        );
        assert_eq!(rebuilt.num_shards(), 2);
        assert_eq!(rebuilt.worker_threads(), 2, "pool re-created");
        assert_eq!(rebuilt.fan_out_policy(), FanOutPolicy::Pooled);
        assert_eq!(rebuilt.find(b"needle"), want);
        assert_eq!(store.num_docs(), 0, "shards were moved out");
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut opts = small_opts(2, RebuildMode::Inline);
        opts.telemetry = Telemetry::Disabled;
        let store = Store::new(fm(), opts);
        store.insert_batch(&docs(10)).unwrap();
        assert_eq!(store.count(b"needle"), 10);
        assert!(store.metrics().is_none());
        assert!(store.render_metrics().is_none());
        assert!(store.recent_spans().is_empty());
        assert!(store.stats().query_p99.is_none());
    }

    #[test]
    fn queries_record_metrics_and_spans() {
        let store = Store::new(fm(), pooled_opts(4, RebuildMode::Inline));
        store.insert_batch(&docs(40)).unwrap();
        assert_eq!(store.count(b"needle"), 40);
        assert_eq!(store.find(b"document 7 ").len(), 1);

        let registry = store.metrics().expect("telemetry on by default");
        let queries = registry.counter("dyndex_store_queries", "", dyndex_obs::Unit::Count);
        assert_eq!(queries.get(), 2);
        let inserted = registry.counter("dyndex_store_docs_inserted", "", dyndex_obs::Unit::Count);
        assert_eq!(inserted.get(), 40);
        let duration = registry
            .find_histogram("dyndex_store_query_duration")
            .expect("registered at construction");
        assert_eq!(duration.snapshot().count(), 2);

        let spans = store.recent_spans();
        assert_eq!(spans.len(), 2, "one span per query");
        assert!(spans.iter().all(|s| s.shards == 4));
        assert!(spans.iter().all(|s| s.min_epoch >= 1), "views published");
        assert_eq!(spans[0].kind, QueryKind::Count);
        assert_eq!(spans[1].kind, QueryKind::Find);
        assert_eq!(spans[1].results, 1);

        let stats = store.stats();
        assert!(stats.query_p99.is_some(), "p99 fed from the histogram");
        let text = store.render_metrics().expect("telemetry on");
        assert!(text.contains("dyndex_store_queries 2"), "{text}");
    }

    #[test]
    fn shared_registry_accumulates_across_stores() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut opts = small_opts(2, RebuildMode::Inline);
        opts.telemetry = Telemetry::Shared(Arc::clone(&registry));
        let first = Store::new(fm(), opts.clone());
        first.insert(1, b"one doc").unwrap();
        drop(first);
        let second = Store::new(fm(), opts);
        second.insert(2, b"two doc").unwrap();
        let inserted = registry.counter("dyndex_store_docs_inserted", "", dyndex_obs::Unit::Count);
        assert_eq!(inserted.get(), 2, "both stores fed the same series");
    }

    #[test]
    fn poisoned_writes_are_counted() {
        let store = Store::new(fm(), small_opts(1, RebuildMode::Inline));
        store.insert(1, b"first").unwrap();
        // A panic inside the writer poisons the single shard.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = store.insert(1, b"duplicate");
        }));
        assert!(panicked.is_err());
        assert!(store.insert(2, b"rejected").is_err(), "shard is poisoned");
        let registry = store.metrics().expect("telemetry on by default");
        let poisoned = registry.counter("dyndex_store_shard_poisoned", "", dyndex_obs::Unit::Count);
        assert_eq!(poisoned.get(), 1);
    }

    #[test]
    fn ingest_matches_insert_at_a_time() {
        let bulk = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        let serial = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        let batch = docs(60);
        serial.insert_batch(&batch).unwrap();
        let stats = bulk.ingest_with_chunk_symbols(batch.clone(), 200).unwrap();
        assert_eq!(stats.docs, 60);
        assert_eq!(
            stats.bytes,
            batch.iter().map(|(_, d)| d.len() as u64).sum::<u64>()
        );
        assert!(stats.levels >= 4, "60 docs over 200-byte chunks: {stats:?}");
        assert_eq!(bulk.num_docs(), serial.num_docs());
        for pattern in [b"needle".as_slice(), b"document 1", b"pad", b"absent"] {
            assert_eq!(bulk.count(pattern), serial.count(pattern));
            assert_eq!(bulk.find(pattern), serial.find(pattern));
        }
        // Deletes treat bulk levels like any other structure.
        assert_eq!(bulk.delete(7).unwrap(), serial.delete(7).unwrap());
        assert_eq!(bulk.find(b"needle"), serial.find(b"needle"));
        assert_eq!(bulk.stats().ingested_docs, 60);
        assert_eq!(serial.stats().ingested_docs, 0);
    }

    #[test]
    fn pooled_ingest_matches_serial() {
        let bulk = Store::new(fm(), pooled_opts(4, RebuildMode::Inline));
        let serial = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        let batch = docs(80);
        serial.insert_batch(&batch).unwrap();
        let stats = bulk.ingest_with_chunk_symbols(batch, 150).unwrap();
        assert_eq!(stats.docs, 80);
        bulk.flush();
        for pattern in [b"needle".as_slice(), b"document 1", b"pad", b"absent"] {
            assert_eq!(bulk.count(pattern), serial.count(pattern));
            assert_eq!(bulk.find(pattern), serial.find(pattern));
        }
    }

    #[test]
    fn ingest_empty_stream_is_a_noop() {
        let store = Store::new(fm(), small_opts(2, RebuildMode::Inline));
        let stats = store.ingest(Vec::new()).unwrap();
        assert_eq!(stats.docs, 0);
        assert_eq!(stats.levels, 0);
        assert_eq!(store.num_docs(), 0);
        assert_eq!(store.stats().ingested_docs, 0);
    }

    #[test]
    fn ingest_records_telemetry() {
        let store = Store::new(fm(), pooled_opts(2, RebuildMode::Inline));
        store.ingest_with_chunk_symbols(docs(40), 200).unwrap();
        store.flush();
        let registry = store.metrics().expect("telemetry on by default");
        let ingested = registry.counter("dyndex_ingest_docs_total", "", dyndex_obs::Unit::Count);
        assert_eq!(ingested.get(), 40);
        let build = registry
            .find_histogram("dyndex_ingest_build_duration")
            .expect("registered at construction");
        assert!(build.snapshot().count() > 0, "chunk builds recorded");
        let install = registry
            .find_histogram("dyndex_ingest_install_duration")
            .expect("registered at construction");
        assert_eq!(
            install.snapshot().count(),
            build.snapshot().count(),
            "every built chunk was installed"
        );
        let route = registry
            .find_histogram("dyndex_ingest_route_duration")
            .expect("registered at construction");
        assert_eq!(route.snapshot().count(), 1, "one observation per call");
        let stats = store.stats();
        assert_eq!(stats.ingested_docs, 40);
        assert!(stats.ingest_docs_per_sec.is_some());
        assert!(stats.to_string().contains("40 ingested"), "{stats}");
        // Bulk installs leave flight-recorder spans.
        let spans = store.flight_spans();
        assert!(
            spans.iter().any(|s| s.kind == SpanKind::BulkBuild),
            "bulk_build spans recorded"
        );
    }

    #[test]
    fn queries_answer_from_views_during_ingest() {
        // A pinned pre-ingest view never sees bulk levels; fresh queries
        // see each chunk as its shard's view republishes.
        let store = Store::new(fm(), small_opts(2, RebuildMode::Inline));
        store.insert(100_000, b"resident needle").unwrap();
        let views: Vec<_> = (0..store.num_shards())
            .map(|s| store.shard_view(s))
            .collect();
        store.ingest_with_chunk_symbols(docs(30), 100).unwrap();
        let pinned: usize = views.iter().map(|v| v.count(b"needle")).sum();
        assert_eq!(pinned, 1, "pinned views predate the ingest");
        assert_eq!(store.count(b"needle"), 31, "fresh queries see everything");
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn ingest_duplicate_id_panics() {
        let store = Store::new(fm(), small_opts(2, RebuildMode::Inline));
        store.insert(5, b"already here").unwrap();
        let _ = store.ingest(vec![(5, b"duplicate".to_vec())]);
    }

    #[test]
    fn bulk_load_shard_routes_one_chunk() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        let mut group: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut shard = 0;
        for (id, bytes) in docs(40) {
            if group.is_empty() {
                shard = store.shard_of(id);
            }
            if store.shard_of(id) == shard {
                group.push((id, bytes));
            }
        }
        let expect = group.len();
        store.bulk_load_shard(shard, &group).unwrap();
        assert_eq!(store.num_docs(), expect);
        assert_eq!(store.count(b"needle"), expect);
        assert_eq!(store.stats().ingested_docs, expect as u64);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_insert_panics() {
        let store = Store::new(fm(), small_opts(2, RebuildMode::Inline));
        store.insert(1, b"first").unwrap();
        let _ = store.insert(1, b"second");
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_insert_panics_with_pool_running() {
        let store = Store::new(fm(), pooled_opts(2, RebuildMode::Inline));
        store.insert(1, b"first").unwrap();
        let _ = store.insert(1, b"second");
    }
}
