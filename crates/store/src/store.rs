//! [`ShardedStore`]: hash-routed shards of [`Transform2Index`], parallel
//! query fan-out with deterministic merge, batched writes, and scheduled
//! background maintenance.

use crate::scheduler::Scheduler;
use crate::stats::{ShardStats, StoreStats};
use dyndex_core::{DynOptions, RebuildMode, StaticIndex, Transform2Index};
use dyndex_succinct::SpaceUsage;
use dyndex_text::Occurrence;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// How background maintenance is driven.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// No scheduler thread. Finished jobs install when a foreground
    /// operation touches the shard, or when the caller runs
    /// [`ShardedStore::maintain`] / [`ShardedStore::finish_background_work`].
    Manual,
    /// A dedicated thread polls every shard at this interval, installing
    /// finished jobs off the query path (busy shards are skipped via
    /// `try_write`, never contended).
    Periodic(Duration),
}

/// Tunables for a [`ShardedStore`].
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Number of shards (≥ 1). More shards mean more write parallelism
    /// and smaller rebuilds, at O(num_shards) fan-out cost per query.
    pub num_shards: usize,
    /// Options forwarded to every shard's [`Transform2Index`].
    pub index: DynOptions,
    /// Rebuild execution mode for every shard.
    pub mode: RebuildMode,
    /// Background maintenance driving policy.
    pub maintenance: MaintenancePolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            num_shards: 4,
            index: DynOptions::default(),
            mode: RebuildMode::Background,
            maintenance: MaintenancePolicy::Periodic(Duration::from_millis(1)),
        }
    }
}

/// SplitMix64 — the document-id router. Sequential ids (the common
/// pattern) spread uniformly instead of striping.
fn route_hash(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sharded, concurrent document store over dynamic indexes.
///
/// All methods take `&self`: shards synchronize internally (one
/// reader-writer lock each), so a `ShardedStore` can be shared across
/// threads directly or behind an `Arc`. See the crate docs for the
/// layer's design and a usage example.
pub struct ShardedStore<I: StaticIndex + Sync> {
    shards: Arc<Vec<RwLock<Transform2Index<I>>>>,
    /// Periodic maintenance thread; `None` under [`MaintenancePolicy::Manual`].
    scheduler: Option<Scheduler>,
}

impl<I: StaticIndex + Sync> ShardedStore<I> {
    /// Creates an empty store with `options.num_shards` shards, each an
    /// empty [`Transform2Index`] built from `config`.
    ///
    /// # Panics
    /// Panics if `options.num_shards` is zero.
    pub fn new(config: I::Config, options: StoreOptions) -> Self {
        assert!(options.num_shards >= 1, "store needs at least one shard");
        let shards: Vec<RwLock<Transform2Index<I>>> = (0..options.num_shards)
            .map(|_| {
                RwLock::new(Transform2Index::new(
                    config.clone(),
                    options.index,
                    options.mode,
                ))
            })
            .collect();
        let shards = Arc::new(shards);
        let scheduler = match options.maintenance {
            MaintenancePolicy::Manual => None,
            MaintenancePolicy::Periodic(interval) => {
                Some(Scheduler::spawn(Arc::clone(&shards), interval))
            }
        };
        ShardedStore { shards, scheduler }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `doc_id` routes to (stable for the store's lifetime).
    pub fn shard_of(&self, doc_id: u64) -> usize {
        (route_hash(doc_id) % self.shards.len() as u64) as usize
    }

    fn read_shard(&self, s: usize) -> RwLockReadGuard<'_, Transform2Index<I>> {
        self.shards[s].read().expect("shard lock poisoned")
    }

    fn write_shard(&self, s: usize) -> RwLockWriteGuard<'_, Transform2Index<I>> {
        self.shards[s].write().expect("shard lock poisoned")
    }

    /// Runs `f` against every shard in parallel (one scoped thread per
    /// shard, read locks) and returns the results in shard order — the
    /// deterministic fan-out backbone of every multi-shard query.
    fn fan_out<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Transform2Index<I>) -> T + Sync,
    {
        if self.shards.len() == 1 {
            return vec![f(&self.read_shard(0))];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    let f = &f;
                    scope.spawn(move || f(&shard.read().expect("shard lock poisoned")))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard query thread panicked"))
                .collect()
        })
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Inserts a document into its shard.
    ///
    /// # Panics
    /// Panics if `doc_id` is already present (same contract as
    /// [`Transform2Index::insert`]).
    pub fn insert(&self, doc_id: u64, bytes: &[u8]) {
        self.write_shard(self.shard_of(doc_id))
            .insert(doc_id, bytes);
    }

    /// Deletes a document, returning its bytes (`None` if absent).
    pub fn delete(&self, doc_id: u64) -> Option<Vec<u8>> {
        self.write_shard(self.shard_of(doc_id)).delete(doc_id)
    }

    /// Inserts a batch, grouped by shard and applied with one thread (and
    /// one lock acquisition) per shard — writers to different shards
    /// proceed in parallel.
    ///
    /// # Panics
    /// Panics if any document id is already present.
    pub fn insert_batch(&self, docs: &[(u64, Vec<u8>)]) {
        let mut groups: Vec<Vec<(u64, &[u8])>> = vec![Vec::new(); self.shards.len()];
        for (id, bytes) in docs {
            groups[self.shard_of(*id)].push((*id, bytes.as_slice()));
        }
        std::thread::scope(|scope| {
            for (shard, group) in self.shards.iter().zip(groups) {
                if group.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    let mut index = shard.write().expect("shard lock poisoned");
                    for (id, bytes) in group {
                        index.insert(id, bytes);
                    }
                });
            }
        });
    }

    /// Deletes a batch (grouped like [`ShardedStore::insert_batch`]);
    /// returns how many of the ids were present and removed.
    pub fn delete_batch(&self, ids: &[u64]) -> usize {
        let mut groups: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for &id in ids {
            groups[self.shard_of(id)].push(id);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(groups)
                .filter(|(_, group)| !group.is_empty())
                .map(|(shard, group)| {
                    scope.spawn(move || {
                        let mut index = shard.write().expect("shard lock poisoned");
                        group
                            .into_iter()
                            .filter(|&id| index.delete(id).is_some())
                            .count()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard write thread panicked"))
                .sum()
        })
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Whether `doc_id` is present.
    pub fn contains(&self, doc_id: u64) -> bool {
        self.read_shard(self.shard_of(doc_id)).contains(doc_id)
    }

    /// Alive documents across all shards.
    pub fn num_docs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").num_docs())
            .sum()
    }

    /// Alive bytes across all shards.
    pub fn symbol_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").symbol_count())
            .sum()
    }

    /// Counts occurrences of `pattern`, fanning out across shards in
    /// parallel.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.fan_out(|index| index.count(pattern)).into_iter().sum()
    }

    /// All occurrences of `pattern`, fanned out across shards and merged
    /// deterministically: the result is sorted by `(doc, offset)`, so it
    /// is byte-identical to a sorted unsharded query over the same
    /// documents regardless of shard count or thread timing.
    pub fn find(&self, pattern: &[u8]) -> Vec<Occurrence> {
        let mut merged: Vec<Occurrence> = self
            .fan_out(|index| index.find(pattern))
            .into_iter()
            .flatten()
            .collect();
        merged.sort_unstable();
        merged
    }

    /// Up to `limit` occurrences of `pattern` (sorted). Each shard's work
    /// is capped at `limit` located occurrences
    /// ([`Transform2Index::find_limit`]), so total fan-out work is
    /// `O(num_shards · (range-finding + limit · tlocate))`. Which
    /// occurrences are returned depends on shard-internal layout at query
    /// time: deterministic under [`RebuildMode::Inline`] with manual
    /// maintenance, but with background rebuilds the truncation choice
    /// can vary with install timing (the underlying occurrence set is
    /// always exact — `limit >= count` returns everything).
    pub fn find_limit(&self, pattern: &[u8], limit: usize) -> Vec<Occurrence> {
        let mut merged: Vec<Occurrence> = self
            .fan_out(|index| index.find_limit(pattern, limit))
            .into_iter()
            .flatten()
            .collect();
        merged.sort_unstable();
        merged.truncate(limit);
        merged
    }

    /// Extracts up to `len` bytes of a document from `offset` (routed to
    /// the owning shard; no fan-out).
    pub fn extract(&self, doc_id: u64, offset: usize, len: usize) -> Option<Vec<u8>> {
        self.read_shard(self.shard_of(doc_id))
            .extract(doc_id, offset, len)
    }

    // ------------------------------------------------------------------
    // Maintenance & observability
    // ------------------------------------------------------------------

    /// Quiesce point: acquires every shard's write lock simultaneously
    /// (in shard order, so concurrent flushes cannot deadlock), which
    /// waits out any in-flight writer batches, then installs all pending
    /// background rebuild work. After `flush` returns the store is
    /// settled — no jobs in flight, no locked or temp structures — which
    /// is the state snapshots capture and the easiest state to assert
    /// against in tests.
    ///
    /// Unlike [`ShardedStore::finish_background_work`] (which visits
    /// shards one at a time), `flush` holds all shards at once, so no
    /// writer can slip a new job into an already-visited shard while a
    /// later one is still draining.
    pub fn flush(&self) {
        let mut guards = self.lock_all_shards();
        for guard in guards.iter_mut() {
            guard.finish_background_work();
        }
    }

    /// Acquires every shard's write lock in shard order (the persistence
    /// layer's point-in-time snapshot hook).
    #[doc(hidden)]
    pub fn lock_all_shards(&self) -> Vec<RwLockWriteGuard<'_, Transform2Index<I>>> {
        self.shards
            .iter()
            .map(|s| s.write().expect("shard lock poisoned"))
            .collect()
    }

    /// Wraps already-built shard indexes (the persistence layer's restore
    /// path), re-spawning the maintenance scheduler per `maintenance`.
    ///
    /// # Panics
    /// Panics if `indexes` is empty.
    #[doc(hidden)]
    pub fn from_shard_indexes(
        indexes: Vec<Transform2Index<I>>,
        maintenance: MaintenancePolicy,
    ) -> Self {
        assert!(!indexes.is_empty(), "store needs at least one shard");
        let shards: Arc<Vec<RwLock<Transform2Index<I>>>> =
            Arc::new(indexes.into_iter().map(RwLock::new).collect());
        let scheduler = match maintenance {
            MaintenancePolicy::Manual => None,
            MaintenancePolicy::Periodic(interval) => {
                Some(Scheduler::spawn(Arc::clone(&shards), interval))
            }
        };
        ShardedStore { shards, scheduler }
    }

    /// Runs one manual maintenance pass: installs every finished
    /// background job in every shard (without blocking on unfinished
    /// ones). Returns the number of jobs still in flight.
    pub fn maintain(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.write()
                    .expect("shard lock poisoned")
                    .poll_background_work()
            })
            .sum()
    }

    /// Blocks until every shard's background work is installed.
    pub fn finish_background_work(&self) {
        for s in 0..self.shards.len() {
            self.write_shard(s).finish_background_work();
        }
    }

    /// Background jobs currently in flight across all shards.
    pub fn pending_background_jobs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").pending_jobs())
            .sum()
    }

    /// Jobs installed by the periodic scheduler (0 under
    /// [`MaintenancePolicy::Manual`]) — how much install work stayed off
    /// the foreground path.
    pub fn scheduler_installs(&self) -> u64 {
        self.scheduler.as_ref().map_or(0, |s| s.installs())
    }

    /// Aggregated census: per-shard doc/symbol counts, pending-work
    /// depth, and the full per-level structure breakdown.
    pub fn stats(&self) -> StoreStats {
        let shards = self
            .fan_out(|index| {
                (
                    index.num_docs(),
                    index.symbol_count(),
                    index.pending_jobs(),
                    index.structure_stats(),
                )
            })
            .into_iter()
            .enumerate()
            .map(
                |(shard, (docs, symbols, pending_jobs, levels))| ShardStats {
                    shard,
                    docs,
                    symbols,
                    pending_jobs,
                    levels,
                },
            )
            .collect();
        StoreStats {
            shards,
            snapshot_bytes: None,
        }
    }
}

impl<I: StaticIndex + Sync> SpaceUsage for ShardedStore<I> {
    fn heap_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").heap_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndex_core::{FmConfig, NaiveIndex};
    use dyndex_text::FmIndexCompressed;

    type Store = ShardedStore<FmIndexCompressed>;

    fn small_opts(num_shards: usize, mode: RebuildMode) -> StoreOptions {
        StoreOptions {
            num_shards,
            index: DynOptions {
                min_capacity: 32,
                tau: 4,
                ..DynOptions::default()
            },
            mode,
            maintenance: MaintenancePolicy::Manual,
        }
    }

    fn fm() -> FmConfig {
        FmConfig { sample_rate: 4 }
    }

    fn docs(n: u64) -> Vec<(u64, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let doc = format!(
                    "document {i} shared needle {}",
                    "pad".repeat(i as usize % 5)
                );
                (i, doc.into_bytes())
            })
            .collect()
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        for id in 0..1000u64 {
            let s = store.shard_of(id);
            assert!(s < 4);
            assert_eq!(s, store.shard_of(id), "routing must be stable");
        }
        // SplitMix64 routing must actually spread sequential ids.
        let mut hit = [false; 4];
        for id in 0..64u64 {
            hit[store.shard_of(id)] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards reachable: {hit:?}");
    }

    #[test]
    fn matches_naive_reference() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        let mut naive = NaiveIndex::new();
        for (id, d) in docs(40) {
            store.insert(id, &d);
            naive.insert(id, &d);
        }
        for pattern in [b"needle".as_slice(), b"document 1", b"pad", b"absent"] {
            assert_eq!(store.count(pattern), naive.count(pattern));
            // NaiveIndex::find returns sorted occurrences; the store's
            // deterministic merge must agree exactly.
            assert_eq!(store.find(pattern), naive.find(pattern));
        }
        assert_eq!(store.num_docs(), 40);
        assert!(store.contains(7));
        assert_eq!(store.delete(7), naive.delete(7));
        assert!(!store.contains(7));
        assert_eq!(store.find(b"needle"), naive.find(b"needle"));
        assert_eq!(store.delete(7), None);
    }

    #[test]
    fn batches_match_singles() {
        let batch = docs(60);
        let batched = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        batched.insert_batch(&batch);
        let single = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        for (id, d) in &batch {
            single.insert(*id, d);
        }
        assert_eq!(batched.num_docs(), single.num_docs());
        assert_eq!(batched.symbol_count(), single.symbol_count());
        assert_eq!(batched.find(b"needle"), single.find(b"needle"));

        let ids: Vec<u64> = (0..30).chain(100..110).collect();
        assert_eq!(batched.delete_batch(&ids), 30, "10 ids are absent");
        for id in 0..30u64 {
            single.delete(id);
        }
        assert_eq!(batched.find(b"needle"), single.find(b"needle"));
        assert_eq!(batched.num_docs(), 30);
    }

    #[test]
    fn find_limit_caps_and_sorts() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        store.insert_batch(&docs(50));
        let all = store.find(b"needle");
        assert_eq!(all.len(), 50);
        for k in [0usize, 1, 13, 50, 200] {
            let capped = store.find_limit(b"needle", k);
            assert_eq!(capped.len(), k.min(50), "limit {k}");
            assert!(capped.windows(2).all(|w| w[0] < w[1]), "sorted, limit {k}");
            for occ in &capped {
                assert!(all.contains(occ), "phantom occurrence at limit {k}");
            }
        }
    }

    #[test]
    fn extract_routes_to_owning_shard() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        store.insert(9, b"zero one two three");
        assert_eq!(store.extract(9, 5, 3).as_deref(), Some(b"one".as_slice()));
        assert_eq!(store.extract(10, 0, 4), None);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let store = Store::new(fm(), small_opts(4, RebuildMode::Inline));
        let batch = docs(80);
        let symbols: usize = batch.iter().map(|(_, d)| d.len()).sum();
        store.insert_batch(&batch);
        store.finish_background_work();
        let stats = store.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.total_docs(), 80);
        assert_eq!(stats.total_symbols(), symbols);
        assert_eq!(stats.pending_jobs(), 0);
        assert!(stats.shards.iter().all(|s| !s.levels.is_empty()));
        assert!(stats.imbalance() >= 1.0);
    }

    #[test]
    fn manual_maintenance_drains_background_jobs() {
        let store = Store::new(fm(), small_opts(3, RebuildMode::Background));
        store.insert_batch(&docs(120));
        // Drain without foreground operations: poll until all installs
        // land (bounded; background builds are small and finish quickly).
        let mut pending = store.maintain();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pending > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
            pending = store.maintain();
        }
        assert_eq!(pending, 0, "maintenance must drain all jobs");
        assert_eq!(store.pending_background_jobs(), 0);
        assert_eq!(store.count(b"needle"), 120);
    }

    #[test]
    fn periodic_scheduler_drains_without_foreground_ops() {
        let store = Store::new(
            fm(),
            StoreOptions {
                maintenance: MaintenancePolicy::Periodic(Duration::from_micros(200)),
                ..small_opts(4, RebuildMode::Background)
            },
        );
        store.insert_batch(&docs(150));
        // No foreground operations from here on: only the scheduler can
        // install the in-flight rebuilds.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.pending_background_jobs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(store.pending_background_jobs(), 0, "scheduler must drain");
        assert_eq!(store.count(b"needle"), 150);
        assert_eq!(store.find(b"needle").len(), 150);
    }

    #[test]
    fn single_shard_store_works() {
        let store = Store::new(fm(), small_opts(1, RebuildMode::Inline));
        store.insert_batch(&docs(10));
        assert_eq!(store.num_shards(), 1);
        assert_eq!(store.count(b"needle"), 10);
        assert_eq!(store.find(b"needle").len(), 10);
    }

    #[test]
    fn flush_settles_everything() {
        let store = Store::new(fm(), small_opts(3, RebuildMode::Background));
        store.insert_batch(&docs(100));
        store.flush();
        assert_eq!(store.pending_background_jobs(), 0, "flush drains all jobs");
        assert_eq!(store.count(b"needle"), 100);
        // Flushing an already-settled (or empty) store is a no-op.
        store.flush();
        let empty = Store::new(fm(), small_opts(2, RebuildMode::Inline));
        empty.flush();
        assert_eq!(empty.num_docs(), 0);
    }

    #[test]
    fn from_shard_indexes_rewraps_prebuilt_shards() {
        let store = Store::new(fm(), small_opts(2, RebuildMode::Inline));
        store.insert_batch(&docs(20));
        store.flush();
        let want = store.find(b"needle");
        let mut guards = store.lock_all_shards();
        let indexes: Vec<_> = guards
            .iter_mut()
            .map(|g| {
                std::mem::replace(
                    &mut **g,
                    Transform2Index::new(fm(), DynOptions::default(), RebuildMode::Inline),
                )
            })
            .collect();
        drop(guards);
        let rebuilt = Store::from_shard_indexes(indexes, MaintenancePolicy::Manual);
        assert_eq!(rebuilt.num_shards(), 2);
        assert_eq!(rebuilt.find(b"needle"), want);
        assert_eq!(store.num_docs(), 0, "shards were moved out");
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_insert_panics() {
        let store = Store::new(fm(), small_opts(2, RebuildMode::Inline));
        store.insert(1, b"first");
        store.insert(1, b"second");
    }
}
