//! Store-layer telemetry wiring: the public [`Telemetry`] policy and the
//! internal [`StoreTelemetry`] handle bundle every instrumented path
//! records through.
//!
//! The design rule is *one branch when disabled*: a store built with
//! [`Telemetry::Disabled`] holds `None` and every instrumentation point is
//! a single `Option` test — no clock reads, no atomics, no allocation.
//! [`Telemetry::Shared`] points a store at an existing registry;
//! registration is get-or-create by name, so a store restored from disk
//! into its predecessor's registry keeps accumulating into the same
//! series.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use dyndex_core::CoreMetrics;
use dyndex_obs::{
    Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, QueryKind, QuerySpan, Span,
    SpanKind, Tracer, Unit,
};

/// How many recent query spans the per-store [`Tracer`] retains.
const TRACE_CAPACITY: usize = 128;

/// How many spans the per-store [`FlightRecorder`] ring retains across
/// its stripes.
const FLIGHT_CAPACITY: usize = 2048;

/// Telemetry policy for a store (field of
/// [`StoreOptions`](crate::StoreOptions) and of `dyndex-persist`'s
/// `RestoreOptions`).
///
/// # Examples
///
/// ```
/// use dyndex_obs::MetricsRegistry;
/// use dyndex_store::Telemetry;
/// use std::sync::Arc;
///
/// let registry = Arc::new(MetricsRegistry::new());
/// let policy = Telemetry::Shared(Arc::clone(&registry));
/// assert!(!matches!(policy, Telemetry::Disabled));
/// assert!(matches!(Telemetry::default(), Telemetry::Enabled));
/// ```
#[derive(Clone, Debug, Default)]
pub enum Telemetry {
    /// Record into a fresh private [`MetricsRegistry`] (the default; the
    /// `fig7_observability` bench puts the overhead under 2%).
    #[default]
    Enabled,
    /// Record into an existing registry. Metric names are get-or-create,
    /// so several stores — or a store and its restored successor — can
    /// share one registry and accumulate into the same series.
    Shared(Arc<MetricsRegistry>),
    /// Record nothing. Instrumentation points collapse to one branch
    /// (the `Recorder` no-op default, in `dyndex-obs` terms): no clock
    /// reads, no atomic traffic.
    Disabled,
}

/// Per-shard measurements shipped back with each fan-out reply.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ShardProbe {
    /// Submit-to-pickup wait in the worker's queue (0 on scoped spawns).
    pub queue_nanos: u64,
    /// Execution time against the published view.
    pub execute_nanos: u64,
    /// The view epoch the shard served from.
    pub epoch: u64,
}

/// Aggregated fan-out measurements for one query.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FanOutProbe {
    /// Routing + submission time (before any shard picked work up).
    pub route_nanos: u64,
    /// Worst shard queue wait.
    pub queue_nanos: u64,
    /// Worst shard execution time.
    pub execute_nanos: u64,
    /// Smallest view epoch served from.
    pub min_epoch: u64,
    /// Largest view epoch served from.
    pub max_epoch: u64,
}

impl FanOutProbe {
    /// Folds one shard's probe into the aggregate.
    pub(crate) fn absorb(&mut self, probe: ShardProbe) {
        self.queue_nanos = self.queue_nanos.max(probe.queue_nanos);
        self.execute_nanos = self.execute_nanos.max(probe.execute_nanos);
        if self.min_epoch == 0 && self.max_epoch == 0 {
            self.min_epoch = probe.epoch;
            self.max_epoch = probe.epoch;
        } else {
            self.min_epoch = self.min_epoch.min(probe.epoch);
            self.max_epoch = self.max_epoch.max(probe.epoch);
        }
    }
}

/// Every handle the store records through, bound once at construction.
/// Shared (`Arc`) with the fan-out job closures so pool workers record
/// per-shard latencies themselves, on their own histogram stripes.
#[derive(Debug)]
pub(crate) struct StoreTelemetry {
    pub registry: Arc<MetricsRegistry>,
    /// Per-shard submit-to-pickup queue wait (striped by shard).
    pub query_queue_wait: Arc<Histogram>,
    /// Per-shard execution time against the published view.
    pub query_execute: Arc<Histogram>,
    /// End-to-end query latency (route + fan-out + merge).
    pub query_duration: Arc<Histogram>,
    /// Queries served (all kinds).
    pub queries: Arc<Counter>,
    /// Insert latency: one observation per `insert` call and per
    /// `insert_batch` call (whole batch).
    pub insert_duration: Arc<Histogram>,
    /// Delete latency, same shape as inserts.
    pub delete_duration: Arc<Histogram>,
    pub docs_inserted: Arc<Counter>,
    pub docs_deleted: Arc<Counter>,
    /// Time spent routing + chunk-cutting a bulk-ingest stream (one
    /// observation per `ingest` call; excludes build/install waits).
    pub ingest_route: Arc<Histogram>,
    /// Per-shard SA-IS build time of one bulk-ingested chunk.
    pub ingest_build: Arc<Histogram>,
    /// Per-shard install time of one bulk-built level (lock hold + view
    /// republish).
    pub ingest_install: Arc<Histogram>,
    /// Documents loaded through the bulk-ingest fast path.
    pub docs_ingested: Arc<Counter>,
    /// Throughput of the most recent `ingest` call, in docs/second.
    pub ingest_docs_per_sec: Arc<Gauge>,
    /// Writes refused because the target shard's writer panicked.
    pub shard_poisoned: Arc<Counter>,
    /// Wall-clock duration of each snapshot generation.
    pub snapshot_duration: Arc<Histogram>,
    pub snapshot_bytes_written: Arc<Counter>,
    pub snapshot_bytes_reused: Arc<Counter>,
    /// Retired views not yet reclaimed (process-global, point-in-time).
    pub epoch_garbage: Arc<Gauge>,
    /// Reclamation passes run (process-global, cumulative).
    pub epoch_passes: Arc<Gauge>,
    pub tracer: Tracer,
    /// The always-on flight recorder: hierarchical spans for queries and
    /// every kind of background work, shard-striped.
    pub flight: Arc<FlightRecorder>,
    /// Spans recorded by the tracer, mirrored for exposition.
    pub trace_recorded: Arc<Counter>,
    /// Spans the tracer dropped under contention, mirrored for exposition.
    pub trace_dropped: Arc<Counter>,
    /// Spans recorded by the flight recorder, mirrored for exposition.
    pub flight_recorded: Arc<Counter>,
    /// Poisoning *events* (one per writer panic that poisons a shard) —
    /// distinct from `shard_poisoned`, which counts refused writes.
    pub shards_poisoned_events: Arc<Counter>,
    /// Handles the shard indexes record rebuild/install/freeze events to.
    pub core: Arc<CoreMetrics>,
    /// Serializes the delta-adds in [`StoreTelemetry::sync_exposition`].
    sync_gate: Mutex<()>,
}

impl StoreTelemetry {
    /// Resolves a [`Telemetry`] policy into handles (or `None` for
    /// [`Telemetry::Disabled`]). `shards` sizes histogram striping.
    pub(crate) fn from_policy(policy: &Telemetry, shards: usize) -> Option<Arc<Self>> {
        let registry = match policy {
            Telemetry::Enabled => Arc::new(MetricsRegistry::new()),
            Telemetry::Shared(registry) => Arc::clone(registry),
            Telemetry::Disabled => return None,
        };
        Some(Arc::new(Self::bind(registry, shards)))
    }

    fn bind(registry: Arc<MetricsRegistry>, shards: usize) -> Self {
        let h = |name: &str, help: &str| registry.histogram(name, help, Unit::Nanos, shards);
        let c = |name: &str, help: &str, unit: Unit| registry.counter(name, help, unit);
        let flight = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY, shards));
        StoreTelemetry {
            query_queue_wait: h(
                "dyndex_store_query_queue_wait",
                "per-shard wait between fan-out submit and worker pickup",
            ),
            query_execute: h(
                "dyndex_store_query_execute",
                "per-shard query execution time against the published view",
            ),
            query_duration: h(
                "dyndex_store_query_duration",
                "end-to-end multi-shard query latency",
            ),
            queries: c("dyndex_store_queries", "queries served", Unit::Count),
            insert_duration: h(
                "dyndex_store_insert_duration",
                "insert call latency (one observation per call, batches included)",
            ),
            delete_duration: h(
                "dyndex_store_delete_duration",
                "delete call latency (one observation per call, batches included)",
            ),
            docs_inserted: c(
                "dyndex_store_docs_inserted",
                "documents inserted",
                Unit::Count,
            ),
            docs_deleted: c(
                "dyndex_store_docs_deleted",
                "documents deleted",
                Unit::Count,
            ),
            ingest_route: h(
                "dyndex_ingest_route_duration",
                "bulk-ingest routing + chunk-cutting time per ingest call",
            ),
            ingest_build: h(
                "dyndex_ingest_build_duration",
                "per-shard SA-IS build time of one bulk-ingested chunk",
            ),
            ingest_install: h(
                "dyndex_ingest_install_duration",
                "per-shard install time of one bulk-built level",
            ),
            docs_ingested: c(
                "dyndex_ingest_docs_total",
                "documents loaded through the bulk-ingest fast path",
                Unit::Count,
            ),
            ingest_docs_per_sec: registry.gauge(
                "dyndex_ingest_docs_per_sec",
                "throughput of the most recent bulk ingest (docs/second)",
                Unit::Count,
            ),
            shard_poisoned: c(
                "dyndex_store_shard_poisoned",
                "writes refused because the shard's writer panicked",
                Unit::Count,
            ),
            snapshot_duration: h(
                "dyndex_store_snapshot_duration",
                "wall-clock duration of snapshot generations",
            ),
            snapshot_bytes_written: c(
                "dyndex_store_snapshot_bytes_written",
                "snapshot bytes serialized to disk",
                Unit::Bytes,
            ),
            snapshot_bytes_reused: c(
                "dyndex_store_snapshot_bytes_reused",
                "snapshot bytes reused from the previous generation",
                Unit::Bytes,
            ),
            epoch_garbage: registry.gauge(
                "dyndex_store_epoch_garbage",
                "retired shard views awaiting epoch reclamation (process-global)",
                Unit::Count,
            ),
            epoch_passes: registry.gauge(
                "dyndex_store_epoch_passes",
                "epoch reclamation passes run (process-global)",
                Unit::Count,
            ),
            tracer: Tracer::new(TRACE_CAPACITY),
            trace_recorded: c(
                "dyndex_trace_spans_recorded",
                "query spans recorded by the tracer",
                Unit::Count,
            ),
            trace_dropped: c(
                "dyndex_trace_spans_dropped",
                "query spans the tracer dropped under contention",
                Unit::Count,
            ),
            flight_recorded: c(
                "dyndex_flight_spans_recorded",
                "spans recorded by the flight recorder (all kinds)",
                Unit::Count,
            ),
            shards_poisoned_events: c(
                "dyndex_store_shards_poisoned_total",
                "shard poisoning events (one per writer panic that poisons a shard)",
                Unit::Count,
            ),
            core: CoreMetrics::register_with_flight(&registry, shards, Some(Arc::clone(&flight))),
            flight,
            sync_gate: Mutex::new(()),
            registry,
        }
    }

    /// Refreshes the process-global epoch-reclamation gauges.
    pub(crate) fn sync_epoch_gauges(&self) {
        let (garbage, passes) = crate::epoch::epoch_stats();
        self.epoch_garbage.set(garbage as u64);
        self.epoch_passes.set(passes);
    }

    /// Brings every render-time series up to date: epoch gauges, plus the
    /// tracer/flight totals mirrored into registry counters (registry
    /// counters only go up, so the mirror is a delta-add under a gate).
    pub(crate) fn sync_exposition(&self) {
        self.sync_epoch_gauges();
        let _gate = self.sync_gate.lock().unwrap();
        let lift = |counter: &Counter, live: u64| {
            let seen = counter.get();
            if live > seen {
                counter.add(live - seen);
            }
        };
        lift(&self.trace_recorded, self.tracer.recorded());
        lift(&self.trace_dropped, self.tracer.dropped());
        lift(&self.flight_recorded, self.flight.recorded());
    }

    /// Starts one query's flight root: allocates the span id (handed to
    /// per-shard child spans through the fan-out) and stamps the start.
    pub(crate) fn begin_query_span(&self) -> (u64, u64) {
        (self.flight.next_span_id(), self.flight.now_nanos())
    }

    /// Records the end of one query: total-latency histogram, query
    /// counter, a tracer span assembled from the fan-out probe, and the
    /// flight-recorder root span (children were already recorded by the
    /// workers under `root`). `started` is the instant captured at query
    /// entry; merge time is whatever the total doesn't attribute to
    /// route/queue/execute.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_query(
        &self,
        kind: QueryKind,
        started: Instant,
        probe: FanOutProbe,
        shards: usize,
        results: usize,
        root: u64,
        start_nanos: u64,
    ) {
        let total_nanos = started.elapsed().as_nanos() as u64;
        self.query_duration.record(total_nanos);
        self.queries.inc();
        let merge_nanos = total_nanos
            .saturating_sub(probe.route_nanos)
            .saturating_sub(probe.queue_nanos)
            .saturating_sub(probe.execute_nanos);
        self.tracer.record(QuerySpan {
            kind,
            route_nanos: probe.route_nanos,
            queue_nanos: probe.queue_nanos,
            execute_nanos: probe.execute_nanos,
            merge_nanos,
            min_epoch: probe.min_epoch,
            max_epoch: probe.max_epoch,
            shards,
            results,
        });
        self.flight.finish_root(Span {
            start_nanos,
            duration_nanos: total_nanos,
            epoch_lo: probe.min_epoch,
            epoch_hi: probe.max_epoch,
            detail: results as u64,
            ..Span::root(root, query_span_kind(kind))
        });
    }
}

/// Maps the tracer's [`QueryKind`] onto the flight recorder's root kind.
pub(crate) fn query_span_kind(kind: QueryKind) -> SpanKind {
    match kind {
        QueryKind::Count => SpanKind::Count,
        QueryKind::Find => SpanKind::Find,
        QueryKind::FindLimit => SpanKind::FindLimit,
    }
}
