//! The health watchdog: point-in-time detectors over the store's live
//! state, folded into a typed [`HealthReport`].
//!
//! The watchdog holds only shared handles — the shard slots (for poison
//! flags, write-lock hold stamps, and published pending-job counts), the
//! pool's worker gauges (heartbeats and busy-since stamps), and the
//! metric registry (for WAL fsync latency and error series registered by
//! `dyndex-persist`). A check reads atomics and one registry lookup; it
//! never takes a shard lock, so `/health` stays answerable exactly when
//! it matters most — while something is stuck.
//!
//! Detectors and their defaults (all configurable via [`HealthOptions`]):
//!
//! | detector          | trigger                                             | severity  |
//! |-------------------|-----------------------------------------------------|-----------|
//! | poisoned shard    | a writer panic poisoned the shard lock              | Degraded  |
//! | stalled writer    | write lock held > `writer_stall_after` (1s)         | Degraded  |
//! | stuck worker      | one pool job running > `stuck_worker_after` (5s)    | Unhealthy |
//! | stalled rebuild   | pending jobs uninstalled > `stalled_rebuild_after`  | Degraded  |
//! | slow fsync        | WAL fsync p99 > `max_fsync_p99` (250ms)             | Degraded  |
//! | WAL errors        | any append/fsync I/O error counted                  | Degraded  |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::pool::WorkerGauges;
use crate::shard::ShardSlot;
use dyndex_core::StaticIndex;
use dyndex_obs::{HealthReason, HealthReport, HealthStatus, MetricsRegistry};

/// Monotonic nanoseconds since the first call in this process — the
/// shared clock behind worker heartbeats, write-lock hold stamps, and
/// watchdog age math (a plain `u64` fits in the atomics they live in).
pub(crate) fn nanos_now() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Watchdog thresholds, set through
/// [`StoreOptions`](crate::StoreOptions)`::health`.
///
/// ```
/// use dyndex_store::HealthOptions;
/// use std::time::Duration;
///
/// let tight = HealthOptions {
///     writer_stall_after: Duration::from_millis(100),
///     ..HealthOptions::default()
/// };
/// assert!(tight.writer_stall_after < HealthOptions::default().writer_stall_after);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthOptions {
    /// A write lock held longer than this flags the shard's writer as
    /// stalled (default 1s).
    pub writer_stall_after: Duration,
    /// One pool job running longer than this flags the worker as stuck —
    /// the only Unhealthy-severity detector (default 5s).
    pub stuck_worker_after: Duration,
    /// Pending background rebuild jobs older than this (without being
    /// installed) flag the shard's rebuilds as stalled. Only checked
    /// when a worker pool runs maintenance; manual-maintenance stores
    /// legitimately hold jobs pending (default 10s).
    pub stalled_rebuild_after: Duration,
    /// WAL fsync p99 above this flags durability as slow (default 250ms).
    pub max_fsync_p99: Duration,
    /// Operations slower than this retain their full span tree in the
    /// flight recorder's slow-op log (default 100ms).
    pub slow_op_threshold: Duration,
}

impl Default for HealthOptions {
    fn default() -> Self {
        HealthOptions {
            writer_stall_after: Duration::from_secs(1),
            stuck_worker_after: Duration::from_secs(5),
            stalled_rebuild_after: Duration::from_secs(10),
            max_fsync_p99: Duration::from_millis(250),
            slow_op_threshold: Duration::from_millis(100),
        }
    }
}

/// Metric names the WAL layer registers (in `dyndex-persist`); the
/// watchdog finds them by name so durability health needs no extra
/// wiring between the crates.
const WAL_FSYNC_HISTOGRAM: &str = "dyndex_wal_fsync_duration";
const WAL_APPEND_ERRORS: &str = "dyndex_wal_append_errors";
const WAL_FSYNC_ERRORS: &str = "dyndex_wal_fsync_errors";

/// The live watchdog state a store carries: shared handles plus the
/// small amount of memory the stalled-rebuild detector needs (when
/// pending work *first* appeared per shard).
pub(crate) struct HealthState<I: StaticIndex + Sync> {
    shards: Arc<Vec<ShardSlot<I>>>,
    workers: Vec<Arc<WorkerGauges>>,
    options: HealthOptions,
    registry: Option<Arc<MetricsRegistry>>,
    /// Per-shard stamp of when pending jobs were first observed
    /// (0 = none pending at last check).
    pending_since: Vec<AtomicU64>,
    /// Serializes checks so `pending_since` read-modify-writes don't
    /// interleave (checks are rare; scrapes and `health()` calls).
    check_gate: Mutex<()>,
}

impl<I: StaticIndex + Sync> HealthState<I> {
    pub(crate) fn new(
        shards: Arc<Vec<ShardSlot<I>>>,
        workers: Vec<Arc<WorkerGauges>>,
        options: HealthOptions,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        let pending_since = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        HealthState {
            shards,
            workers,
            options,
            registry,
            pending_since,
            check_gate: Mutex::new(()),
        }
    }

    /// Runs every detector and folds the findings into a report.
    pub(crate) fn check(&self) -> HealthReport {
        let _gate = self.check_gate.lock().unwrap();
        let now = nanos_now();
        let mut reasons = Vec::new();
        let mut poisoned = 0usize;

        for (shard, slot) in self.shards.iter().enumerate() {
            if slot.is_poisoned() {
                poisoned += 1;
                reasons.push(HealthReason::ShardPoisoned { shard });
                continue;
            }
            let held_since = slot.locked_since();
            if held_since != 0 {
                let held_for = now.saturating_sub(held_since);
                if held_for >= self.options.writer_stall_after.as_nanos() as u64 {
                    reasons.push(HealthReason::WriterStalled {
                        shard,
                        held_for: Duration::from_nanos(held_for),
                    });
                }
            }
        }

        for (shard, gauges) in self.workers.iter().enumerate() {
            let bound = self.options.stuck_worker_after.as_nanos() as u64;
            let busy_since = gauges.busy_since();
            if busy_since != 0 {
                let busy_for = now.saturating_sub(busy_since);
                if busy_for >= bound {
                    reasons.push(HealthReason::StuckWorker {
                        shard,
                        busy_for: Duration::from_nanos(busy_for),
                    });
                }
                continue;
            }
            // Not inside a job: a live worker wakes on the queue send, so
            // a heartbeat that stays stale *while requests wait* means
            // the worker thread is wedged outside a job (or gone). An
            // idle worker parked in its tick-long queue wait never trips
            // this — its queue is empty.
            let heartbeat = gauges.heartbeat();
            if heartbeat != 0 && gauges.queued_depth() > 0 {
                let silent_for = now.saturating_sub(heartbeat);
                if silent_for >= bound {
                    reasons.push(HealthReason::StuckWorker {
                        shard,
                        busy_for: Duration::from_nanos(silent_for),
                    });
                }
            }
        }

        // Stalled rebuilds are only meaningful when workers run periodic
        // maintenance; with manual maintenance pending jobs are the
        // caller's business.
        if !self.workers.is_empty() {
            for (shard, slot) in self.shards.iter().enumerate() {
                let stamp = &self.pending_since[shard];
                if slot.view().pending_jobs() == 0 {
                    stamp.store(0, Ordering::Relaxed);
                    continue;
                }
                let since = stamp.load(Ordering::Relaxed);
                if since == 0 {
                    stamp.store(now.max(1), Ordering::Relaxed);
                    continue;
                }
                let pending_for = now.saturating_sub(since);
                if pending_for >= self.options.stalled_rebuild_after.as_nanos() as u64 {
                    reasons.push(HealthReason::StalledRebuild {
                        shard,
                        pending_for: Duration::from_nanos(pending_for),
                    });
                }
            }
        }

        if let Some(registry) = &self.registry {
            if let Some(fsync) = registry.find_histogram(WAL_FSYNC_HISTOGRAM) {
                let snap = fsync.snapshot();
                if snap.count() > 0 {
                    let p99 = Duration::from_nanos(snap.percentile(0.99));
                    if p99 > self.options.max_fsync_p99 {
                        reasons.push(HealthReason::SlowFsync {
                            p99,
                            bound: self.options.max_fsync_p99,
                        });
                    }
                }
            }
            let count = |name: &str| registry.find_counter(name).map_or(0, |c| c.get());
            let append_errors = count(WAL_APPEND_ERRORS);
            let fsync_errors = count(WAL_FSYNC_ERRORS);
            if append_errors > 0 || fsync_errors > 0 {
                reasons.push(HealthReason::WalErrors {
                    append_errors,
                    fsync_errors,
                });
            }
        }

        let mut report = HealthReport::from_reasons(reasons);
        // Every shard poisoned means no write can land anywhere: escalate.
        if poisoned == self.shards.len() && poisoned > 0 {
            report.status = HealthStatus::Unhealthy;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndex_core::{DynOptions, FmConfig, RebuildMode, Transform2Index};
    use dyndex_obs::Unit;
    use dyndex_text::FmIndexCompressed;

    fn slots(n: usize) -> Arc<Vec<ShardSlot<FmIndexCompressed>>> {
        Arc::new(
            (0..n)
                .map(|shard| {
                    let index = Transform2Index::new(
                        FmConfig { sample_rate: 8 },
                        DynOptions::default(),
                        RebuildMode::Inline,
                    );
                    ShardSlot::new(shard, index, None)
                })
                .collect(),
        )
    }

    fn state(
        shards: Arc<Vec<ShardSlot<FmIndexCompressed>>>,
        options: HealthOptions,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> HealthState<FmIndexCompressed> {
        HealthState::new(shards, Vec::new(), options, registry)
    }

    #[test]
    fn quiet_store_is_ok() {
        let state = state(slots(2), HealthOptions::default(), None);
        let report = state.check();
        assert_eq!(report.status, HealthStatus::Ok);
        assert!(report.reasons.is_empty());
    }

    #[test]
    fn held_write_lock_degrades_after_threshold() {
        let shards = slots(2);
        let state = state(
            Arc::clone(&shards),
            HealthOptions {
                writer_stall_after: Duration::from_millis(10),
                ..HealthOptions::default()
            },
            None,
        );
        let guard = shards[1].write().unwrap();
        std::thread::sleep(Duration::from_millis(25));
        let report = state.check();
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(report
            .reasons
            .iter()
            .any(|r| matches!(r, HealthReason::WriterStalled { shard: 1, .. })));
        drop(guard);
        assert_eq!(
            state.check().status,
            HealthStatus::Ok,
            "recovers on release"
        );
    }

    #[test]
    fn one_poisoned_shard_degrades_all_poisoned_escalates() {
        let shards = slots(2);
        let poison = |shard: usize| {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shards[shard].write().unwrap();
                panic!("poison shard {shard}");
            }));
        };
        let state = state(Arc::clone(&shards), HealthOptions::default(), None);

        poison(0);
        let report = state.check();
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(report
            .reasons
            .iter()
            .any(|r| matches!(r, HealthReason::ShardPoisoned { shard: 0 })));

        poison(1);
        let report = state.check();
        assert_eq!(
            report.status,
            HealthStatus::Unhealthy,
            "no shard can accept writes: escalate past Degraded"
        );
        assert_eq!(report.reasons.len(), 2);
    }

    #[test]
    fn wal_trouble_is_found_by_metric_name() {
        let registry = Arc::new(MetricsRegistry::new());
        let state = state(
            slots(1),
            HealthOptions::default(),
            Some(Arc::clone(&registry)),
        );
        assert_eq!(state.check().status, HealthStatus::Ok);

        // The watchdog discovers the WAL series the persist layer
        // registers purely by name — no cross-crate wiring.
        let fsync_errors = registry.counter(WAL_FSYNC_ERRORS, "", Unit::Count);
        fsync_errors.inc();
        let report = state.check();
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(report.reasons.iter().any(|r| matches!(
            r,
            HealthReason::WalErrors {
                append_errors: 0,
                fsync_errors: 1,
            }
        )));

        let fsync = registry.histogram(WAL_FSYNC_HISTOGRAM, "", Unit::Nanos, 1);
        fsync.record(Duration::from_secs(1).as_nanos() as u64);
        let report = state.check();
        assert!(
            report
                .reasons
                .iter()
                .any(|r| matches!(r, HealthReason::SlowFsync { .. })),
            "{report}"
        );
    }
}
