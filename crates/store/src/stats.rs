//! Aggregated store observability: per-shard and whole-store censuses.

use dyndex_core::LevelStats;

/// Point-in-time census of one shard.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index in `0..num_shards`.
    pub shard: usize,
    /// Alive documents routed to this shard.
    pub docs: usize,
    /// Alive bytes in this shard.
    pub symbols: usize,
    /// Background jobs currently in flight (rebuilds + top maintenance) —
    /// the shard's pending-work depth.
    pub pending_jobs: usize,
    /// Per-structure census (`C0`, levels, locked copies, tops, …).
    pub levels: Vec<LevelStats>,
}

/// Point-in-time census of the whole store.
#[derive(Clone, Debug)]
pub struct StoreStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl StoreStats {
    /// Alive documents across all shards.
    pub fn total_docs(&self) -> usize {
        self.shards.iter().map(|s| s.docs).sum()
    }

    /// Alive bytes across all shards.
    pub fn total_symbols(&self) -> usize {
        self.shards.iter().map(|s| s.symbols).sum()
    }

    /// In-flight background jobs across all shards.
    pub fn pending_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.pending_jobs).sum()
    }

    /// Shard-balance ratio: largest shard's symbols over the ideal
    /// per-shard share (1.0 = perfectly even; meaningless when empty).
    pub fn imbalance(&self) -> f64 {
        let total = self.total_symbols();
        if total == 0 || self.shards.is_empty() {
            return 1.0;
        }
        let max = self.shards.iter().map(|s| s.symbols).max().unwrap_or(0);
        max as f64 * self.shards.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: usize, docs: usize, symbols: usize, pending: usize) -> ShardStats {
        ShardStats {
            shard: i,
            docs,
            symbols,
            pending_jobs: pending,
            levels: Vec::new(),
        }
    }

    #[test]
    fn aggregation() {
        let stats = StoreStats {
            shards: vec![shard(0, 3, 300, 1), shard(1, 5, 100, 0)],
        };
        assert_eq!(stats.total_docs(), 8);
        assert_eq!(stats.total_symbols(), 400);
        assert_eq!(stats.pending_jobs(), 1);
        assert_eq!(stats.imbalance(), 1.5);
    }

    #[test]
    fn empty_store_imbalance_is_neutral() {
        let stats = StoreStats { shards: vec![] };
        assert_eq!(stats.imbalance(), 1.0);
        assert_eq!(stats.total_docs(), 0);
    }
}
