//! Aggregated store observability: per-shard and whole-store censuses.

use dyndex_core::LevelStats;
use std::time::Duration;

/// Point-in-time census of one shard.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index in `0..num_shards`.
    pub shard: usize,
    /// Alive documents routed to this shard.
    pub docs: usize,
    /// Alive bytes in this shard.
    pub symbols: usize,
    /// Background jobs currently in flight (rebuilds + top maintenance) —
    /// the shard's pending-work depth.
    pub pending_jobs: usize,
    /// Query requests waiting in this shard's worker queue, excluding
    /// one currently executing — see [`ShardStats::worker_busy`] (0 when
    /// no worker pool exists — see [`FanOutPolicy`](crate::FanOutPolicy)).
    pub queued_requests: usize,
    /// Whether this shard's resident worker was executing a request at
    /// census time (`false` when no pool exists).
    pub worker_busy: bool,
    /// Per-structure census (`C0`, levels, locked copies, tops, …).
    pub levels: Vec<LevelStats>,
}

/// Point-in-time census of the whole store.
#[derive(Clone, Debug)]
pub struct StoreStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// Bytes on disk of the most recent snapshot, when the store is
    /// served through a durability layer (`dyndex-persist`'s
    /// `DurableStore` fills this in; a plain in-memory store reports
    /// `None`).
    pub snapshot_bytes: Option<u64>,
    /// Whether a background snapshot had serialization work queued or
    /// running on the worker pool at census time.
    pub snapshot_in_progress: bool,
    /// p99 end-to-end query latency, when telemetry is enabled and at
    /// least one query has been recorded.
    pub query_p99: Option<Duration>,
    /// p99 WAL fsync latency, when the store is served through a
    /// durability layer with telemetry enabled and at least one fsync
    /// has been recorded.
    pub wal_fsync_p99: Option<Duration>,
    /// Retired shard views awaiting epoch reclamation (process-global,
    /// point-in-time).
    pub retired_garbage: usize,
    /// Documents loaded through the bulk-ingest fast path
    /// ([`ShardedStore::ingest`](crate::ShardedStore::ingest)) over the
    /// store's lifetime. Tracked store-side, so it is reported even with
    /// telemetry disabled.
    pub ingested_docs: u64,
    /// Throughput of the most recent bulk ingest in docs/second, when
    /// telemetry is enabled and at least one ingest has completed.
    pub ingest_docs_per_sec: Option<u64>,
}

impl StoreStats {
    /// Alive documents across all shards.
    pub fn total_docs(&self) -> usize {
        self.shards.iter().map(|s| s.docs).sum()
    }

    /// Alive bytes across all shards.
    pub fn total_symbols(&self) -> usize {
        self.shards.iter().map(|s| s.symbols).sum()
    }

    /// In-flight background jobs across all shards.
    pub fn pending_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.pending_jobs).sum()
    }

    /// Query requests waiting across all worker queues (0 without a
    /// pool). Cross-reference: [`ShardStats::queued_requests`].
    pub fn queued_requests(&self) -> usize {
        self.shards.iter().map(|s| s.queued_requests).sum()
    }

    /// Workers executing a request at census time (0 without a pool).
    /// Cross-reference: [`ShardStats::worker_busy`].
    pub fn busy_workers(&self) -> usize {
        self.shards.iter().filter(|s| s.worker_busy).count()
    }

    /// Shard-balance ratio: largest shard's symbols over the ideal
    /// per-shard share (1.0 = perfectly even). An empty or zero-doc
    /// store has no balance to measure and reports 0.0 — never NaN and
    /// never a divide-by-zero panic.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_symbols();
        if total == 0 || self.shards.is_empty() {
            return 0.0;
        }
        let max = self.shards.iter().map(|s| s.symbols).max().unwrap_or(0);
        max as f64 * self.shards.len() as f64 / total as f64
    }
}

/// Human-scale byte formatting for the dashboard line.
fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b} B")
    } else if b < 1024 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    }
}

/// Human-scale latency formatting for the dashboard line.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

impl std::fmt::Display for StoreStats {
    /// One readable dashboard line, e.g.
    /// `4 shards | 1500 docs | 232.4 KiB alive | 0 pending jobs |
    /// 0 queued | imbalance 1.04 | p99 query 48.2µs | p99 fsync 1.3ms |
    /// 2 retired views | last snapshot 241.1 KiB on disk`.
    ///
    /// The latency fields appear only when telemetry recorded them.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shard{} | {} docs | {} alive | {} pending job{} | {} queued | imbalance {:.2}",
            self.shards.len(),
            if self.shards.len() == 1 { "" } else { "s" },
            self.total_docs(),
            fmt_bytes(self.total_symbols() as u64),
            self.pending_jobs(),
            if self.pending_jobs() == 1 { "" } else { "s" },
            self.queued_requests(),
            self.imbalance(),
        )?;
        if self.ingested_docs > 0 {
            write!(f, " | {} ingested", self.ingested_docs)?;
            if let Some(rate) = self.ingest_docs_per_sec {
                write!(f, " ({rate} docs/s)")?;
            }
        }
        if let Some(p99) = self.query_p99 {
            write!(f, " | p99 query {}", fmt_duration(p99))?;
        }
        if let Some(p99) = self.wal_fsync_p99 {
            write!(f, " | p99 fsync {}", fmt_duration(p99))?;
        }
        write!(
            f,
            " | {} retired view{}",
            self.retired_garbage,
            if self.retired_garbage == 1 { "" } else { "s" },
        )?;
        match self.snapshot_bytes {
            Some(b) => write!(f, " | last snapshot {} on disk", fmt_bytes(b))?,
            None => write!(f, " | no snapshot")?,
        }
        if self.snapshot_in_progress {
            write!(f, " | snapshot in progress")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: usize, docs: usize, symbols: usize, pending: usize) -> ShardStats {
        ShardStats {
            shard: i,
            docs,
            symbols,
            pending_jobs: pending,
            queued_requests: 2 * i,
            worker_busy: i % 2 == 1,
            levels: Vec::new(),
        }
    }

    #[test]
    fn aggregation() {
        let stats = StoreStats {
            shards: vec![shard(0, 3, 300, 1), shard(1, 5, 100, 0)],
            snapshot_bytes: None,
            snapshot_in_progress: false,
            query_p99: None,
            wal_fsync_p99: None,
            retired_garbage: 0,
            ingested_docs: 0,
            ingest_docs_per_sec: None,
        };
        assert_eq!(stats.total_docs(), 8);
        assert_eq!(stats.total_symbols(), 400);
        assert_eq!(stats.pending_jobs(), 1);
        assert_eq!(stats.queued_requests(), 2, "shard 1 holds 2 requests");
        assert_eq!(stats.busy_workers(), 1, "only shard 1's worker is busy");
        assert_eq!(stats.imbalance(), 1.5);
    }

    #[test]
    fn empty_store_imbalance_is_zero_not_nan() {
        let empty = StoreStats {
            shards: vec![],
            snapshot_bytes: None,
            snapshot_in_progress: false,
            query_p99: None,
            wal_fsync_p99: None,
            retired_garbage: 0,
            ingested_docs: 0,
            ingest_docs_per_sec: None,
        };
        assert_eq!(empty.imbalance(), 0.0);
        assert!(!empty.imbalance().is_nan());
        assert_eq!(empty.total_docs(), 0);

        // Shards exist but hold nothing: still 0.0, not NaN or a panic.
        let zero_docs = StoreStats {
            shards: vec![shard(0, 0, 0, 0), shard(1, 0, 0, 0)],
            snapshot_bytes: None,
            snapshot_in_progress: false,
            query_p99: None,
            wal_fsync_p99: None,
            retired_garbage: 0,
            ingested_docs: 0,
            ingest_docs_per_sec: None,
        };
        assert_eq!(zero_docs.imbalance(), 0.0);
        assert!(!zero_docs.imbalance().is_nan());
        assert!(zero_docs.to_string().contains("imbalance 0.00"));
    }

    #[test]
    fn display_is_one_dashboard_line() {
        let mut stats = StoreStats {
            shards: vec![shard(0, 3, 300, 1), shard(1, 5, 100, 0)],
            snapshot_bytes: None,
            snapshot_in_progress: false,
            query_p99: None,
            wal_fsync_p99: None,
            retired_garbage: 0,
            ingested_docs: 0,
            ingest_docs_per_sec: None,
        };
        let line = stats.to_string();
        assert!(!line.contains('\n'), "single line: {line}");
        assert!(line.contains("2 shards"), "{line}");
        assert!(line.contains("8 docs"), "{line}");
        assert!(line.contains("1 pending job"), "{line}");
        assert!(line.contains("2 queued"), "{line}");
        assert!(line.contains("no snapshot"), "{line}");
        assert!(line.contains("0 retired views"), "{line}");
        assert!(!line.contains("p99"), "absent until recorded: {line}");
        assert!(
            !line.contains("ingested"),
            "absent until an ingest ran: {line}"
        );
        stats.snapshot_bytes = Some(2048);
        let line = stats.to_string();
        assert!(line.contains("last snapshot 2.0 KiB on disk"), "{line}");
        assert!(!line.contains("snapshot in progress"), "{line}");
        stats.snapshot_in_progress = true;
        let line = stats.to_string();
        assert!(line.contains("snapshot in progress"), "{line}");
        assert!(!line.contains('\n'), "single line: {line}");
    }

    #[test]
    fn display_includes_telemetry_when_present() {
        let stats = StoreStats {
            shards: vec![shard(0, 3, 300, 1), shard(1, 5, 100, 0)],
            snapshot_bytes: None,
            snapshot_in_progress: false,
            query_p99: Some(Duration::from_micros(48)),
            wal_fsync_p99: Some(Duration::from_micros(1300)),
            retired_garbage: 2,
            ingested_docs: 5000,
            ingest_docs_per_sec: Some(125_000),
        };
        let line = stats.to_string();
        assert!(!line.contains('\n'), "single line: {line}");
        assert!(line.contains("p99 query 48.0µs"), "{line}");
        assert!(line.contains("p99 fsync 1.3ms"), "{line}");
        assert!(line.contains("2 retired views"), "{line}");
        assert!(line.contains("5000 ingested (125000 docs/s)"), "{line}");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(750)), "750ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1_500)), "1.5µs");
        assert_eq!(fmt_duration(Duration::from_micros(2_500)), "2.5ms");
        assert_eq!(fmt_duration(Duration::from_millis(1_250)), "1.25s");
    }
}
