//! One shard's state pair: the writer-side [`Transform2Index`] behind its
//! `RwLock`, and the reader-side [`ShardView`] published through an
//! epoch-reclaimed [`ViewCell`].
//!
//! The contract, enforced by construction:
//!
//! * **Readers never touch the lock.** Every query loads the current
//!   view with one atomic op ([`ShardSlot::view`]) and runs against that
//!   immutable snapshot.
//! * **Writers publish on release.** The only way to mutate a shard is
//!   through a [`ShardGuard`]; when the guard drops after a successful
//!   mutation it captures a fresh view and installs it with one pointer
//!   swap — readers see either the old or the new view, never a torn
//!   intermediate.
//! * **Panics never publish.** If the guard is dropped mid-unwind
//!   (a panicked writer), no view is captured: the lock poisons as
//!   usual, but readers keep serving the last *good* view forever, and
//!   later writers get a typed [`ShardPoisoned`] error instead of a
//!   cascading panic.

use crate::epoch::ViewCell;
use dyndex_core::{ShardView, StaticIndex, Transform2Index};
use dyndex_obs::Counter;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockWriteGuard};

/// Error returned by writer entry points when a previous writer panicked
/// mid-mutation in the target shard, leaving its `RwLock` poisoned. The
/// shard's last published view keeps answering queries; only further
/// writes to that one shard are refused (other shards are unaffected).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPoisoned {
    /// The shard whose writer panicked.
    pub shard: usize,
}

impl std::fmt::Display for ShardPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} is poisoned by a panicked writer; reads keep serving \
             the last published view, writes to this shard are refused",
            self.shard
        )
    }
}

impl std::error::Error for ShardPoisoned {}

/// One shard: writer index + published reader view.
pub(crate) struct ShardSlot<I: StaticIndex + Sync> {
    shard: usize,
    index: RwLock<Transform2Index<I>>,
    view: ViewCell<ShardView<I>>,
    /// Monotonic nanos ([`crate::health::nanos_now`]) when the current
    /// write guard was taken; 0 while the lock is free. The watchdog's
    /// writer-stall detector reads this.
    locked_since: AtomicU64,
    /// Per-poisoning-event counter (distinct from the per-refused-write
    /// counter): incremented exactly once when a writer panic poisons
    /// this shard, gated by `poison_latch`.
    poison_events: Option<Arc<Counter>>,
    poison_latch: AtomicBool,
}

impl<I: StaticIndex + Sync> ShardSlot<I> {
    /// Wraps `index` and publishes its initial view. `poison_events`,
    /// when present, is incremented once if a writer panic ever poisons
    /// this shard.
    pub(crate) fn new(
        shard: usize,
        mut index: Transform2Index<I>,
        poison_events: Option<Arc<Counter>>,
    ) -> Self {
        let view = ViewCell::new(Arc::new(index.snapshot_view()));
        ShardSlot {
            shard,
            index: RwLock::new(index),
            view,
            locked_since: AtomicU64::new(0),
            poison_events,
            poison_latch: AtomicBool::new(false),
        }
    }

    /// The shard's currently-published immutable view (one atomic load;
    /// never blocks, never observes the lock).
    pub(crate) fn view(&self) -> Arc<ShardView<I>> {
        self.view.load()
    }

    /// Write access; republishes the view when the guard drops cleanly.
    pub(crate) fn write(&self) -> Result<ShardGuard<'_, I>, ShardPoisoned> {
        match self.index.write() {
            Ok(guard) => {
                self.locked_since
                    .store(crate::health::nanos_now(), Ordering::Relaxed);
                Ok(ShardGuard { slot: self, guard })
            }
            Err(_) => Err(ShardPoisoned { shard: self.shard }),
        }
    }

    /// Non-blocking write access: `None` when the lock is contended *or*
    /// poisoned (maintenance paths skip either way).
    pub(crate) fn try_write(&self) -> Option<ShardGuard<'_, I>> {
        match self.index.try_write() {
            Ok(guard) => {
                self.locked_since
                    .store(crate::health::nanos_now(), Ordering::Relaxed);
                Some(ShardGuard { slot: self, guard })
            }
            Err(_) => None,
        }
    }

    /// Whether a panicked writer has poisoned this shard's lock.
    pub(crate) fn is_poisoned(&self) -> bool {
        self.index.is_poisoned()
    }

    /// When the current write guard was taken (0 = lock free).
    pub(crate) fn locked_since(&self) -> u64 {
        self.locked_since.load(Ordering::Relaxed)
    }
}

/// A write guard over one shard's [`Transform2Index`] that publishes a
/// fresh [`ShardView`] when dropped — unless the thread is unwinding, in
/// which case the half-mutated state is never made visible to readers.
pub struct ShardGuard<'a, I: StaticIndex + Sync> {
    slot: &'a ShardSlot<I>,
    guard: RwLockWriteGuard<'a, Transform2Index<I>>,
}

impl<I: StaticIndex + Sync> Deref for ShardGuard<'_, I> {
    type Target = Transform2Index<I>;

    fn deref(&self) -> &Transform2Index<I> {
        &self.guard
    }
}

impl<I: StaticIndex + Sync> DerefMut for ShardGuard<'_, I> {
    fn deref_mut(&mut self) -> &mut Transform2Index<I> {
        &mut self.guard
    }
}

impl<I: StaticIndex + Sync> Drop for ShardGuard<'_, I> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // A panicked writer may have left the index mid-mutation:
            // readers must keep the last good view, so publish nothing.
            // Count the poisoning itself exactly once — the latch keeps
            // later refused writes from re-counting the event — and
            // clear the hold stamp so the watchdog reports the shard as
            // poisoned, not as a stalled writer too.
            if !self.slot.poison_latch.swap(true, Ordering::Relaxed) {
                if let Some(counter) = &self.slot.poison_events {
                    counter.inc();
                }
            }
            self.slot.locked_since.store(0, Ordering::Relaxed);
            return;
        }
        // Capture-then-swap happens while the write lock is still held
        // (the inner guard drops after this body), so publications are
        // serialized and view epochs stay strictly monotone.
        self.slot.view.store(Arc::new(self.guard.snapshot_view()));
        self.slot.locked_since.store(0, Ordering::Relaxed);
    }
}
