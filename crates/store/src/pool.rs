//! The resident per-shard worker pool: one long-lived thread pinned to
//! each shard, serving query jobs from an MPSC request queue and draining
//! the shard's finished rebuild jobs between requests.
//!
//! `fig4_sharding` showed that spawning a scoped thread per shard per
//! query dominates µs-scale queries — the thread setup costs more than
//! the per-shard work it carries. The pool amortizes that setup once at
//! store construction: queries are submitted as boxed closures plus a
//! reply channel ([`WorkerPool::submit`]), executed on the shard's
//! resident worker, and merged by the caller exactly as before.
//!
//! The pool also absorbs the old periodic maintenance scheduler: when a
//! worker's queue has been idle for one maintenance tick it polls its
//! shard with `try_write` and installs any finished background rebuild
//! jobs — so installs stay off the foreground path without a separate
//! scheduler thread, and a shard busy serving readers or a writer is
//! simply skipped until the next tick, never contended.

use crate::shard::ShardSlot;
use dyndex_core::StaticIndex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of work for one shard's worker: a closure run against the
/// shard's slot. Query jobs load the shard's published view inside the
/// closure — no lock — and send their answer through a captured reply
/// channel.
pub(crate) type Job<I> = Box<dyn FnOnce(&ShardSlot<I>) + Send>;

/// Live per-worker gauges, shared with [`crate::StoreStats`] and the
/// health watchdog.
#[derive(Default)]
pub(crate) struct WorkerGauges {
    /// Requests waiting in the queue (a dequeued request moves to `busy`
    /// before this drops, so depth + busy never undercounts).
    queued: AtomicUsize,
    /// Whether the worker is currently executing a request.
    busy: AtomicBool,
    /// Monotonic nanos of the worker's last loop iteration (see
    /// [`crate::health::nanos_now`]); 0 until the worker first runs.
    heartbeat: AtomicU64,
    /// Monotonic nanos when the currently-executing request started;
    /// 0 while idle. The watchdog's stuck-worker detector reads this.
    busy_since: AtomicU64,
}

impl WorkerGauges {
    /// Last heartbeat stamp (0 = never ran).
    pub(crate) fn heartbeat(&self) -> u64 {
        self.heartbeat.load(Ordering::Relaxed)
    }

    /// When the current request started (0 = idle).
    pub(crate) fn busy_since(&self) -> u64 {
        self.busy_since.load(Ordering::Relaxed)
    }

    /// Requests currently waiting in the worker's queue.
    pub(crate) fn queued_depth(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }
}

struct Worker {
    gauges: Arc<WorkerGauges>,
    handle: Option<JoinHandle<()>>,
}

/// One resident worker per shard, plus the shared install counter.
/// Dropping the pool closes every queue; workers finish the requests
/// already queued, then exit and are joined.
pub(crate) struct WorkerPool<I: StaticIndex + Sync> {
    /// Typed senders, parallel to `workers` (kept separate so `Worker`
    /// needs no `I` parameter); cleared first during teardown so the
    /// workers see their queues close before being joined.
    senders: Vec<Sender<Job<I>>>,
    workers: Vec<Worker>,
    /// Rebuild jobs installed by workers (not by foreground operations).
    installs: Arc<AtomicU64>,
}

impl<I: StaticIndex + Sync> WorkerPool<I> {
    /// Spawns one worker per shard, each polling its queue and — after
    /// `tick` of queue idleness — draining its shard's finished rebuild
    /// jobs via `try_write`.
    pub(crate) fn spawn(shards: Arc<Vec<ShardSlot<I>>>, tick: Duration) -> Self {
        let installs = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(shards.len());
        let workers = (0..shards.len())
            .map(|shard| {
                let (tx, rx) = mpsc::channel::<Job<I>>();
                let gauges = Arc::new(WorkerGauges::default());
                let handle = {
                    let shards = Arc::clone(&shards);
                    let gauges = Arc::clone(&gauges);
                    let installs = Arc::clone(&installs);
                    std::thread::spawn(move || {
                        worker_loop(&shards, shard, rx, &gauges, &installs, tick)
                    })
                };
                senders.push(tx);
                Worker {
                    gauges,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool {
            senders,
            workers,
            installs,
        }
    }

    /// Number of resident workers (= shards).
    pub(crate) fn len(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `job` on `shard`'s worker. The job runs after everything
    /// already queued there; replies travel through whatever channel the
    /// closure captured.
    pub(crate) fn submit(&self, shard: usize, job: Job<I>) {
        let worker = &self.workers[shard];
        worker.gauges.queued.fetch_add(1, Ordering::Relaxed);
        if self.senders[shard].send(job).is_err() {
            // Worker gone (only possible mid-teardown); the dropped job
            // closes its reply channel, so the caller observes the loss.
            worker.gauges.queued.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Waits until every request queued before this call has completed:
    /// submits a no-op rendezvous job to every worker and blocks for all
    /// replies. The backbone of [`crate::ShardedStore::flush`].
    pub(crate) fn drain(&self) {
        let receivers: Vec<Receiver<()>> = (0..self.len())
            .map(|shard| {
                let (tx, rx) = mpsc::channel();
                self.submit(
                    shard,
                    Box::new(move |_| {
                        let _ = tx.send(());
                    }),
                );
                rx
            })
            .collect();
        for rx in receivers {
            // A disconnect (worker died without running the job) still
            // means the queue ahead of the rendezvous point is spent.
            let _ = rx.recv();
        }
    }

    /// One-pass read of `shard`'s gauges: `(queued_requests, busy)` from
    /// the same instant — the census never mixes a queue depth and a busy
    /// flag observed across separate visits. Queued excludes the request
    /// currently executing (that one is the `busy` flag).
    pub(crate) fn shard_gauges(&self, shard: usize) -> (usize, bool) {
        let gauges = &self.workers[shard].gauges;
        (
            gauges.queued.load(Ordering::Relaxed),
            gauges.busy.load(Ordering::Relaxed),
        )
    }

    /// Rebuild jobs installed by workers so far.
    pub(crate) fn installs(&self) -> u64 {
        self.installs.load(Ordering::Relaxed)
    }

    /// Shared gauge handles, one per worker — the health watchdog holds
    /// these to read heartbeats without referencing the pool itself.
    pub(crate) fn gauges(&self) -> Vec<Arc<WorkerGauges>> {
        self.workers.iter().map(|w| Arc::clone(&w.gauges)).collect()
    }
}

impl<I: StaticIndex + Sync> Drop for WorkerPool<I> {
    fn drop(&mut self) {
        // Close every queue first: workers finish what is already queued
        // (std mpsc delivers buffered messages even after the sender is
        // dropped), then observe the disconnect and exit.
        self.senders.clear();
        for worker in self.workers.iter_mut() {
            if let Some(handle) = worker.handle.take() {
                if std::thread::panicking() {
                    // Already unwinding (e.g. a panicking test dropping
                    // the store): a second panic here would abort.
                    let _ = handle.join();
                } else {
                    handle.join().expect("shard worker panicked");
                }
            }
        }
    }
}

/// The worker body: block on the request queue (up to one maintenance
/// tick), execute jobs as they arrive, and drain the shard's finished
/// rebuild work whenever a tick has elapsed since the last drain — on
/// queue idleness *or* between back-to-back requests.
fn worker_loop<I: StaticIndex + Sync>(
    shards: &[ShardSlot<I>],
    shard: usize,
    rx: Receiver<Job<I>>,
    gauges: &WorkerGauges,
    installs: &AtomicU64,
    tick: Duration,
) {
    let slot = &shards[shard];
    let mut last_maintain = Instant::now();
    loop {
        gauges
            .heartbeat
            .store(crate::health::nanos_now(), Ordering::Relaxed);
        match rx.recv_timeout(tick) {
            Ok(job) => {
                gauges.busy.store(true, Ordering::Relaxed);
                gauges
                    .busy_since
                    .store(crate::health::nanos_now(), Ordering::Relaxed);
                gauges.queued.fetch_sub(1, Ordering::Relaxed);
                // Jobs wrap their own work in `catch_unwind` and report
                // panics through their reply channel; a panic escaping
                // here would only come from the reply send itself, which
                // is infallible-by-construction. Either way the worker
                // must survive for the shard to stay serviceable, so
                // contain anything that slips through.
                let survived =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(slot))).is_ok();
                debug_assert!(survived, "query job leaked a panic past its reply channel");
                gauges.busy_since.store(0, Ordering::Relaxed);
                gauges.busy.store(false, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if last_maintain.elapsed() >= tick {
            last_maintain = Instant::now();
            // Never contend with foreground work (and never touch a
            // shard poisoned by a panicked writer): skip unless the
            // write lock is free and healthy. Dropping the guard
            // republishes the shard's view, so installs become visible
            // to the lock-free read path immediately.
            let Some(mut index) = slot.try_write() else {
                continue;
            };
            let before = index.work().jobs_completed;
            index.poll_background_work();
            let installed = index.work().jobs_completed - before;
            if installed > 0 {
                installs.fetch_add(installed, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyndex_core::{DynOptions, FmConfig, RebuildMode, Transform2Index};
    use dyndex_text::FmIndexCompressed;

    /// Workers stamp a heartbeat every loop iteration — the watchdog's
    /// evidence that a worker thread is alive and cycling.
    #[test]
    fn workers_heartbeat() {
        let slots: Vec<ShardSlot<FmIndexCompressed>> = (0..2)
            .map(|shard| {
                let index = Transform2Index::new(
                    FmConfig { sample_rate: 8 },
                    DynOptions::default(),
                    RebuildMode::Inline,
                );
                ShardSlot::new(shard, index, None)
            })
            .collect();
        let pool = WorkerPool::spawn(Arc::new(slots), Duration::from_micros(100));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let gauges = pool.gauges();
            if gauges.iter().all(|g| g.heartbeat() != 0) {
                assert!(gauges.iter().all(|g| g.busy_since() == 0), "idle workers");
                break;
            }
            assert!(Instant::now() < deadline, "workers never heartbeat");
            std::thread::yield_now();
        }
    }
}
