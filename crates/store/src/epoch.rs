//! Epoch-based reclamation for atomically-published shard views.
//!
//! [`ViewCell`] is the store's `ArcSwap`-style primitive: a single
//! `AtomicPtr` holding the current [`Arc`]'d value. Readers load it with
//! one atomic pointer read plus a reference-count bump; writers install a
//! successor with one pointer swap. The subtlety is the race between a
//! reader's pointer load and its refcount bump: if the writer dropped the
//! old `Arc` immediately after swapping, a reader holding the raw pointer
//! could bump a freed count. The classic fix — and the one used here — is
//! **epoch-based reclamation** (crossbeam-style):
//!
//! * A process-global epoch counter advances on every swap.
//! * Each reading thread owns a *slot*; it pins itself by storing the
//!   current epoch into its slot (`SeqCst`) before touching the pointer,
//!   and unpins (stores `u64::MAX`) after the refcount bump.
//! * A swapped-out value is not dropped but *retired* with the epoch at
//!   swap time; retired garbage is freed only once every slot is pinned
//!   strictly above (or unpinned) — at which point no reader can still
//!   hold the raw pointer without having bumped the count.
//!
//! Why a pinned reader can never see freed memory: if a reader's pointer
//! load returned the *old* value, that load preceded the writer's swap in
//! the `SeqCst` total order, so the reader's earlier slot store (its pin)
//! also preceded the writer's later slot scan — the scan must observe the
//! pin and keep the garbage. Conversely a scan that saw the slot unpinned
//! proves the reader's pointer load came after the swap and returned the
//! new value. Either way `Arc::increment_strong_count` runs on a live
//! allocation.
//!
//! Slots are registered once per thread (`thread_local!`) and recycled
//! through a free list when the thread exits, so churning threads (soak
//! tests, scoped fan-outs) do not grow the registry without bound.

use dyndex_obs::{FlightRecorder, Span, SpanKind};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};

/// Slot value meaning "this thread holds no pinned pointer".
const UNPINNED: u64 = u64::MAX;

/// One thread's pin state: the epoch it pinned at, or [`UNPINNED`].
struct ReaderSlot {
    epoch: AtomicU64,
}

/// Retired garbage: the epoch it was retired at plus the value itself
/// (dropping the box frees it).
type Retired = (u64, Box<dyn std::any::Any + Send>);

/// The process-global reclamation domain shared by every [`ViewCell`].
struct Domain {
    /// Advances on every [`ViewCell::store`].
    epoch: AtomicU64,
    /// Every thread slot ever registered (scanned by writers).
    slots: Mutex<Vec<Arc<ReaderSlot>>>,
    /// Indexes into `slots` whose threads have exited, free for reuse.
    free: Mutex<Vec<usize>>,
    /// Values retired but not yet provably unreachable.
    garbage: Mutex<Vec<Retired>>,
    /// Cumulative [`collect`] passes (telemetry).
    passes: AtomicU64,
}

/// Mutex poisoning cannot leave these structures torn (no panicking code
/// runs under them); recover the guard instead of cascading.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn domain() -> &'static Domain {
    static DOMAIN: OnceLock<Domain> = OnceLock::new();
    DOMAIN.get_or_init(|| Domain {
        epoch: AtomicU64::new(0),
        slots: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
        passes: AtomicU64::new(0),
    })
}

/// RAII registration of this thread's [`ReaderSlot`]; returning the slot
/// index to the free list on thread exit.
struct SlotHandle {
    slot: Arc<ReaderSlot>,
    index: usize,
}

impl SlotHandle {
    fn register() -> Self {
        let d = domain();
        let mut slots = lock(&d.slots);
        if let Some(index) = lock(&d.free).pop() {
            let slot = Arc::clone(&slots[index]);
            slot.epoch.store(UNPINNED, Ordering::SeqCst);
            return SlotHandle { slot, index };
        }
        let slot = Arc::new(ReaderSlot {
            epoch: AtomicU64::new(UNPINNED),
        });
        slots.push(Arc::clone(&slot));
        SlotHandle {
            slot,
            index: slots.len() - 1,
        }
    }
}

impl Drop for SlotHandle {
    fn drop(&mut self) {
        self.slot.epoch.store(UNPINNED, Ordering::SeqCst);
        lock(&domain().free).push(self.index);
    }
}

thread_local! {
    static SLOT: SlotHandle = SlotHandle::register();
}

/// The flight recorder GC passes report spans to, registered (weakly, so
/// a dropped store never keeps its recorder alive through this global)
/// by the most recent store construction that enabled telemetry.
fn gc_flight_cell() -> &'static Mutex<Weak<FlightRecorder>> {
    static CELL: OnceLock<Mutex<Weak<FlightRecorder>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Weak::new()))
}

/// Registers `flight` as the recorder epoch-GC passes emit spans to.
/// The domain is process-global, so the last registration wins.
pub(crate) fn set_gc_flight(flight: &Arc<FlightRecorder>) {
    *lock(gc_flight_cell()) = Arc::downgrade(flight);
}

/// Frees every retired value whose retire epoch is provably below all
/// pinned readers. Actual drops happen after both locks are released.
fn collect(d: &Domain) {
    d.passes.fetch_add(1, Ordering::Relaxed);
    let flight = lock(gc_flight_cell()).upgrade();
    let started = flight
        .as_ref()
        .map(|f| (f.now_nanos(), std::time::Instant::now()));
    let min_pinned = {
        let slots = lock(&d.slots);
        slots
            .iter()
            .map(|s| s.epoch.load(Ordering::SeqCst))
            .min()
            .unwrap_or(UNPINNED)
    };
    let mut freed = Vec::new();
    {
        let mut garbage = lock(&d.garbage);
        let mut i = 0;
        while i < garbage.len() {
            if garbage[i].0 < min_pinned {
                freed.push(garbage.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }
    let freed_count = freed.len();
    drop(freed);
    // Only passes that reclaimed something become spans — empty passes
    // run on every publication and would drown the ring in noise.
    if freed_count > 0 {
        if let (Some(f), Some((start_nanos, t0))) = (flight, started) {
            f.record(Span {
                start_nanos,
                duration_nanos: t0.elapsed().as_nanos() as u64,
                detail: freed_count as u64,
                ..Span::child(0, SpanKind::EpochGc)
            });
        }
    }
}

/// Point-in-time reclamation telemetry: `(retired values not yet freed,
/// cumulative collect passes)`. Process-global, like the domain itself.
pub(crate) fn epoch_stats() -> (usize, u64) {
    let d = domain();
    (lock(&d.garbage).len(), d.passes.load(Ordering::Relaxed))
}

/// An atomically-swapped `Arc<T>` cell with epoch-reclaimed reads: one
/// atomic load (plus a refcount bump) per [`ViewCell::load`], one atomic
/// swap per [`ViewCell::store`], no locks anywhere on the read path.
pub(crate) struct ViewCell<T: Send + Sync + 'static> {
    /// Always a valid `Arc::into_raw` pointer; the cell owns one strong
    /// reference to whatever it currently points at.
    ptr: AtomicPtr<T>,
}

impl<T: Send + Sync + 'static> ViewCell<T> {
    pub(crate) fn new(value: Arc<T>) -> Self {
        ViewCell {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
        }
    }

    /// Loads the current value — wait-free apart from the one-time
    /// per-thread slot registration.
    pub(crate) fn load(&self) -> Arc<T> {
        let d = domain();
        SLOT.with(|handle| {
            let slot = &handle.slot;
            // Pin: publish the epoch we are reading under *before*
            // touching the pointer. A stale (smaller) epoch only makes
            // writers more conservative.
            slot.epoch
                .store(d.epoch.load(Ordering::SeqCst), Ordering::SeqCst);
            let ptr = self.ptr.load(Ordering::SeqCst);
            // SAFETY: `ptr` came from `Arc::into_raw` and the allocation
            // is alive: either it is still the cell's current value, or
            // it was retired at an epoch our pin prevents from being
            // freed (see module docs for the ordering argument).
            let arc = unsafe {
                Arc::increment_strong_count(ptr);
                Arc::from_raw(ptr)
            };
            slot.epoch.store(UNPINNED, Ordering::SeqCst);
            arc
        })
    }

    /// Publishes `value`, retiring the previous value into the epoch
    /// domain (freed once no reader can still hold its raw pointer).
    pub(crate) fn store(&self, value: Arc<T>) {
        let new = Arc::into_raw(value).cast_mut();
        let old = self.ptr.swap(new, Ordering::SeqCst);
        let d = domain();
        let retire_epoch = d.epoch.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `old` was this cell's `Arc::into_raw` pointer and the
        // swap transferred its strong reference to us.
        let old: Arc<T> = unsafe { Arc::from_raw(old) };
        lock(&d.garbage).push((retire_epoch, Box::new(old)));
        collect(d);
    }
}

impl<T: Send + Sync + 'static> Drop for ViewCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no reader can be mid-`load` on this cell.
        // (Readers that already finished `load` hold their own strong
        // references.) Retired predecessors live in the domain's garbage
        // list independently of the cell.
        let ptr = *self.ptr.get_mut();
        // SAFETY: the cell owns one strong reference to `ptr`.
        unsafe { drop(Arc::from_raw(ptr)) };
        collect(domain());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts live instances so reclamation is observable.
    struct Tracked(Arc<AtomicUsize>);
    impl Tracked {
        fn new(live: &Arc<AtomicUsize>) -> Self {
            live.fetch_add(1, Ordering::SeqCst);
            Tracked(Arc::clone(live))
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_returns_latest_store() {
        let cell = ViewCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        let held = cell.load();
        cell.store(Arc::new(3));
        assert_eq!(*held, 2, "already-loaded Arcs keep their value");
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn retired_values_are_eventually_freed() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = ViewCell::new(Arc::new(Tracked::new(&live)));
        for _ in 0..100 {
            cell.store(Arc::new(Tracked::new(&live)));
        }
        // Readers in concurrently-running tests may be pinned at recent
        // epochs, deferring the newest retirees; every further store
        // advances the epoch and collects, so the garbage must drain to
        // just the current value.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while live.load(Ordering::SeqCst) > 1 && std::time::Instant::now() < deadline {
            cell.store(Arc::new(Tracked::new(&live)));
            std::thread::yield_now();
        }
        assert_eq!(live.load(Ordering::SeqCst), 1);
        drop(cell);
        // Dropping the cell frees the final value too.
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_load_store_hammer() {
        let cell = Arc::new(ViewCell::new(Arc::new(0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "published values must be monotone");
                        last = v;
                    }
                });
            }
            for i in 1..=10_000u64 {
                cell.store(Arc::new(i));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(*cell.load(), 10_000);
    }

    #[test]
    fn thread_slots_are_recycled() {
        // Register slots from many short-lived threads; the registry must
        // stay bounded because exited threads return their slots.
        let before = lock(&domain().slots).len();
        for _ in 0..64 {
            std::thread::spawn(|| {
                let cell = ViewCell::new(Arc::new(7u8));
                let _ = cell.load();
            })
            .join()
            .unwrap();
        }
        // Concurrently-running tests may register a handful of slots of
        // their own; the point is that 64 sequential threads reuse one.
        let after = lock(&domain().slots).len();
        assert!(
            after <= before + 8,
            "slot registry grew from {before} to {after} across 64 threads"
        );
    }
}
