//! The background maintenance scheduler: a thread that periodically
//! drains each shard's finished rebuild/purge jobs so installs never ride
//! on a foreground operation.
//!
//! Transformation 2 spawns rebuilds on background threads, but a finished
//! job still has to be *installed* by whoever holds the index — without a
//! scheduler that means the next insert/delete/query pays the install.
//! The scheduler polls every shard with `try_write`: a shard busy serving
//! a writer (or readers) is simply skipped until the next tick, so the
//! scheduler can never stall the query path on lock acquisition.

use dyndex_core::{StaticIndex, Transform2Index};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shutdown flag + wakeup channel shared with the scheduler thread.
type Signal = Arc<(Mutex<bool>, Condvar)>;

/// Handle to the periodic maintenance thread; dropping the owning store
/// signals shutdown and joins it.
pub(crate) struct Scheduler {
    signal: Signal,
    handle: Option<JoinHandle<()>>,
    /// Jobs installed by the scheduler (not by foreground operations).
    installs: Arc<AtomicU64>,
}

impl Scheduler {
    /// Spawns the maintenance thread polling `shards` every `interval`.
    pub(crate) fn spawn<I>(shards: Arc<Vec<RwLock<Transform2Index<I>>>>, interval: Duration) -> Self
    where
        I: StaticIndex + Sync,
    {
        let signal: Signal = Arc::new((Mutex::new(false), Condvar::new()));
        let installs = Arc::new(AtomicU64::new(0));
        let thread_signal = Arc::clone(&signal);
        let thread_installs = Arc::clone(&installs);
        let handle = std::thread::spawn(move || {
            let (stop, wakeup) = &*thread_signal;
            loop {
                {
                    let guard = stop.lock().expect("scheduler signal poisoned");
                    if *guard {
                        return;
                    }
                    // Sleep one tick, waking early on shutdown.
                    let (guard, _) = wakeup
                        .wait_timeout(guard, interval)
                        .expect("scheduler signal poisoned");
                    if *guard {
                        return;
                    }
                }
                for shard in shards.iter() {
                    // Never contend with foreground work: skip busy shards.
                    let Ok(mut index) = shard.try_write() else {
                        continue;
                    };
                    let before = index.work().jobs_completed;
                    index.poll_background_work();
                    let installed = index.work().jobs_completed - before;
                    if installed > 0 {
                        thread_installs.fetch_add(installed, Ordering::Relaxed);
                    }
                }
            }
        });
        Scheduler {
            signal,
            handle: Some(handle),
            installs,
        }
    }

    /// Jobs the scheduler has installed so far.
    pub(crate) fn installs(&self) -> u64 {
        self.installs.load(Ordering::Relaxed)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        let (stop, wakeup) = &*self.signal;
        *stop.lock().expect("scheduler signal poisoned") = true;
        wakeup.notify_all();
        if let Some(handle) = self.handle.take() {
            handle.join().expect("maintenance thread panicked");
        }
    }
}
