//! The typed error surface of the persistence layer.
//!
//! Restore paths must *never* panic on bad bytes: a truncated file, a
//! flipped bit, or a stale manifest all surface as a [`PersistError`]
//! variant so callers can fall back (e.g. to an older snapshot or a full
//! rebuild) instead of crashing the process they were trying to revive.

use std::fmt;

/// Everything that can go wrong writing or reading durable state.
///
/// # Examples
///
/// ```
/// use dyndex_persist::PersistError;
///
/// let err = PersistError::WrongType { found: 0x2, expected: 0x7 };
/// assert!(err.to_string().contains("0x0002"));
/// let io: PersistError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
/// assert!(matches!(io, PersistError::Io(_)));
/// ```
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O failure (missing file, permission, short write).
    Io(std::io::Error),
    /// The bytes are structurally invalid: bad magic, checksum mismatch,
    /// truncation, or an internal inconsistency the decoder caught.
    Corrupt {
        /// What was being decoded and what failed.
        context: String,
    },
    /// The file was written by an incompatible codec version.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u16,
        /// Version this build writes and reads.
        expected: u16,
    },
    /// The frame exists and checksums, but holds a different structure
    /// (or a store of a different index type) than the caller asked for.
    WrongType {
        /// Type tag found in the frame header.
        found: u16,
        /// Type tag the caller expected.
        expected: u16,
    },
    /// The snapshot manifest is inconsistent with the shard files or the
    /// caller's request (shard count, routing algorithm, options…).
    Manifest {
        /// Human-readable mismatch description.
        context: String,
    },
    /// The in-memory store refused the mutation because a previous
    /// writer panicked in the target shard
    /// ([`ShardPoisoned`](dyndex_store::ShardPoisoned)). The shard's
    /// last published view keeps serving reads; nothing was logged.
    Poisoned {
        /// The shard whose writer panicked.
        shard: usize,
    },
}

impl PersistError {
    /// Shorthand for a corruption error.
    pub(crate) fn corrupt(context: impl Into<String>) -> Self {
        PersistError::Corrupt {
            context: context.into(),
        }
    }

    /// Shorthand for a manifest mismatch.
    pub(crate) fn manifest(context: impl Into<String>) -> Self {
        PersistError::Manifest {
            context: context.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt { context } => write!(f, "corrupt persisted data: {context}"),
            PersistError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported persistence format version {found} (this build reads {expected})"
            ),
            PersistError::WrongType { found, expected } => write!(
                f,
                "persisted structure type {found:#06x} does not match expected {expected:#06x}"
            ),
            PersistError::Manifest { context } => write!(f, "snapshot manifest error: {context}"),
            PersistError::Poisoned { shard } => write!(
                f,
                "shard {shard} is poisoned by a panicked writer; mutation refused"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<dyndex_store::ShardPoisoned> for PersistError {
    fn from(e: dyndex_store::ShardPoisoned) -> Self {
        PersistError::Poisoned { shard: e.shard }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = PersistError::corrupt("bitvec tail bits");
        assert!(e.to_string().contains("bitvec tail bits"));
        let e = PersistError::UnsupportedVersion {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));
        let io: PersistError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, PersistError::Io(_)));
    }
}
